//! Closed-loop cluster engine: adaptive prefetching, optionally with
//! cooperative caching.
//!
//! Each proxy is a real edge cache: a Zipf catalog with Markov client
//! navigation (`workload::SynthWeb`), a shared tagged LRU cache
//! (`cachesim::TaggedCache`) fronting its whole client population, an
//! online `prefetch_core::AdaptiveController` provisioned against the
//! proxy's bottleneck bandwidth, and a per-proxy access predictor that
//! proposes prefetch candidates with probabilities. Misses and accepted
//! prefetches traverse a route of queueing links; items are partitioned
//! over origin shards by `item % n_shards`.
//!
//! Because every controller estimates `ρ̂′` from *its own* traffic, two
//! proxies with different local load converge to different thresholds —
//! the per-node divergence the cluster experiment (E13) demonstrates.
//!
//! With a [`coop::CoopConfig`] attached (the [`crate::Workload::Cooperative`]
//! mode, experiment E14), a [`coop::Router`] additionally resolves every
//! miss and prefetch against the peers' Bloom digests and the consistent-
//! hash placement ring: a `Peer(q)` resolution traverses the proxy↔proxy
//! peer links instead of the backbone, and a transfer that reaches a peer
//! not actually holding the entry (a **false hit** — epoch staleness or a
//! structural Bloom false positive) falls back to the origin, paying both
//! paths. Digest refresh is a first-class periodic event firing exactly on
//! the epoch grid `k · epoch`, at which point the placement policy may
//! migrate virtual nodes from hot proxies to cold ones. With a single
//! proxy the router always resolves to the origin and the engine makes
//! exactly the draws of plain adaptive mode — the parity the integration
//! tests pin.
//!
//! ## Event core vs drivers
//!
//! The module is an [`Engine`] — a **scope** of the simulation state
//! (some subset of proxies and link servers, or all of them) plus one
//! handler per event kind — while event *selection* lives in the
//! [`crate::shard`] drivers: the single-threaded merge (the classic
//! driver, and the parity oracle) and the conservative-window
//! multi-threaded driver. Handlers never reach outside their scope:
//! anything an event does to an entity at a later instant or in another
//! scope is emitted as a timestamped [`Effect`] which the driver settles —
//! depth-first at the same instant (reproducing inline handling
//! bit-for-bit), through per-entity `TimedQueue`s when the topology's
//! link latency puts it in the future, and across shard mailboxes when it
//! belongs to another thread. On zero-latency topologies every effect
//! settles at its emission instant and the engine behaves exactly as the
//! pre-shard monolith — pinned against the retired scan driver
//! ([`crate::legacy`]) by the engine-parity tests.
//!
//! Digest refresh turned into a two-phase protocol so it shards: each
//! scope builds per-proxy [`RefreshPayload`]s (delta streams, snapshots,
//! or the cheaper of the two under [`RefreshStrategy::Auto`] — the
//! compaction fallback), and the driver flushes them to the shared router
//! at the epoch boundary.

use crate::obs::{ClusterObs, EngineObs};
use crate::report::{ClusterReport, CoopReport, LinkReport, NodeReport};
use crate::shard::{
    self, Effect, ShardRunner, CLASS_ARRIVE, CLASS_CHECK, CLASS_DELIVER, CLASS_DEPART, CLASS_FAIL,
    CLASS_PREFETCH, CLASS_REQUEST, N_CLASSES,
};
use crate::sim::{proxy_seed, LinkState, Scope, ScopeIndex};
use crate::topology::ShardPlan;
use crate::{
    AdaptiveWorkload, CandidateSource, DelayedHitsConfig, ProxyPolicy, RankingMode, Topology,
    TraceWorkload,
};
use cachesim::{
    AccessKind, FetchOrigin, LruCache, Mshr, MshrAccess, MshrConfig, ReplacementCache, TaggedCache,
    ValueAwareCache, Waiter,
};
use coop::{CoopConfig, DeltaOp, RefreshPayload, RefreshStrategy, Router};
use predictor::{MarkovPredictor, OraclePredictor, Predictor};
use prefetch_core::controller::{AdaptiveController, ControllerConfig};
use prefetch_core::estimator::EntryStatus;
use prefetch_core::AggregateDelay;
use simcore::faults::{FaultConfig, FaultKind};
use simcore::obs::ObsConfig;
use simcore::rng::Rng;
use simcore::sched::TimedQueue;
use simcore::stats::{BatchMeans, Welford};
use simcore::trace::{
    self, SpanEvent, SpanKind, TraceBuf, TraceStore, TF_FALSE_HIT, TF_MEASURED, TF_PREFETCH,
};
use simcore::{Registry, Scheduler};
use std::collections::{BinaryHeap, HashMap};
use std::io::Read;
use workload::events::TraceStream;
use workload::synth_web::SynthWeb;
use workload::{ItemId, TraceRecord};

#[derive(Clone, Copy, Debug)]
enum JobKind {
    Demand { measured: bool },
    Prefetch { measured: bool },
}

/// Where a transfer is being served from.
#[derive(Clone, Copy, Debug)]
enum Dest {
    /// The item's origin shard, over the proxy's origin route.
    Origin,
    /// A peer proxy's cache, over the peer route.
    Peer(u32),
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Job {
    /// Stable id: requesting proxy in the high bits, that proxy's job
    /// sequence number in the low — allocation is per proxy, so ids are
    /// identical under every sharding (they break `(time, id)` ties in
    /// the pending queues).
    id: u64,
    proxy: u32,
    shard: u32,
    dest: Dest,
    hop: usize,
    size: f64,
    /// Bytes this transfer has cost so far: `size`, plus `size` again for
    /// every false-hit fallback path — the per-transfer quantity good/bad
    /// prefetch accounting conserves.
    spent: f64,
    issued: f64,
    item: ItemId,
    kind: JobKind,
    /// Whether this fetch owns an MSHR entry (false = a bypassed demand
    /// fetch on a full table). Failure settlement reclassifies exactly
    /// what the launch allocated.
    tracked: bool,
    /// Trace id when this job is head-sampled, 0 otherwise. Rides the job
    /// through effects/mailboxes so cross-shard hops keep recording.
    trace: u64,
    /// Per-trace record counter: `(trace, tseq)` totally orders the job's
    /// span records independent of sharding.
    tseq: u32,
}

impl Job {
    /// The link path this job is currently traversing.
    fn path<'t>(&self, topology: &'t Topology) -> &'t [usize] {
        match self.dest {
            Dest::Origin => topology.route(self.proxy as usize, self.shard as usize),
            Dest::Peer(q) => topology.peer_route(self.proxy as usize, q as usize),
        }
    }
}

/// A prefetch decision waiting out its pacing jitter before hitting the
/// first link.
#[derive(Clone, Copy)]
struct PendingPrefetch {
    due: f64,
    item: ItemId,
    size: f64,
    measured: bool,
    /// When the prefetch was decided — the trace's pending-stall start.
    decided: f64,
}

impl PartialEq for PendingPrefetch {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for PendingPrefetch {}
impl PartialOrd for PendingPrefetch {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingPrefetch {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest due first.
        other.due.total_cmp(&self.due)
    }
}

/// The proxy's tagged cache under either ranking mode. Every call
/// delegates to the same `TaggedCache` method on the wrapped policy, so
/// the §4 estimator sees identical streams in both variants; only the
/// eviction order differs (LRU vs minimum aggregate delay).
enum Store {
    /// Classic recency ranking ([`RankingMode::Recency`], the default).
    Lru(TaggedCache<ItemId, LruCache<ItemId>>),
    /// Delayed-hits-aware ranking ([`RankingMode::AggregateDelay`]):
    /// evicts the minimum-aggregate-delay entry; values are maintained
    /// from the proxy's [`AggregateDelay`] scores at every settle.
    Ranked(TaggedCache<ItemId, ValueAwareCache<ItemId>>),
}

impl Store {
    fn probe_via(
        &mut self,
        mshr: &mut Mshr<ItemId>,
        k: ItemId,
        t: f64,
        bytes: f64,
        w: Waiter,
    ) -> MshrAccess {
        match self {
            Store::Lru(c) => c.probe_via(mshr, k, t, bytes, w),
            Store::Ranked(c) => c.probe_via(mshr, k, t, bytes, w),
        }
    }

    fn contains(&self, k: &ItemId) -> bool {
        match self {
            Store::Lru(c) => c.inner().contains(k),
            Store::Ranked(c) => c.inner().contains(k),
        }
    }

    fn charge_after_fetch(&mut self, k: ItemId, bytes: f64) -> (bool, Vec<ItemId>) {
        match self {
            Store::Lru(c) => c.charge_after_fetch(k, bytes),
            Store::Ranked(c) => c.charge_after_fetch(k, bytes),
        }
    }

    fn charge_prefetch(&mut self, k: ItemId, bytes: f64) -> (bool, Vec<ItemId>) {
        match self {
            Store::Lru(c) => c.charge_prefetch(k, bytes),
            Store::Ranked(c) => c.charge_prefetch(k, bytes),
        }
    }

    fn used_bytes(&self) -> f64 {
        match self {
            Store::Lru(c) => c.used_bytes(),
            Store::Ranked(c) => c.used_bytes(),
        }
    }

    fn keys(&self) -> Vec<ItemId> {
        match self {
            Store::Lru(c) => c.keys(),
            Store::Ranked(c) => c.keys(),
        }
    }

    /// Updates a cached entry's eviction value (no-op on the recency
    /// store, and for absent keys).
    fn set_value(&mut self, k: ItemId, v: f64) {
        if let Store::Ranked(c) = self {
            c.inner_mut().set_value(k, v);
        }
    }
}

/// The policy knobs the closed loop consults per event, identical whether
/// the request stream is synthetic or replayed. Copied out of the workload
/// at engine construction, so the hot path never branches on stream kind
/// to read a threshold.
#[derive(Clone, Copy)]
pub(crate) struct Knobs {
    cache_capacity: usize,
    cache_bytes: Option<f64>,
    max_candidates: usize,
    prefetch_jitter: f64,
    policy: ProxyPolicy,
    delayed: DelayedHitsConfig,
}

/// What drives the closed loop: a synthetic workload (the classic
/// adaptive/cooperative modes) or a recorded trace replayed from an
/// `.events` source ([`crate::Workload::Trace`]).
#[derive(Clone, Copy)]
pub(crate) enum EngineWorkload<'a> {
    Synth(&'a AdaptiveWorkload),
    Trace(&'a TraceWorkload),
}

impl EngineWorkload<'_> {
    pub(crate) fn knobs(&self) -> Knobs {
        match self {
            EngineWorkload::Synth(w) => Knobs {
                cache_capacity: w.cache_capacity,
                cache_bytes: w.cache_bytes,
                max_candidates: w.max_candidates,
                prefetch_jitter: w.prefetch_jitter,
                policy: w.policy,
                delayed: w.delayed,
            },
            EngineWorkload::Trace(w) => Knobs {
                cache_capacity: w.cache_capacity,
                cache_bytes: w.cache_bytes,
                max_candidates: w.max_candidates,
                prefetch_jitter: w.prefetch_jitter,
                policy: w.policy,
                delayed: w.delayed,
            },
        }
    }
}

/// One proxy's lazy cursor into a replayed trace. The stream covers the
/// *whole* trace; this proxy consumes only the records whose client id is
/// congruent to it modulo the recording's proxy count (the recorder folds
/// the source proxy into the client's low digits), so every proxy stays at
/// O(chunk) resident bytes regardless of trace length.
struct TraceFeed {
    stream: TraceStream<Box<dyn Read + Send>>,
    me: u32,
    stride: u32,
    /// Sizes learned from consumed records. With a Markov predictor every
    /// candidate is a previously observed item, so this table answers
    /// exactly the lookups the synthetic catalog would.
    sizes: HashMap<ItemId, f64>,
}

/// Per-proxy request source: the synthetic web model, or a trace feed.
enum Source {
    Synth(SynthWeb),
    Trace(TraceFeed),
}

impl Source {
    /// Next request for this proxy; `None` when a replayed trace runs out.
    /// Synthetic streams are endless. Replay decodes the recorder's
    /// client folding, so a re-recorded replay round-trips.
    fn next_request(&mut self, rng: &mut Rng) -> Option<TraceRecord> {
        match self {
            Source::Synth(web) => Some(web.next_request(rng)),
            Source::Trace(feed) => {
                for rec in &mut feed.stream {
                    let rec = match rec {
                        Ok(r) => r,
                        Err(e) => panic!("trace replay failed: {e}"),
                    };
                    if rec.client % feed.stride == feed.me {
                        feed.sizes.insert(rec.item, rec.size);
                        return Some(TraceRecord {
                            time: rec.time,
                            client: rec.client / feed.stride,
                            item: rec.item,
                            size: rec.size,
                        });
                    }
                }
                None
            }
        }
    }

    /// Size of `item`, if known. Always `Some` on synthetic sources; on
    /// replay, `Some` exactly for items this proxy has already seen —
    /// which covers every Markov candidate.
    fn size_of(&self, item: ItemId) -> Option<f64> {
        match self {
            Source::Synth(web) => Some(web.catalog.size(item)),
            Source::Trace(feed) => feed.sizes.get(&item).copied(),
        }
    }
}

struct ProxyState {
    rng: Rng,
    jitter_rng: Rng,
    source: Source,
    cache: Store,
    controller: AdaptiveController,
    predictor: Box<dyn Predictor + Send>,
    /// Outstanding-fetch table: one entry per in-flight item (demand
    /// fetches and reserved prefetches), carrying the FIFO waiter queue
    /// of demand misses coalesced onto the fetch.
    mshr: Mshr<ItemId>,
    /// Per-key aggregate-delay scores — `Some` exactly under
    /// [`RankingMode::AggregateDelay`], charged at every settled fetch.
    agg: Option<AggregateDelay<ItemId>>,
    /// Measured requests settled as delayed hits (waiters on an
    /// outstanding fetch inside the measurement window).
    delayed_hits: u64,
    /// Residual waits of those measured delayed hits.
    residual: Welford,
    delayed: BinaryHeap<PendingPrefetch>,
    /// Bytes spent on the prefetch transfer behind each *untagged* cache
    /// entry, credited to goodput once, on the entry's first use. Keyed by
    /// item; an entry is removed exactly when the item's untagged copy is
    /// first accessed, so each distinct prefetched entry is counted at
    /// most once and goodput can never exceed the prefetched volume.
    prefetch_cost: HashMap<ItemId, f64>,
    pending: Option<TraceRecord>,
    job_seq: u64,
    issued: u64,
    access_times: BatchMeans,
    retrievals: Welford,
    total_job_time: f64,
    hits: u64,
    measured: u64,
    prefetch_jobs: u64,
    threshold_sum: f64,
    threshold_n: u64,
    demand_bytes: f64,
    prefetch_bytes: f64,
    used_prefetch_bytes: f64,
    peer_bytes: f64,
    peer_fetches: u64,
    peer_false_hits: u64,
    /// Fetch attempts declared failed at their timeout (fault runs only;
    /// all of the following stay zero under an empty plan).
    timeouts: u64,
    /// Re-attempts the retry budget paid for after a timeout.
    retries: u64,
    /// Peer-routed fetches rerouted to the origin because their peer
    /// route was dark at launch.
    failovers: u64,
    /// Fetches (demand and prefetch) that exhausted their attempt budget
    /// and settled as failed.
    failed_fetches: u64,
    /// Measured requests (fetch owners and coalesced waiters) that
    /// settled with a failure instead of data — the unavailability
    /// numerator.
    measured_failed: u64,
    /// Cache entries wiped by crashes plus digest delta ops dropped by
    /// crashes/digest-loss faults.
    lost_entries: u64,
}

/// One scope of closed-loop simulation state plus one handler per event
/// kind. Drivers (`crate::shard`) own only event *selection* and effect
/// routing; every state transition lives here, so no two drivers can
/// diverge semantically.
pub(crate) struct Engine<'a> {
    topology: &'a Topology,
    knobs: Knobs,
    n_shards: u64,
    pub(crate) scope: Scope,
    /// Local link servers, indexed by scope-local link id.
    pub(crate) links: Vec<LinkState>,
    /// How this scope's proxies flush their digests at epoch boundaries.
    refresh_strategy: RefreshStrategy,
    /// Delta-stream length past which `Auto` ships a snapshot instead
    /// (`⌈capacity · bits / 8⌉ / 9` ops — the E16 crossover).
    delta_crossover: u64,
    coop_on: bool,
    /// Per-local-proxy digest-delta buffers: one op per cache-content
    /// change since the last epoch boundary, drained into the refresh
    /// payloads. Empty (never written) without a router.
    deltas: Vec<Vec<DeltaOp>>,
    proxies: Vec<ProxyState>,
    /// Jobs currently on this scope's links, by job id. A job in a
    /// pending queue or in flight to another shard lives in its
    /// effect/queue entry instead.
    jobs: HashMap<u64, Job>,
    /// Per-local-link queued arrivals (latency topologies only).
    arrivals: Vec<TimedQueue<Job>>,
    /// Per-local-proxy queued peer-serve checks.
    checks: Vec<TimedQueue<Job>>,
    /// Per-local-proxy queued response deliveries (`false_hit` flagged).
    delivers: Vec<TimedQueue<(Job, bool)>>,
    /// Per-local-proxy queued fetch-failure settlements (fault runs only;
    /// empty and never polled past its `None` head otherwise).
    fails: Vec<TimedQueue<Job>>,
    /// Cross-instant / cross-scope handoffs staged for the driver.
    effects: Vec<Effect<Job>>,
    /// Timer streams touched since the driver last re-synced.
    dirty: Vec<(usize, usize)>,
    t_end: f64,
    warm: u64,
    n_requests: u64,
    /// Probe state when this run is observed; `None` (the default) keeps
    /// every hook to a single branch.
    obs: Option<Box<EngineObs>>,
    /// Span buffer when this run is traced; same zero-overhead contract
    /// as `obs`.
    trace: Option<Box<TraceBuf>>,
    /// Per-local-proxy recorded requests when this run records a trace
    /// (`None`, the default, keeps the hook to one branch per request).
    recorder: Option<Vec<Vec<TraceRecord>>>,
    /// Client-id folding stride for the recorder: the recorded client is
    /// `proxy + stride * client`, so replay can route each record back to
    /// its source proxy by `client % stride`.
    client_stride: u32,
    /// Fault schedule and retry policy when this run injects faults;
    /// `None` keeps every fault hook to one branch, and an **empty** plan
    /// behaves bit-identically to `None` (every query answers healthy
    /// without touching a float or an RNG).
    faults: Option<&'a FaultConfig>,
    /// The run seed — packet-loss rolls and backoff jitter are pure
    /// hashes of it, never draws from the workload RNG streams.
    seed: u64,
    /// Per-local-proxy "ship a full snapshot at the next epoch boundary"
    /// flags, set by crash/digest-loss faults (parallel to `deltas`).
    force_snapshot: Vec<bool>,
}

/// Mirrors one access-time sample into the latency probe. A free function
/// over the `obs` field alone, so call sites holding a `&mut` proxy can
/// still record (disjoint-field borrows).
#[inline]
fn obs_lat(obs: &mut Option<Box<EngineObs>>, x: f64) {
    if let Some(o) = obs.as_deref_mut() {
        o.latency(x);
    }
}

/// Appends one span record for a traced job and advances its per-trace
/// sequence counter. Free function over the buffer alone (like
/// [`obs_lat`]) so call sites holding a `&mut` proxy can record.
#[inline]
fn trace_job(
    buf: &mut Option<Box<TraceBuf>>,
    job: &mut Job,
    t: f64,
    kind: SpanKind,
    entity: u64,
    aux: f64,
    flags: u8,
) {
    if let Some(b) = buf.as_deref_mut() {
        if job.trace != 0 {
            let seq = job.tseq;
            job.tseq += 1;
            b.push(SpanEvent {
                trace: job.trace,
                seq,
                t,
                kind,
                entity,
                aux,
                item: job.item.0,
                flags,
            });
        }
    }
}

/// Appends a single-record trace (a cache hit or an in-flight wait).
#[inline]
#[allow(clippy::too_many_arguments)]
fn trace_point(
    buf: &mut Option<Box<TraceBuf>>,
    id: u64,
    t: f64,
    kind: SpanKind,
    entity: u64,
    aux: f64,
    item: u64,
    flags: u8,
) {
    if id != 0 {
        if let Some(b) = buf.as_deref_mut() {
            b.push(SpanEvent { trace: id, seq: 0, t, kind, entity, aux, item, flags });
        }
    }
}

/// Settles a completed MSHR entry's waiters at `t`, in FIFO order: one
/// `Wait` span per waiter; measured waiters record their residual wait as
/// an access time and count as **delayed hits**. Returns the sum of all
/// waiters' residual waits — the aggregate-delay charge the blocking key
/// accrues beyond the fetch's own latency. A free function (like
/// [`obs_lat`]) so call sites holding a `&mut` proxy can settle.
fn settle_waiters(
    trace: &mut Option<Box<TraceBuf>>,
    obs: &mut Option<Box<EngineObs>>,
    p: &mut ProxyState,
    waiters: &[Waiter],
    t: f64,
    proxy: u64,
    item: u64,
) -> f64 {
    let mut residual_sum = 0.0;
    for w in waiters {
        let wf = if w.measured { TF_MEASURED } else { 0 };
        trace_point(trace, w.trace, t, SpanKind::Wait, proxy, w.t, item, wf);
        residual_sum += t - w.t;
        if w.measured {
            p.delayed_hits += 1;
            p.residual.push(t - w.t);
            p.access_times.push(t - w.t);
            obs_lat(obs, t - w.t);
        }
    }
    residual_sum
}

/// Settles the waiters of a **failed** fetch at `t`: their wait ends with
/// a failure, not data, so they count toward unavailability instead of
/// delayed hits. Each measured waiter still records the full wall-clock it
/// spent blocked as an access time — graceful degradation is visible in
/// `t̄`, not hidden from it.
fn settle_failed_waiters(
    trace: &mut Option<Box<TraceBuf>>,
    obs: &mut Option<Box<EngineObs>>,
    p: &mut ProxyState,
    waiters: &[Waiter],
    t: f64,
    proxy: u64,
    item: u64,
) {
    for w in waiters {
        let wf = if w.measured { TF_MEASURED } else { 0 };
        trace_point(trace, w.trace, t, SpanKind::Wait, proxy, w.t, item, wf);
        if w.measured {
            p.measured_failed += 1;
            p.access_times.push(t - w.t);
            obs_lat(obs, t - w.t);
        }
    }
}

/// Bookkeeping shared by every cache admission: drop evicted entries'
/// pending prefetch-cost records (they can never be credited once the
/// entry is gone) and append the ops the digest delta protocol ships at
/// the next epoch boundary. `deltas` is empty when no router is attached,
/// which disables the recording without a branch at every site.
fn note_cache_change(
    deltas: &mut [Vec<DeltaOp>],
    proxy: usize,
    p: &mut ProxyState,
    item: ItemId,
    admitted: bool,
    evicted: &[ItemId],
) {
    for v in evicted {
        p.prefetch_cost.remove(v);
    }
    if let Some(d) = deltas.get_mut(proxy) {
        for v in evicted {
            d.push(DeltaOp::Evict(v.0));
        }
        if admitted {
            d.push(DeltaOp::Insert(item.0));
        }
    }
}

/// Resolves where a miss/prefetch at global proxy `me` is served from.
fn resolve(router: Option<&Router>, me: usize, item: ItemId) -> Dest {
    match router.map(|r| r.resolve(me, item.0)) {
        Some(coop::Resolution::Peer(q)) => Dest::Peer(q as u32),
        _ => Dest::Origin,
    }
}

/// Builds one proxy's (empty) tagged store from the policy knobs — used
/// at construction and again when a crash fault cold-restarts the proxy.
fn new_store(knobs: &Knobs) -> Store {
    match knobs.delayed.ranking {
        RankingMode::Recency => Store::Lru(TaggedCache::new(match knobs.cache_bytes {
            Some(bytes) => LruCache::with_byte_capacity(knobs.cache_capacity, bytes),
            None => LruCache::new(knobs.cache_capacity),
        })),
        RankingMode::AggregateDelay => Store::Ranked(TaggedCache::new(match knobs.cache_bytes {
            Some(bytes) => ValueAwareCache::with_byte_capacity(knobs.cache_capacity, bytes),
            None => ValueAwareCache::new(knobs.cache_capacity),
        })),
    }
}

impl<'a> Engine<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        topology: &'a Topology,
        workload: EngineWorkload<'a>,
        coop_cfg: Option<&CoopConfig>,
        requests: usize,
        warmup: usize,
        seed: u64,
        scope: Scope,
        faults: Option<&'a FaultConfig>,
    ) -> Self {
        if let Some(fc) = faults {
            fc.retry.validate();
        }
        let links: Vec<LinkState> =
            scope.links.iter().map(|&g| LinkState::new(&topology.links()[g])).collect();
        let knobs = workload.knobs();

        let proxies: Vec<ProxyState> = scope
            .proxies
            .iter()
            .map(|&i| {
                let mut rng = Rng::new(proxy_seed(seed, i));
                // The jitter stream splits off *before* any workload draw,
                // so it is a pure function of (seed, proxy) — replaying a
                // recorded run reconstructs the identical jitter sequence.
                let jitter_rng = rng.split();
                let (mut source, predictor): (Source, Box<dyn Predictor + Send>) = match workload {
                    EngineWorkload::Synth(w) => {
                        let web_cfg = &w.proxies[i];
                        // With a shared structure seed every proxy draws the
                        // same catalog and navigation chain (the redundancy
                        // cooperative caching removes); otherwise each
                        // proxy's structure comes from its own stream,
                        // exactly as before.
                        let web = match w.shared_structure_seed {
                            Some(s) => {
                                let mut structure_rng = Rng::new(s);
                                SynthWeb::new(*web_cfg, &mut structure_rng)
                            }
                            None => SynthWeb::new(*web_cfg, &mut rng),
                        };
                        let predictor: Box<dyn Predictor + Send> = match w.predictor {
                            CandidateSource::Oracle => {
                                Box::new(OraclePredictor::from_chain(&web.chain))
                            }
                            CandidateSource::Markov1 => Box::new(MarkovPredictor::new(1)),
                        };
                        (Source::Synth(web), predictor)
                    }
                    EngineWorkload::Trace(tw) => {
                        // Oracle candidates need the generating chain, which
                        // a replayed trace does not carry — rejected by
                        // `TraceWorkload::validate`.
                        debug_assert!(matches!(tw.predictor, CandidateSource::Markov1));
                        let feed = TraceFeed {
                            stream: tw
                                .source
                                .open(tw.chunk_records)
                                .expect("validated trace source"),
                            me: i as u32,
                            stride: topology.n_proxies() as u32,
                            sizes: HashMap::new(),
                        };
                        (Source::Trace(feed), Box::new(MarkovPredictor::new(1)))
                    }
                };
                let pending = source.next_request(&mut rng);
                ProxyState {
                    rng,
                    jitter_rng,
                    source,
                    cache: new_store(&knobs),
                    controller: AdaptiveController::new(ControllerConfig::model_a(
                        topology.proxy_bottleneck(i),
                    )),
                    predictor,
                    mshr: Mshr::new(MshrConfig {
                        entries: knobs.delayed.mshr_entries,
                        coalesce: knobs.delayed.coalesce,
                    }),
                    agg: matches!(knobs.delayed.ranking, RankingMode::AggregateDelay)
                        .then(AggregateDelay::new),
                    delayed_hits: 0,
                    residual: Welford::new(),
                    delayed: BinaryHeap::new(),
                    prefetch_cost: HashMap::new(),
                    pending,
                    job_seq: 0,
                    issued: 0,
                    access_times: BatchMeans::new(20),
                    retrievals: Welford::new(),
                    total_job_time: 0.0,
                    hits: 0,
                    measured: 0,
                    prefetch_jobs: 0,
                    threshold_sum: 0.0,
                    threshold_n: 0,
                    demand_bytes: 0.0,
                    prefetch_bytes: 0.0,
                    used_prefetch_bytes: 0.0,
                    peer_bytes: 0.0,
                    peer_fetches: 0,
                    peer_false_hits: 0,
                    timeouts: 0,
                    retries: 0,
                    failovers: 0,
                    failed_fetches: 0,
                    measured_failed: 0,
                    lost_entries: 0,
                }
            })
            .collect();

        let deltas = match coop_cfg {
            Some(_) => vec![Vec::new(); proxies.len()],
            None => Vec::new(),
        };
        let force_snapshot = vec![false; deltas.len()];
        let delta_crossover = coop_cfg
            .map(|c| c.digest.delta_crossover_ops(knobs.cache_capacity))
            .unwrap_or(u64::MAX);
        Engine {
            topology,
            knobs,
            n_shards: topology.n_shards() as u64,
            links,
            refresh_strategy: coop_cfg.map(|c| c.refresh).unwrap_or_default(),
            delta_crossover,
            coop_on: coop_cfg.is_some(),
            deltas,
            proxies,
            jobs: HashMap::new(),
            arrivals: (0..scope.links.len()).map(|_| TimedQueue::new()).collect(),
            checks: (0..scope.proxies.len()).map(|_| TimedQueue::new()).collect(),
            delivers: (0..scope.proxies.len()).map(|_| TimedQueue::new()).collect(),
            fails: (0..scope.proxies.len()).map(|_| TimedQueue::new()).collect(),
            effects: Vec::new(),
            dirty: Vec::new(),
            t_end: 0.0,
            warm: warmup as u64,
            n_requests: requests as u64,
            scope,
            obs: None,
            trace: None,
            recorder: None,
            client_stride: topology.n_proxies() as u32,
            faults,
            seed,
            force_snapshot,
        }
    }

    /// Arms this scope's request recorder: every issued request is kept as
    /// a [`TraceRecord`] with the proxy folded into the client id.
    pub(crate) fn attach_recorder(&mut self) {
        self.recorder = Some(vec![Vec::new(); self.proxies.len()]);
    }

    /// Takes this scope's recorded requests, tagged with global proxy ids.
    pub(crate) fn take_recorded(&mut self) -> Vec<(usize, Vec<TraceRecord>)> {
        match self.recorder.take() {
            Some(parts) => self.scope.proxies.iter().copied().zip(parts).collect(),
            None => Vec::new(),
        }
    }

    /// Replay accounting for this scope: `(records consumed, max per-stream
    /// resident bytes)`. `None` when no proxy replays a trace.
    pub(crate) fn replay_stats(&self) -> Option<(u64, usize)> {
        let mut any = false;
        let (mut records, mut peak) = (0u64, 0usize);
        for p in &self.proxies {
            if let Source::Trace(feed) = &p.source {
                any = true;
                records += p.issued;
                peak = peak.max(feed.stream.peak_resident_bytes());
            }
        }
        any.then_some((records, peak))
    }

    /// Arms this scope's observability probes.
    pub(crate) fn attach_obs(&mut self, o: EngineObs) {
        self.obs = Some(Box::new(o));
    }

    /// Arms this scope's span buffer, head-sampling 1-in-`every`.
    pub(crate) fn attach_trace(&mut self, every: u64) {
        self.trace = Some(Box::new(TraceBuf::new(every)));
    }

    /// Takes this scope's recorded span events (empties the buffer).
    pub(crate) fn take_trace_events(&mut self) -> Vec<SpanEvent> {
        self.trace.take().map(|b| b.events).unwrap_or_default()
    }

    /// Flushes every sampling-grid point at or before `t`. Called at the
    /// entry of every public handler (and the cross-shard `apply_now`
    /// path) **before** any state mutation at `t`, so a grid point `g`
    /// always samples "all events strictly before `g`" — the same state
    /// under every sharding.
    fn obs_tick(&mut self, t: f64) {
        let Some(mut o) = self.obs.take() else { return };
        let proxies = &self.proxies;
        o.tick(t, &self.links, || {
            let cache_bytes = proxies.iter().map(|p| p.cache.used_bytes()).sum();
            let outstanding = proxies.iter().map(|p| p.mshr.len()).sum::<usize>() as f64;
            (cache_bytes, outstanding)
        });
        self.obs = Some(o);
    }

    /// Final grid flush at the cluster-wide `t_end`, returning this
    /// scope's registry for merging (`None` when unobserved).
    pub(crate) fn obs_finish(&mut self, t_end: f64) -> Option<Registry> {
        let mut o = self.obs.take()?;
        let proxies = &self.proxies;
        o.tick(t_end, &self.links, || {
            let cache_bytes = proxies.iter().map(|p| p.cache.used_bytes()).sum();
            let outstanding = proxies.iter().map(|p| p.mshr.len()).sum::<usize>() as f64;
            (cache_bytes, outstanding)
        });
        Some(o.finish())
    }

    /// Local proxy count (the legacy scan's iteration bound).
    #[cfg(feature = "legacy-oracle")]
    pub(crate) fn n_proxies(&self) -> usize {
        self.proxies.len()
    }

    /// When local proxy `i`'s next client request arrives, while its
    /// stream has requests left (a replayed trace may also run dry).
    pub(crate) fn request_due(&self, i: usize) -> Option<f64> {
        let p = &self.proxies[i];
        if p.issued >= self.n_requests {
            return None;
        }
        p.pending.map(|r| r.time)
    }

    /// When local proxy `i`'s earliest jittered prefetch decision comes
    /// due. Pending prefetches are still issued after the request stream
    /// ends so any waiters attached to them resolve.
    pub(crate) fn prefetch_due(&self, i: usize) -> Option<f64> {
        self.proxies[i].delayed.peek().map(|d| d.due)
    }

    /// Propagation latency into global link `g` at `now`, inflated by any
    /// active degradation fault. The factor is 1.0 on healthy links and
    /// the multiply is skipped entirely, so unfaulted latencies stay
    /// bit-identical; a degrade fault guarantees factor ≥ 1, which keeps
    /// conservative-window lookaheads sound.
    fn entry_latency_at(&self, g: usize, now: f64) -> f64 {
        let base = self.topology.entry_latency(g);
        if let Some(fc) = self.faults {
            let f = fc.plan.link_latency_factor(g, now);
            if f != 1.0 {
                return base * f;
            }
        }
        base
    }

    /// Summed return propagation of `route` at `now`, per-hop inflated
    /// like [`Engine::entry_latency_at`].
    fn return_latency_at(&self, route: &[usize], now: f64) -> f64 {
        match self.faults {
            Some(fc) => route
                .iter()
                .map(|&g| {
                    let base = self.topology.entry_latency(g);
                    let f = fc.plan.link_latency_factor(g, now);
                    if f != 1.0 {
                        base * f
                    } else {
                        base
                    }
                })
                .sum(),
            None => self.topology.return_latency(route),
        }
    }

    /// Stages `job`'s entry into global link `g` at `tau` (`now` plus the
    /// link's propagation latency; equal to `now` on zero-latency hops).
    fn send_arrive(&mut self, g: usize, now: f64, job: Job) {
        let tau = now + self.entry_latency_at(g, now);
        debug_assert!(tau >= now);
        self.effects.push(Effect::Arrive { link: g as u32, t: tau, job });
    }

    /// Stages the peer-serve check of `job` at proxy `q` (the far end of
    /// the peer route's last hop).
    fn send_check(&mut self, last_link: usize, now: f64, job: Job) {
        let Dest::Peer(q) = job.dest else { unreachable!("check on an origin transfer") };
        let tau = now + self.entry_latency_at(last_link, now);
        self.effects.push(Effect::Check { q, t: tau, job });
    }

    /// Stages `job`'s response delivery back at its requesting proxy,
    /// after the return propagation of `route` — plus any active origin
    /// brownout delay on origin responses.
    fn send_deliver(&mut self, route: &[usize], now: f64, job: Job, false_hit: bool) {
        let mut tau = now + self.return_latency_at(route, now);
        if matches!(job.dest, Dest::Origin) {
            if let Some(fc) = self.faults {
                let d = fc.plan.origin_delay(now);
                if d > 0.0 {
                    tau += d;
                }
            }
        }
        self.effects.push(Effect::Deliver { p: job.proxy, t: tau, job, false_hit });
    }

    /// Any link on `job`'s current path down at `t`? Origin routes also
    /// consult the origin's own blackout state. A pure query of the
    /// static plan — identical under every sharding.
    fn route_dark(&self, job: &Job, t: f64) -> bool {
        let Some(fc) = self.faults else { return false };
        if matches!(job.dest, Dest::Origin) && fc.plan.origin_dark(t) {
            return true;
        }
        job.path(self.topology).iter().any(|&g| fc.plan.link_down(g, t))
    }

    /// Does attempt `attempt` of `job`, launched at `t`, make it? Dark
    /// routes always fail; degraded links lose the attempt with a
    /// deterministic per-`(job, attempt)` roll.
    fn attempt_survives(&self, fc: &FaultConfig, job: &Job, attempt: u32, t: f64) -> bool {
        if self.route_dark(job, t) {
            return false;
        }
        !job.path(self.topology)
            .iter()
            .any(|&g| fc.plan.attempt_lost(self.seed, g, job.id, attempt, t))
    }

    /// Injects `job` onto the first link of its path at time `t`.
    ///
    /// Under a fault plan this is where the whole timeout–retry–backoff
    /// schedule resolves, **analytically**: the plan is static, so each
    /// attempt's fate (dark route, lost packet, or success) is a pure
    /// function of its launch instant. Each failed attempt charges
    /// `timeout + backoff(k)` of pure client-side wall clock (the lost
    /// attempt never occupies a link); the surviving attempt enters the
    /// network at its delayed instant; exhausting the budget stages a
    /// `Fail` effect at the last attempt's timeout expiry. A dark peer
    /// route fails over to the origin before spending an attempt — the
    /// cooperative mesh degrades instead of stalling (quarantined crash
    /// victims are already filtered at resolution). Speculative transfers
    /// get exactly one attempt: a prefetch is never worth a retry budget.
    fn launch(&mut self, t: f64, mut job: Job) {
        let Some(fc) = self.faults else {
            let first = job.path(self.topology)[0];
            self.send_arrive(first, t, job);
            return;
        };
        let attempts = match job.kind {
            JobKind::Demand { .. } => fc.retry.attempts(),
            JobKind::Prefetch { .. } => 1,
        };
        let mut t_att = t;
        for attempt in 0..attempts {
            if matches!(job.dest, Dest::Peer(_)) && self.route_dark(&job, t_att) {
                let i = self.scope.proxy_local(job.proxy as usize).expect("launch in scope");
                self.proxies[i].failovers += 1;
                job.dest = Dest::Origin;
                job.hop = 0;
            }
            if self.attempt_survives(fc, &job, attempt, t_att) {
                let first = job.path(self.topology)[0];
                self.send_arrive(first, t_att, job);
                return;
            }
            let i = self.scope.proxy_local(job.proxy as usize).expect("launch in scope");
            self.proxies[i].timeouts += 1;
            let expiry = t_att + fc.retry.timeout;
            if attempt + 1 < attempts {
                self.proxies[i].retries += 1;
                let next = expiry + fc.retry.backoff(self.seed, job.id, attempt);
                let jp = job.proxy as u64;
                trace_job(&mut self.trace, &mut job, next, SpanKind::Retry, jp, expiry, 0);
                t_att = next;
            } else {
                self.effects.push(Effect::Fail { p: job.proxy, t: expiry, job });
                return;
            }
        }
    }

    /// A link departure event on local link `l` at time `t`.
    pub(crate) fn on_link(&mut self, t: f64, l: usize) {
        self.obs_tick(t);
        self.t_end = t;
        self.dirty.push((CLASS_DEPART, l));
        let g_l = self.scope.links[l];
        let done = self.links[l].on_event(t);
        if let Some(o) = self.obs.as_deref_mut() {
            o.jobs_completed(l, done.len());
        }
        let bandwidth = self.topology.links()[g_l].bandwidth;
        for c in done {
            let mut job = self.jobs.remove(&c.tag).expect("completed job on this scope's link");
            self.links[l].bytes_carried += job.size;
            let service = job.size / bandwidth;
            trace_job(&mut self.trace, &mut job, t, SpanKind::Dequeue, g_l as u64, service, 0);
            let route = job.path(self.topology);
            if job.hop + 1 < route.len() {
                let mut fwd = job;
                fwd.hop += 1;
                self.send_arrive(route[fwd.hop], t, fwd);
                continue;
            }
            match job.dest {
                // A peer transfer must find the entry actually present at
                // the peer — checked at the peer itself (its cache is that
                // shard's state), after the last hop's propagation.
                Dest::Peer(_) => self.send_check(g_l, t, job),
                Dest::Origin => self.send_deliver(route, t, job, false),
            }
        }
    }

    /// Queued arrivals on local link `l` coming due at `t`, in
    /// `(time, job id)` order.
    pub(crate) fn on_arrivals(&mut self, t: f64, l: usize) {
        self.obs_tick(t);
        self.t_end = t;
        while let Some(job) = self.arrivals[l].pop_due(t) {
            self.arrive_now(l, t, job);
        }
        self.dirty.push((CLASS_ARRIVE, l));
    }

    /// `job` enters local link `l`'s server at `t`.
    fn arrive_now(&mut self, l: usize, t: f64, mut job: Job) {
        trace_job(
            &mut self.trace,
            &mut job,
            t,
            SpanKind::Enqueue,
            self.scope.links[l] as u64,
            0.0,
            0,
        );
        self.jobs.insert(job.id, job);
        self.links[l].arrive(t, job.size, job.id);
        if let Some(o) = self.obs.as_deref_mut() {
            o.job_arrived(l);
        }
        self.dirty.push((CLASS_DEPART, l));
    }

    /// Queued peer-serve checks at local proxy `i` coming due at `t`.
    pub(crate) fn on_checks(&mut self, t: f64, i: usize) {
        self.obs_tick(t);
        self.t_end = t;
        while let Some(job) = self.checks[i].pop_due(t) {
            self.check_now(i, t, job);
        }
        self.dirty.push((CLASS_CHECK, i));
    }

    /// The peer-serve check of `job` at local proxy `i` (= `job.dest`'s
    /// peer): does the peer actually hold the item? Either way the answer
    /// travels back to the requester over the peer route.
    fn check_now(&mut self, i: usize, t: f64, mut job: Job) {
        self.t_end = t;
        debug_assert!(matches!(job.dest, Dest::Peer(q) if self.scope.proxies[i] == q as usize));
        let holds = self.proxies[i].cache.contains(&job.item);
        trace_job(
            &mut self.trace,
            &mut job,
            t,
            SpanKind::Check,
            self.scope.proxies[i] as u64,
            if holds { 1.0 } else { 0.0 },
            if holds { 0 } else { TF_FALSE_HIT },
        );
        let route = job.path(self.topology);
        self.send_deliver(route, t, job, !holds);
    }

    /// Queued response deliveries at local proxy `i` coming due at `t`.
    pub(crate) fn on_delivers(&mut self, t: f64, i: usize) {
        self.obs_tick(t);
        self.t_end = t;
        while let Some((job, false_hit)) = self.delivers[i].pop_due(t) {
            self.deliver_now(i, t, job, false_hit);
        }
        self.dirty.push((CLASS_DELIVER, i));
    }

    /// `job`'s response (or false-hit notification) lands at its
    /// requesting proxy — local index `i`.
    fn deliver_now(&mut self, i: usize, t: f64, mut job: Job, false_hit: bool) {
        self.t_end = t;
        debug_assert_eq!(self.scope.proxies[i], job.proxy as usize);
        if false_hit {
            // Digest false hit: the transfer reached a peer that does not
            // hold the item (evicted since the last refresh, or a
            // structural Bloom false positive) — fall back to the origin,
            // paying the peer path *and* the origin path.
            let mut fwd = job;
            fwd.dest = Dest::Origin;
            fwd.hop = 0;
            fwd.spent += fwd.size;
            let fp = fwd.proxy as u64;
            trace_job(&mut self.trace, &mut fwd, t, SpanKind::Redirect, fp, 0.0, TF_FALSE_HIT);
            let p = &mut self.proxies[i];
            p.peer_false_hits += 1;
            match job.kind {
                JobKind::Demand { .. } => p.demand_bytes += job.size,
                JobKind::Prefetch { .. } => p.prefetch_bytes += job.size,
            }
            self.launch(t, fwd);
            return;
        }
        let jp = job.proxy as u64;
        trace_job(&mut self.trace, &mut job, t, SpanKind::Deliver, jp, 0.0, 0);
        let p = &mut self.proxies[i];
        if matches!(job.dest, Dest::Peer(_)) {
            p.peer_fetches += 1;
            p.peer_bytes += job.size;
        }
        match job.kind {
            JobKind::Demand { measured } => {
                let (admitted, evicted) = p.cache.charge_after_fetch(job.item, job.size);
                note_cache_change(&mut self.deltas, i, p, job.item, admitted, &evicted);
                // Any landing of the key's data ends the wait — an entry
                // already settled by a concurrent (bypassed) fetch, or a
                // bypassed fetch itself, yields `None` here.
                let entry = p.mshr.complete(&job.item);
                if measured {
                    let sojourn = t - job.issued;
                    p.access_times.push(sojourn);
                    p.retrievals.push(sojourn);
                    p.total_job_time += sojourn;
                    obs_lat(&mut self.obs, sojourn);
                }
                let waiters = entry.map(|e| e.waiters).unwrap_or_default();
                let residual_sum = settle_waiters(
                    &mut self.trace,
                    &mut self.obs,
                    p,
                    &waiters,
                    t,
                    job.proxy as u64,
                    job.item.0,
                );
                if let Some(agg) = p.agg.as_mut() {
                    // The blocking fetch is charged its own latency plus
                    // every waiter's residual — the key's aggregate delay.
                    let score = agg.charge(job.item, (t - job.issued) + residual_sum);
                    p.cache.set_value(job.item, score);
                }
            }
            JobKind::Prefetch { measured } => {
                if measured {
                    p.total_job_time += t - job.issued;
                }
                let entry = p.mshr.complete(&job.item);
                let waiters = entry.map(|e| e.waiters).unwrap_or_default();
                if !waiters.is_empty() {
                    // The item was demanded while the prefetch was in
                    // flight: it lands as a demand-fetched (tagged)
                    // entry and the waiters' clocks stop now. The
                    // transfer served real demand, so everything it
                    // cost counts as used.
                    let (admitted, evicted) = p.cache.charge_after_fetch(job.item, job.size);
                    note_cache_change(&mut self.deltas, i, p, job.item, admitted, &evicted);
                    p.used_prefetch_bytes += job.spent;
                    let residual_sum = settle_waiters(
                        &mut self.trace,
                        &mut self.obs,
                        p,
                        &waiters,
                        t,
                        job.proxy as u64,
                        job.item.0,
                    );
                    if let Some(agg) = p.agg.as_mut() {
                        // A prefetch the demand stream caught up with:
                        // only the residuals were felt as delay.
                        let score = agg.charge(job.item, residual_sum);
                        p.cache.set_value(job.item, score);
                    }
                } else {
                    let (admitted, evicted) = p.cache.charge_prefetch(job.item, job.size);
                    note_cache_change(&mut self.deltas, i, p, job.item, admitted, &evicted);
                    if admitted {
                        p.controller.on_prefetch_insert();
                        p.prefetch_cost.insert(job.item, job.spent);
                        if let Some(agg) = p.agg.as_ref() {
                            p.cache.set_value(job.item, agg.score(&job.item));
                        }
                    }
                }
            }
        }
    }

    /// Queued fetch-failure settlements at local proxy `i` coming due at
    /// `t` (fault runs only).
    pub(crate) fn on_fails(&mut self, t: f64, i: usize) {
        self.obs_tick(t);
        self.t_end = t;
        while let Some(job) = self.fails[i].pop_due(t) {
            self.fail_now(i, t, job);
        }
        self.dirty.push((CLASS_FAIL, i));
    }

    /// `job`'s fetch exhausted its attempt budget — settle it (and every
    /// coalesced waiter) as **failed** at `t`, the last attempt's timeout
    /// expiry. The MSHR entry is reclassified with a failure outcome so
    /// the conservation law `origin_fetches + coalesced + failed ==
    /// demand_misses` stays exact, and the bytes of the never-launched
    /// leg are refunded: a transfer that never entered a link is client
    /// pain, not network load.
    fn fail_now(&mut self, i: usize, t: f64, mut job: Job) {
        self.t_end = t;
        debug_assert_eq!(self.scope.proxies[i], job.proxy as usize);
        let jp = job.proxy as u64;
        let pf = if matches!(job.kind, JobKind::Prefetch { .. }) { TF_PREFETCH } else { 0 };
        trace_job(&mut self.trace, &mut job, t, SpanKind::Failed, jp, 0.0, pf);
        let p = &mut self.proxies[i];
        p.failed_fetches += 1;
        let entry = match job.kind {
            JobKind::Demand { measured } => {
                p.demand_bytes -= job.size;
                if measured {
                    let sojourn = t - job.issued;
                    p.measured_failed += 1;
                    p.access_times.push(sojourn);
                    p.total_job_time += sojourn;
                    obs_lat(&mut self.obs, sojourn);
                }
                if !job.tracked {
                    // A bypassed fetch has no entry; reclassify by volume.
                    p.mshr.fail_untracked(job.size);
                    None
                } else if p
                    .mshr
                    .entry(&job.item)
                    .is_some_and(|e| e.origin == FetchOrigin::Demand && e.issued == job.issued)
                {
                    p.mshr.fail(&job.item)
                } else {
                    // The entry is gone (a crash drained and reclassified
                    // it) or belongs to a newer fetch generation — nothing
                    // of ours left to settle.
                    None
                }
            }
            JobKind::Prefetch { .. } => {
                p.prefetch_bytes -= job.size;
                if p.mshr.entry(&job.item).is_some_and(|e| e.origin == FetchOrigin::Prefetch) {
                    // Duplicate reservations are filtered on the table, so
                    // a Prefetch-origin entry for this item is this job's.
                    p.mshr.fail(&job.item)
                } else {
                    None
                }
            }
        };
        if let Some(entry) = entry {
            settle_failed_waiters(
                &mut self.trace,
                &mut self.obs,
                p,
                &entry.waiters,
                t,
                jp,
                job.item.0,
            );
        }
    }

    /// A jittered prefetch decision of local proxy `i` coming due.
    pub(crate) fn on_issue_prefetch(&mut self, i: usize, router: Option<&Router>) {
        let me = self.scope.proxies[i];
        let due = self.proxies[i].delayed.peek().expect("pending prefetch").due;
        self.obs_tick(due);
        let pfx = self.proxies[i].delayed.pop().expect("pending prefetch");
        self.t_end = pfx.due;
        self.dirty.push((CLASS_PREFETCH, i));
        if !self.proxies[i].cache.contains(&pfx.item) {
            let dest = resolve(router, me, pfx.item);
            let shard = (pfx.item.0 % self.n_shards) as u32;
            let id = {
                let p = &mut self.proxies[i];
                p.prefetch_jobs += 1;
                p.prefetch_bytes += pfx.size;
                p.job_seq += 1;
                ((me as u64) << 40) | p.job_seq
            };
            if let Some(o) = self.obs.as_deref_mut() {
                o.prefetch_issued();
            }
            // The prefetch-id stream mirrors the job-id stream: the low 40
            // bits of `id` are this proxy's job sequence number.
            let tid = match self.trace.as_deref() {
                Some(b) => b.admit(trace::prefetch_trace_id(me as u64, id & ((1 << 40) - 1))),
                None => 0,
            };
            let mut job = Job {
                id,
                proxy: me as u32,
                shard,
                dest,
                hop: 0,
                size: pfx.size,
                spent: pfx.size,
                issued: pfx.due,
                item: pfx.item,
                kind: JobKind::Prefetch { measured: pfx.measured },
                tracked: true,
                trace: tid,
                tseq: 0,
            };
            let mf = if pfx.measured { TF_MEASURED } else { 0 };
            trace_job(
                &mut self.trace,
                &mut job,
                pfx.due,
                SpanKind::Issue,
                me as u64,
                pfx.decided,
                TF_PREFETCH | mf,
            );
            self.launch(pfx.due, job);
        } else {
            // Unreachable under the default unbounded coalescing table:
            // the MSHR entry allocated at decision time reserves the item
            // until this transfer (or its cancellation here) resolves —
            // demand misses on a reserved item coalesce instead of
            // fetching, and duplicate prefetch decisions are filtered on
            // the table — so nothing can have cached the item since the
            // decision checked it was absent. Pinned by
            // `pending_prefetch_never_finds_item_cached`. With coalescing
            // off, or a bounded table, an *untracked* concurrent demand
            // fetch can legitimately land first and cache the item.
            debug_assert!(
                self.knobs.delayed.mshr_entries.is_some() || !self.knobs.delayed.coalesce,
                "pending prefetch for item {:?} found it already cached",
                pfx.item
            );
            // Cancel the reservation, resolving any waiters at the
            // cancellation instant instead of silently dropping their
            // measured access times (the waiter-leak bug).
            let p = &mut self.proxies[i];
            if let Some(entry) = p.mshr.complete(&pfx.item) {
                settle_waiters(
                    &mut self.trace,
                    &mut self.obs,
                    p,
                    &entry.waiters,
                    pfx.due,
                    me as u64,
                    pfx.item.0,
                );
            }
        }
    }

    /// The next client request of local proxy `i`.
    pub(crate) fn on_request(&mut self, i: usize, router: Option<&Router>) {
        let me = self.scope.proxies[i];
        let n_shards = self.n_shards;
        let t_req = self.proxies[i].pending.expect("request due").time;
        self.obs_tick(t_req);
        if let Some(o) = self.obs.as_deref_mut() {
            o.request();
        }
        let p = &mut self.proxies[i];
        let req = p.pending.take().expect("request due");
        p.pending = p.source.next_request(&mut p.rng);
        let t = req.time;
        self.t_end = t;
        let idx = p.issued;
        p.issued += 1;
        if let Some(rec) = self.recorder.as_mut() {
            // Fold the proxy into the client id so replay can route the
            // record back (`client % n_proxies == proxy`) while keeping
            // the original client recoverable by division.
            rec[i].push(TraceRecord::new(
                t,
                me as u32 + self.client_stride * req.client,
                req.item,
                req.size,
            ));
        }
        let in_window = idx >= self.warm;
        let mut launch_demand = false;
        let mut fetch_tracked = true;
        // The request's head-sampling decision is a pure hash of
        // `(proxy, request index)` — identical under every sharding.
        let rid = match self.trace.as_deref() {
            Some(b) => b.admit(trace::request_trace_id(me as u64, idx)),
            None => 0,
        };
        let mf = if in_window { TF_MEASURED } else { 0 };

        // One probe consults the cache *and* the outstanding-fetch table:
        // a miss on an in-flight item joins the fetch's FIFO waiter queue
        // (a delayed hit in the making) instead of authorising a second
        // transfer.
        let waiter = Waiter { t, measured: in_window, trace: rid };
        match p.cache.probe_via(&mut p.mshr, req.item, t, req.size, waiter) {
            MshrAccess::Hit(AccessKind::HitTagged) => {
                p.controller.on_cache_hit(t, EntryStatus::Tagged, req.size);
                trace_point(&mut self.trace, rid, t, SpanKind::Hit, me as u64, 0.0, req.item.0, mf);
                if in_window {
                    p.access_times.push(0.0);
                    obs_lat(&mut self.obs, 0.0);
                    p.hits += 1;
                    p.measured += 1;
                }
            }
            MshrAccess::Hit(AccessKind::HitUntagged) => {
                p.controller.on_cache_hit(t, EntryStatus::Untagged, req.size);
                // First use of a prefetched entry: credit exactly what its
                // transfer cost, once. The probe retags the entry, so a
                // re-access is a tagged hit and cannot double-count.
                let cost = p
                    .prefetch_cost
                    .remove(&req.item)
                    .expect("untagged cache entry must have a recorded prefetch cost");
                p.used_prefetch_bytes += cost;
                trace_point(&mut self.trace, rid, t, SpanKind::Hit, me as u64, 0.0, req.item.0, mf);
                if in_window {
                    p.access_times.push(0.0);
                    obs_lat(&mut self.obs, 0.0);
                    p.hits += 1;
                    p.measured += 1;
                }
            }
            MshrAccess::Hit(AccessKind::Miss) => unreachable!("probe_via maps misses"),
            MshrAccess::Coalesced => {
                // Joined the in-flight fetch instead of duplicating the
                // transfer; the waiter settles when that fetch lands.
                p.controller.on_miss(t, req.size);
                if in_window {
                    p.measured += 1;
                }
            }
            MshrAccess::Fetch { tracked } => {
                p.controller.on_miss(t, req.size);
                if in_window {
                    p.measured += 1;
                }
                p.demand_bytes += req.size;
                launch_demand = true;
                fetch_tracked = tracked;
            }
        }
        if launch_demand {
            let shard = (req.item.0 % n_shards) as u32;
            let dest = resolve(router, me, req.item);
            let id = {
                let p = &mut self.proxies[i];
                p.job_seq += 1;
                ((me as u64) << 40) | p.job_seq
            };
            let mut job = Job {
                id,
                proxy: me as u32,
                shard,
                dest,
                hop: 0,
                size: req.size,
                spent: req.size,
                issued: t,
                item: req.item,
                kind: JobKind::Demand { measured: in_window },
                tracked: fetch_tracked,
                trace: rid,
                tseq: 0,
            };
            trace_job(&mut self.trace, &mut job, t, SpanKind::Issue, me as u64, t, mf);
            self.launch(t, job);
        }

        // Predict and prefetch.
        let p = &mut self.proxies[i];
        p.predictor.observe(req.item);
        let threshold = match self.knobs.policy {
            ProxyPolicy::NoPrefetch => f64::INFINITY,
            ProxyPolicy::FixedThreshold(th) => th,
            ProxyPolicy::Adaptive => p.controller.policy().threshold,
        };
        if in_window && threshold.is_finite() {
            p.threshold_sum += threshold;
            p.threshold_n += 1;
        }
        if threshold.is_finite() {
            let cands = p.predictor.candidates(self.knobs.max_candidates);
            if let Some(o) = self.obs.as_deref_mut() {
                o.predictions(cands.len() as u64);
            }
            let size_aware =
                self.knobs.delayed.size_aware && matches!(self.knobs.policy, ProxyPolicy::Adaptive);
            for (item, prob) in cands {
                // The size is pure data (no RNG draw), so reading it before
                // the acceptance check keeps draw order intact. On replay
                // an unknown size means the item was never seen here — a
                // Markov predictor cannot propose one, but skip defensively.
                let Some(size) = p.source.size_of(item) else { continue };
                // Byte-charged threshold: a candidate is compared against
                // ρ̂′ scaled by its own size, so big speculative objects
                // need proportionally higher confidence. Item-counted
                // configs are the degenerate case (size = ŝ̄).
                let mut th = if size_aware {
                    p.controller.threshold_for_size(size).unwrap_or(1.0)
                } else {
                    threshold
                };
                // Aggregate-delay bias: keys that have been charged
                // delayed-hit latency get a proportionally lower bar —
                // prefetching them saves their whole waiter queue.
                if let Some(agg) = p.agg.as_ref() {
                    let scale = p.retrievals.mean();
                    if scale > 0.0 {
                        th = th * scale / (scale + agg.score(&item));
                    }
                }
                // `reserve_prefetch` is the in-flight filter: false when
                // the item already has an outstanding entry (or the table
                // is full, dropping the candidate deterministically).
                if prob > th && !p.cache.contains(&item) && p.mshr.reserve_prefetch(item, t, size) {
                    let due = if self.knobs.prefetch_jitter > 0.0 {
                        t + p.jitter_rng.exp(1.0 / self.knobs.prefetch_jitter)
                    } else {
                        t
                    };
                    p.delayed.push(PendingPrefetch {
                        due,
                        item,
                        size,
                        measured: in_window,
                        decided: t,
                    });
                }
            }
        }
        self.dirty.push((CLASS_REQUEST, i));
        self.dirty.push((CLASS_PREFETCH, i));
    }
}

impl shard::EngineCore for Engine<'_> {
    type Job = Job;

    fn class_counts(&self) -> [usize; N_CLASSES] {
        let (l, p) = (self.links.len(), self.proxies.len());
        [l, l, p, p, p, p, p]
    }

    fn global_id(&self, class: usize, idx: usize) -> usize {
        match class {
            CLASS_DEPART | CLASS_ARRIVE => self.scope.links[idx],
            _ => self.scope.proxies[idx],
        }
    }

    fn due(&self, class: usize, idx: usize) -> Option<f64> {
        match class {
            CLASS_DEPART => self.links[idx].next_event(),
            CLASS_ARRIVE => self.arrivals[idx].next_time(),
            CLASS_CHECK => self.checks[idx].next_time(),
            CLASS_DELIVER => self.delivers[idx].next_time(),
            CLASS_REQUEST => self.request_due(idx),
            CLASS_PREFETCH => self.prefetch_due(idx),
            CLASS_FAIL => self.fails[idx].next_time(),
            _ => unreachable!("unknown class {class}"),
        }
    }

    fn dispatch(&mut self, class: usize, idx: usize, t: f64, router: Option<&Router>) {
        match class {
            CLASS_DEPART => self.on_link(t, idx),
            CLASS_ARRIVE => self.on_arrivals(t, idx),
            CLASS_CHECK => self.on_checks(t, idx),
            CLASS_DELIVER => self.on_delivers(t, idx),
            CLASS_REQUEST => self.on_request(idx, router),
            CLASS_PREFETCH => self.on_issue_prefetch(idx, router),
            CLASS_FAIL => self.on_fails(t, idx),
            _ => unreachable!("unknown class {class}"),
        }
    }

    fn apply_now(&mut self, e: Effect<Job>, t: f64) {
        debug_assert_eq!(e.time(), t);
        // A same-instant effect can land on a scope whose own dispatch at
        // `t` has not fired yet — tick first so grid samples stay "state
        // before `t`" under every sharding.
        self.obs_tick(t);
        match e {
            Effect::Arrive { link, job, .. } => {
                let l = self.scope.link_local(link as usize).expect("arrive in scope");
                self.arrive_now(l, t, job);
            }
            Effect::Check { q, job, .. } => {
                let i = self.scope.proxy_local(q as usize).expect("check in scope");
                self.check_now(i, t, job);
            }
            Effect::Deliver { p, job, false_hit, .. } => {
                let i = self.scope.proxy_local(p as usize).expect("deliver in scope");
                self.deliver_now(i, t, job, false_hit);
            }
            Effect::Fail { p, job, .. } => {
                let i = self.scope.proxy_local(p as usize).expect("fail in scope");
                self.fail_now(i, t, job);
            }
        }
    }

    fn enqueue(&mut self, e: Effect<Job>) {
        match e {
            Effect::Arrive { link, t, job } => {
                let l = self.scope.link_local(link as usize).expect("arrive in scope");
                self.arrivals[l].push(t, job.id, job);
                self.dirty.push((CLASS_ARRIVE, l));
            }
            Effect::Check { q, t, job } => {
                let i = self.scope.proxy_local(q as usize).expect("check in scope");
                self.checks[i].push(t, job.id, job);
                self.dirty.push((CLASS_CHECK, i));
            }
            Effect::Deliver { p, t, job, false_hit } => {
                let i = self.scope.proxy_local(p as usize).expect("deliver in scope");
                self.delivers[i].push(t, job.id, (job, false_hit));
                self.dirty.push((CLASS_DELIVER, i));
            }
            Effect::Fail { p, t, job } => {
                let i = self.scope.proxy_local(p as usize).expect("fail in scope");
                self.fails[i].push(t, job.id, job);
                self.dirty.push((CLASS_FAIL, i));
            }
        }
    }

    fn owns(&self, e: &Effect<Job>) -> bool {
        match e {
            Effect::Arrive { link, .. } => self.scope.link_local(*link as usize).is_some(),
            Effect::Check { q, .. } => self.scope.proxy_local(*q as usize).is_some(),
            Effect::Deliver { p, .. } => self.scope.proxy_local(*p as usize).is_some(),
            Effect::Fail { p, .. } => self.scope.proxy_local(*p as usize).is_some(),
        }
    }

    fn take_effects(&mut self, out: &mut Vec<Effect<Job>>) {
        out.append(&mut self.effects);
    }

    fn drain_dirty(&mut self, out: &mut Vec<(usize, usize)>) {
        out.append(&mut self.dirty);
    }

    fn sync_link_timer(&mut self, idx: usize, sched: &mut Scheduler, key: usize) {
        self.links[idx].sync_timer(sched, key);
    }

    fn refresh_payloads(&mut self, out: &mut Vec<shard::BoundaryEntry>) {
        if !self.coop_on {
            return;
        }
        for (li, p) in self.proxies.iter().enumerate() {
            let load = p.controller.rho_prime_estimate().unwrap_or(0.0);
            let snapshot =
                |p: &ProxyState| p.cache.keys().iter().map(|k| k.0).collect::<Vec<u64>>();
            let payload = if self.force_snapshot[li] {
                // A crash or digest loss invalidated the peers' view of
                // this node; the next boundary ships a full snapshot no
                // matter which refresh strategy is configured.
                self.force_snapshot[li] = false;
                self.deltas[li].clear();
                RefreshPayload::Snapshot(snapshot(p))
            } else {
                match self.refresh_strategy {
                    RefreshStrategy::Deltas => {
                        RefreshPayload::Deltas(std::mem::take(&mut self.deltas[li]))
                    }
                    RefreshStrategy::FullRebuild => {
                        // The snapshot supersedes the buffered stream; discard
                        // it so engine state stays identical across strategies.
                        self.deltas[li].clear();
                        RefreshPayload::Snapshot(snapshot(p))
                    }
                    RefreshStrategy::Auto => {
                        // The compaction fallback: a delta stream that outgrew
                        // the snapshot's wire size ships the snapshot instead.
                        if self.deltas[li].len() as u64 > self.delta_crossover {
                            self.deltas[li].clear();
                            RefreshPayload::Snapshot(snapshot(p))
                        } else {
                            RefreshPayload::Deltas(std::mem::take(&mut self.deltas[li]))
                        }
                    }
                }
            };
            out.push((self.scope.proxies[li], load, payload));
        }
    }

    fn apply_fault(&mut self, t: f64, kind: &FaultKind) {
        match kind {
            FaultKind::ProxyCrash { proxy } => {
                let Some(i) = self.scope.proxy_local(*proxy) else { return };
                self.t_end = self.t_end.max(t);
                let jp = *proxy as u64;
                let p = &mut self.proxies[i];
                // The data plane is lost: cached entries, the outstanding
                // fetch table, and the buffered digest stream. The control
                // plane (controller, predictor) survives the restart, as
                // does anything already in flight on the wire — a transfer
                // launched before the crash still lands on the cold cache.
                p.lost_entries += p.cache.keys().len() as u64;
                p.cache = new_store(&self.knobs);
                p.prefetch_cost.clear();
                let drained = p.mshr.drain_failed();
                for (item, entry) in &drained {
                    if entry.origin == FetchOrigin::Demand {
                        p.failed_fetches += 1;
                    }
                    settle_failed_waiters(
                        &mut self.trace,
                        &mut self.obs,
                        p,
                        &entry.waiters,
                        t,
                        jp,
                        item.0,
                    );
                }
                if self.coop_on {
                    self.deltas[i].clear();
                    self.force_snapshot[i] = true;
                }
            }
            FaultKind::DigestLoss { proxy } => {
                let Some(i) = self.scope.proxy_local(*proxy) else { return };
                if self.coop_on {
                    self.proxies[i].lost_entries += self.deltas[i].len() as u64;
                    self.deltas[i].clear();
                    self.force_snapshot[i] = true;
                }
            }
            _ => debug_assert!(false, "non-boundary fault {kind:?} routed to an engine"),
        }
    }
}

/// Builds one proxy's report block.
fn node_report(p: &ProxyState, proxy: usize, n_requests: u64, coop_on: bool) -> NodeReport {
    let (mean_access, ci) = p.access_times.mean_ci();
    let measured = p.measured.max(1);
    // Every demand miss launched a fetch that succeeds, coalesced onto
    // one, or failed — faults must not leak requests out of the ledger.
    debug_assert!(
        p.mshr.conservation_ok(),
        "proxy {proxy}: MSHR conservation law violated \
         (origin_fetches + coalesced + failed != demand_misses)"
    );
    // Per-distinct-entry accounting conserves prefetched bytes exactly:
    // every transferred byte is either used (served a demand) or not — no
    // clamp needed to keep goodput within the prefetched volume.
    debug_assert!(
        p.used_prefetch_bytes <= p.prefetch_bytes * (1.0 + 1e-9) + 1e-9,
        "proxy {proxy}: goodput {} exceeds prefetched volume {}",
        p.used_prefetch_bytes,
        p.prefetch_bytes
    );
    let goodput = p.used_prefetch_bytes;
    let badput = (p.prefetch_bytes - p.used_prefetch_bytes).max(0.0);
    debug_assert!(
        (goodput + badput - p.prefetch_bytes).abs() <= 1e-6 * p.prefetch_bytes.max(1.0),
        "proxy {proxy}: goodput {goodput} + badput {badput} != prefetched {}",
        p.prefetch_bytes
    );
    NodeReport {
        proxy,
        measured_requests: p.measured,
        hit_ratio: p.hits as f64 / measured as f64,
        mean_access_time: mean_access,
        access_time_ci95: ci,
        mean_retrieval_time: p.retrievals.mean(),
        retrieval_per_request: p.total_job_time / measured as f64,
        prefetches_per_request: p.prefetch_jobs as f64 / n_requests.max(1) as f64,
        goodput_bytes: Some(goodput),
        badput_bytes: Some(badput),
        demand_bytes: p.demand_bytes,
        cache_used_bytes: Some(p.cache.used_bytes()),
        peer_bytes: coop_on.then_some(p.peer_bytes),
        peer_fetches: coop_on.then_some(p.peer_fetches),
        peer_false_hits: coop_on.then_some(p.peer_false_hits),
        mean_threshold: (p.threshold_n > 0).then(|| p.threshold_sum / p.threshold_n as f64),
        rho_prime_estimate: p.controller.rho_prime_estimate(),
        h_prime_estimate: p.controller.h_prime_estimate(),
        delayed_hits: Some(p.delayed_hits),
        coalesced_requests: Some(p.mshr.coalesced()),
        origin_fetches: Some(p.mshr.origin_fetches()),
        mean_residual_wait: (p.delayed_hits > 0).then(|| p.residual.mean()),
        mean_waiter_depth: p.mshr.waiter_depth_mean(),
        mshr_rejections: Some(p.mshr.rejections()),
        demand_misses: Some(p.mshr.demand_misses()),
        mshr_failed: Some(p.mshr.failed()),
        timeouts: p.timeouts,
        retries: p.retries,
        failovers: p.failovers,
        failed_fetches: p.failed_fetches,
        lost_entries: p.lost_entries,
        unavailability: if p.measured > 0 {
            p.measured_failed as f64 / p.measured as f64
        } else {
            0.0
        },
    }
}

/// Assembles the cluster report from the (possibly sharded) engine
/// scopes, iterating every per-proxy and per-link aggregate in **global**
/// index order so the floating-point reductions are identical under every
/// partitioning.
pub(crate) fn merge_reports(
    topology: &Topology,
    engines: Vec<Engine<'_>>,
    router: Option<Router>,
) -> ClusterReport {
    let n_requests = engines[0].n_requests;
    let t_end = engines.iter().map(|e| e.t_end).fold(0.0, f64::max);
    let coop_on = router.is_some();

    let n_proxies = topology.n_proxies();
    let index = ScopeIndex::new(topology, engines.iter().map(|e| &e.scope));
    let proxy = |g: usize| {
        let (ei, li) = index.proxy(g);
        &engines[ei].proxies[li]
    };

    let nodes: Vec<NodeReport> =
        (0..n_proxies).map(|g| node_report(proxy(g), g, n_requests, coop_on)).collect();

    let link_reports: Vec<LinkReport> = topology
        .links()
        .iter()
        .enumerate()
        .map(|(g, spec)| {
            let (ei, li) = index.link(g);
            let state = &engines[ei].links[li];
            LinkReport {
                name: spec.name.clone(),
                utilisation: if t_end > 0.0 { state.busy_time() / t_end } else { 0.0 },
                bytes_carried: state.bytes_carried,
                jobs_completed: state.jobs_completed,
            }
        })
        .collect();

    let total_measured: u64 = nodes.iter().map(|n| n.measured_requests).sum();
    let mean_access_time =
        nodes.iter().map(|n| n.mean_access_time * n.measured_requests as f64).sum::<f64>()
            / total_measured.max(1) as f64;
    let total_bytes: f64 =
        (0..n_proxies).map(|g| proxy(g).demand_bytes + proxy(g).prefetch_bytes).sum();

    ClusterReport {
        nodes,
        links: link_reports,
        mean_access_time,
        bytes_per_request: total_bytes / (n_requests * n_proxies as u64).max(1) as f64,
        duration: t_end,
        coop: router.map(|r| CoopReport {
            router: r.stats(),
            peer_fetches: (0..n_proxies).map(|g| proxy(g).peer_fetches).sum(),
            peer_false_hits: (0..n_proxies).map(|g| proxy(g).peer_false_hits).sum(),
        }),
    }
}

/// What replaying a trace cost: consumed records and the high-water mark
/// of any single proxy's resident trace buffer — pinned O(chunk-size), not
/// O(trace), by the replay tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayStats {
    /// Records consumed across all proxies.
    pub records_replayed: u64,
    /// Max per-stream resident trace bytes observed.
    pub peak_resident_bytes: usize,
}

/// Side outputs of a run beyond the report/obs pair.
pub(crate) struct RunExtras {
    /// The recorded request trace, merged in global time order, when
    /// recording was requested.
    pub(crate) recorded: Option<Vec<TraceRecord>>,
    /// Replay accounting, when the workload replayed a trace.
    pub(crate) replay: Option<ReplayStats>,
}

/// Merges per-proxy recorded request streams (each already time-ordered)
/// into one globally ordered trace: by time, ties by global proxy id, then
/// by per-proxy sequence — deterministic under every sharding.
pub(crate) fn merge_recorded(parts: Vec<(usize, Vec<TraceRecord>)>) -> Vec<TraceRecord> {
    let mut tagged: Vec<(usize, usize, TraceRecord)> = parts
        .into_iter()
        .flat_map(|(g, recs)| recs.into_iter().enumerate().map(move |(s, r)| (g, s, r)))
        .collect();
    tagged.sort_by(|a, b| a.2.time.total_cmp(&b.2.time).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    tagged.into_iter().map(|(_, _, r)| r).collect()
}

/// Runs the closed loop partitioned by `plan` — the single-shard plan is
/// the classic single-threaded driver — optionally with observability
/// attached. The report is bit-identical with probes on or off (pinned by
/// `obs_parity.rs`); the second return is `Some` exactly when an enabled
/// config was passed. With `record` set, every issued request is captured
/// and returned as a merged trace in [`RunExtras`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_observed(
    topology: &Topology,
    workload: EngineWorkload<'_>,
    coop_cfg: Option<&CoopConfig>,
    requests: usize,
    warmup: usize,
    seed: u64,
    plan: &ShardPlan,
    obs: Option<&ObsConfig>,
    record: bool,
    faults: Option<&FaultConfig>,
) -> (ClusterReport, Option<ClusterObs>, RunExtras) {
    let router =
        coop_cfg.map(|c| Router::new(topology.n_proxies(), workload.knobs().cache_capacity, *c));
    // Boundary faults (crashes, digest losses) apply at globally
    // synchronised driver boundaries; everything else is a pure time
    // query the engines make directly against the plan.
    let boundary = faults.map(|f| f.plan.boundary_events()).unwrap_or_default();
    let obs_cfg = obs.filter(|c| c.enabled);
    // Series sample on the explicit grid, or the cooperative digest epoch
    // when none was given; without either, series probes stay off.
    let grid = match obs_cfg {
        Some(c) if c.sample_every > 0.0 => c.sample_every,
        Some(_) => coop_cfg.map(|c| c.digest.epoch).unwrap_or(0.0),
        None => 0.0,
    };
    let trace_every = obs_cfg.map(|c| c.trace_every).unwrap_or(0);
    let runners: Vec<ShardRunner<Engine<'_>>> = (0..plan.n_shards())
        .map(|s| {
            let scope = Scope::shard(topology, plan, s);
            let mut engine =
                Engine::new(topology, workload, coop_cfg, requests, warmup, seed, scope, faults);
            if trace_every > 0 {
                engine.attach_trace(trace_every);
            }
            if record {
                engine.attach_recorder();
            }
            match obs_cfg {
                Some(cfg) => {
                    let probes = EngineObs::new(cfg, grid, topology, &engine.scope);
                    engine.attach_obs(probes);
                    ShardRunner::new(engine).with_obs(s, cfg)
                }
                None => ShardRunner::new(engine),
            }
        })
        .collect();
    let driver =
        if plan.n_shards() > 1 && plan.lookahead() > 0.0 { "windowed" } else { "sequential" };
    let (runners, router) = shard::drive(runners, router, plan, &boundary);

    let mut engines = Vec::with_capacity(plan.n_shards());
    let mut profiles = Vec::new();
    let mut flight = Vec::new();
    for r in runners {
        let (core, robs) = r.into_parts();
        if let Some(o) = robs {
            flight.extend(o.flight.records());
            profiles.push(o.profile);
        }
        engines.push(core);
    }

    let cluster_obs = obs_cfg.map(|_| {
        let t_end = engines.iter().map(|e| e.t_end).fold(0.0, f64::max);
        let registries: Vec<Registry> =
            engines.iter_mut().filter_map(|e| e.obs_finish(t_end)).collect();
        // Span buffers concatenate in shard order; the store's total sort
        // makes the merge order-independent anyway.
        let traces = (trace_every > 0).then(|| {
            let mut events = Vec::new();
            for e in &mut engines {
                events.extend(e.take_trace_events());
            }
            TraceStore::from_events(events, trace_every)
        });
        let mut out = crate::obs::assemble(
            registries,
            profiles,
            flight,
            traces,
            plan.n_shards(),
            driver,
            grid,
            t_end,
        );
        // The router's counters become registry metrics (digest traffic is
        // the cooperative layer's headline overhead).
        if let Some(r) = router.as_ref() {
            let s = r.stats();
            for (name, v) in [
                ("coop.digest_epochs", s.digest_epochs),
                ("coop.vnode_migrations", s.vnode_migrations),
                ("coop.digest_bytes", s.digest_bytes),
                ("coop.delta_ops", s.delta_ops),
                ("coop.delta_flushes", s.delta_flushes),
                ("coop.snapshot_flushes", s.snapshot_flushes),
            ] {
                let id = out.registry.counter(name);
                out.registry.inc(id, v);
            }
        }
        out
    });

    let recorded = record.then(|| {
        let mut parts = Vec::new();
        for e in &mut engines {
            parts.extend(e.take_recorded());
        }
        merge_recorded(parts)
    });
    let replay = {
        let mut any = false;
        let (mut records, mut peak) = (0u64, 0usize);
        for e in &engines {
            if let Some((r, pk)) = e.replay_stats() {
                any = true;
                records += r;
                peak = peak.max(pk);
            }
        }
        any.then_some(ReplayStats { records_replayed: records, peak_resident_bytes: peak })
    };
    let extras = RunExtras { recorded, replay };

    (merge_reports(topology, engines, router), cluster_obs, extras)
}
