//! Closed-loop cluster engine: adaptive prefetching, optionally with
//! cooperative caching.
//!
//! Each proxy is a real edge cache: a Zipf catalog with Markov client
//! navigation (`workload::SynthWeb`), a shared tagged LRU cache
//! (`cachesim::TaggedCache`) fronting its whole client population, an
//! online `prefetch_core::AdaptiveController` provisioned against the
//! proxy's bottleneck bandwidth, and a per-proxy access predictor that
//! proposes prefetch candidates with probabilities. Misses and accepted
//! prefetches traverse a route of queueing links; items are partitioned
//! over origin shards by `item % n_shards`.
//!
//! Because every controller estimates `ρ̂′` from *its own* traffic, two
//! proxies with different local load converge to different thresholds —
//! the per-node divergence the cluster experiment (E13) demonstrates.
//!
//! With a [`coop::CoopConfig`] attached (the [`crate::Workload::Cooperative`]
//! mode, experiment E14), a [`coop::Router`] additionally resolves every
//! miss and prefetch against the peers' Bloom digests and the consistent-
//! hash placement ring: a `Peer(q)` resolution traverses the proxy↔proxy
//! peer links instead of the backbone, and a transfer that reaches a peer
//! not actually holding the entry (a **false hit** — epoch staleness or a
//! structural Bloom false positive) falls back to the origin, paying both
//! paths. Digest refresh is a first-class periodic event firing exactly on
//! the epoch grid `k · epoch`, at which point the placement policy may
//! migrate virtual nodes from hot proxies to cold ones. With a single
//! proxy the router always resolves to the origin and the engine makes
//! exactly the draws of plain adaptive mode — the parity the integration
//! tests pin.
//!
//! ## Event core vs drivers
//!
//! The module is split into an [`Engine`] — all simulation state plus one
//! handler per event kind — and the event *driver* that decides which
//! event fires next. The production driver ([`run`]) is an indexed
//! scheduler (`simcore::sched::Scheduler`): one timer per link (re-armed
//! from `LinkServer::next_event` only when that link's revision moved),
//! one request-arrival timer and one pending-prefetch timer per proxy,
//! and one digest-refresh timer — O(log n) per event. The retired
//! O(links + proxies) scan driver survives only in [`crate::legacy`],
//! pinned byte-identical to this one by the engine-parity tests.

use crate::report::{ClusterReport, CoopReport, LinkReport, NodeReport};
use crate::sim::{proxy_seed, LinkState};
use crate::{AdaptiveWorkload, CandidateSource, ProxyPolicy, Topology};
use cachesim::{AccessKind, LruCache, ReplacementCache, TaggedCache};
use coop::{CoopConfig, DeltaOp, RefreshStrategy};
use predictor::{MarkovPredictor, OraclePredictor, Predictor};
use prefetch_core::controller::{AdaptiveController, ControllerConfig};
use prefetch_core::estimator::EntryStatus;
use simcore::rng::Rng;
use simcore::stats::{BatchMeans, Welford};
use simcore::Scheduler;
use std::collections::{BinaryHeap, HashMap, HashSet};
use workload::synth_web::SynthWeb;
use workload::{ItemId, TraceRecord};

#[derive(Clone, Copy)]
enum JobKind {
    Demand { measured: bool },
    Prefetch { measured: bool },
}

/// Where a transfer is being served from.
#[derive(Clone, Copy)]
enum Dest {
    /// The item's origin shard, over the proxy's origin route.
    Origin,
    /// A peer proxy's cache, over the peer route.
    Peer(u32),
}

#[derive(Clone, Copy)]
struct Job {
    proxy: u32,
    shard: u32,
    dest: Dest,
    hop: usize,
    size: f64,
    /// Bytes this transfer has cost so far: `size`, plus `size` again for
    /// every false-hit fallback path — the per-transfer quantity good/bad
    /// prefetch accounting conserves.
    spent: f64,
    issued: f64,
    item: ItemId,
    kind: JobKind,
}

impl Job {
    /// The link path this job is currently traversing.
    fn path<'t>(&self, topology: &'t Topology) -> &'t [usize] {
        match self.dest {
            Dest::Origin => topology.route(self.proxy as usize, self.shard as usize),
            Dest::Peer(q) => topology.peer_route(self.proxy as usize, q as usize),
        }
    }
}

/// A prefetch decision waiting out its pacing jitter before hitting the
/// first link.
#[derive(Clone, Copy)]
struct PendingPrefetch {
    due: f64,
    item: ItemId,
    size: f64,
    measured: bool,
}

impl PartialEq for PendingPrefetch {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for PendingPrefetch {}
impl PartialOrd for PendingPrefetch {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingPrefetch {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest due first.
        other.due.total_cmp(&self.due)
    }
}

struct ProxyState {
    rng: Rng,
    jitter_rng: Rng,
    web: SynthWeb,
    cache: TaggedCache<ItemId, LruCache<ItemId>>,
    controller: AdaptiveController,
    predictor: Box<dyn Predictor>,
    inflight: HashSet<ItemId>,
    waiters: HashMap<ItemId, Vec<(f64, bool)>>,
    delayed: BinaryHeap<PendingPrefetch>,
    /// Bytes spent on the prefetch transfer behind each *untagged* cache
    /// entry, credited to goodput once, on the entry's first use. Keyed by
    /// item; an entry is removed exactly when the item's untagged copy is
    /// first accessed, so each distinct prefetched entry is counted at
    /// most once and goodput can never exceed the prefetched volume.
    prefetch_cost: HashMap<ItemId, f64>,
    pending: TraceRecord,
    issued: u64,
    access_times: BatchMeans,
    retrievals: Welford,
    total_job_time: f64,
    hits: u64,
    measured: u64,
    prefetch_jobs: u64,
    threshold_sum: f64,
    threshold_n: u64,
    demand_bytes: f64,
    prefetch_bytes: f64,
    used_prefetch_bytes: f64,
    peer_bytes: f64,
    peer_fetches: u64,
    peer_false_hits: u64,
}

/// All closed-loop simulation state plus one handler per event kind.
/// Drivers (the indexed scheduler below, the legacy scan) own only event
/// *selection*; every state transition lives here, so the two drivers
/// cannot diverge semantically.
pub(crate) struct Engine<'a> {
    topology: &'a Topology,
    w: &'a AdaptiveWorkload,
    n_shards: u64,
    pub(crate) links: Vec<LinkState>,
    router: Option<coop::Router>,
    /// How the router regenerates advertised digests at epoch boundaries
    /// (deltas, or the full-rebuild parity oracle).
    refresh_strategy: RefreshStrategy,
    /// Per-proxy digest-delta buffers: one op per cache-content change
    /// since the last epoch boundary, flushed by [`Engine::on_refresh`].
    /// Empty (never written) without a router.
    deltas: Vec<Vec<DeltaOp>>,
    proxies: Vec<ProxyState>,
    jobs: HashMap<u64, Job>,
    next_job_id: u64,
    t_end: f64,
    warm: u64,
    n_requests: u64,
    /// Links touched since the driver last re-synced timers.
    pub(crate) dirty_links: Vec<usize>,
}

/// Bookkeeping shared by every cache admission: drop evicted entries'
/// pending prefetch-cost records (they can never be credited once the
/// entry is gone) and append the ops the digest delta protocol ships at
/// the next epoch boundary. `deltas` is empty when no router is attached,
/// which disables the recording without a branch at every site.
fn note_cache_change(
    deltas: &mut [Vec<DeltaOp>],
    proxy: usize,
    p: &mut ProxyState,
    item: ItemId,
    admitted: bool,
    evicted: &[ItemId],
) {
    for v in evicted {
        p.prefetch_cost.remove(v);
    }
    if let Some(d) = deltas.get_mut(proxy) {
        for v in evicted {
            d.push(DeltaOp::Evict(v.0));
        }
        if admitted {
            d.push(DeltaOp::Insert(item.0));
        }
    }
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        topology: &'a Topology,
        w: &'a AdaptiveWorkload,
        coop_cfg: Option<&CoopConfig>,
        requests: usize,
        warmup: usize,
        seed: u64,
    ) -> Self {
        let links: Vec<LinkState> = topology.links().iter().map(LinkState::new).collect();
        let router =
            coop_cfg.map(|c| coop::Router::new(topology.n_proxies(), w.cache_capacity, *c));

        let proxies: Vec<ProxyState> = w
            .proxies
            .iter()
            .enumerate()
            .map(|(i, web_cfg)| {
                let mut rng = Rng::new(proxy_seed(seed, i));
                let jitter_rng = rng.split();
                // With a shared structure seed every proxy draws the same
                // catalog and navigation chain (the redundancy cooperative
                // caching removes); otherwise each proxy's structure comes
                // from its own stream, exactly as before.
                let mut web = match w.shared_structure_seed {
                    Some(s) => {
                        let mut structure_rng = Rng::new(s);
                        SynthWeb::new(*web_cfg, &mut structure_rng)
                    }
                    None => SynthWeb::new(*web_cfg, &mut rng),
                };
                let predictor: Box<dyn Predictor> = match w.predictor {
                    CandidateSource::Oracle => Box::new(OraclePredictor::from_chain(&web.chain)),
                    CandidateSource::Markov1 => Box::new(MarkovPredictor::new(1)),
                };
                let pending = web.next_request(&mut rng);
                ProxyState {
                    rng,
                    jitter_rng,
                    web,
                    cache: TaggedCache::new(match w.cache_bytes {
                        Some(bytes) => LruCache::with_byte_capacity(w.cache_capacity, bytes),
                        None => LruCache::new(w.cache_capacity),
                    }),
                    controller: AdaptiveController::new(ControllerConfig::model_a(
                        topology.proxy_bottleneck(i),
                    )),
                    predictor,
                    inflight: HashSet::new(),
                    waiters: HashMap::new(),
                    delayed: BinaryHeap::new(),
                    prefetch_cost: HashMap::new(),
                    pending,
                    issued: 0,
                    access_times: BatchMeans::new(20),
                    retrievals: Welford::new(),
                    total_job_time: 0.0,
                    hits: 0,
                    measured: 0,
                    prefetch_jobs: 0,
                    threshold_sum: 0.0,
                    threshold_n: 0,
                    demand_bytes: 0.0,
                    prefetch_bytes: 0.0,
                    used_prefetch_bytes: 0.0,
                    peer_bytes: 0.0,
                    peer_fetches: 0,
                    peer_false_hits: 0,
                }
            })
            .collect();

        let deltas = match &router {
            Some(_) => vec![Vec::new(); proxies.len()],
            None => Vec::new(),
        };
        Engine {
            topology,
            w,
            n_shards: topology.n_shards() as u64,
            links,
            router,
            refresh_strategy: coop_cfg.map(|c| c.refresh).unwrap_or_default(),
            deltas,
            proxies,
            jobs: HashMap::new(),
            next_job_id: 0,
            t_end: 0.0,
            warm: warmup as u64,
            n_requests: requests as u64,
            dirty_links: Vec::new(),
        }
    }

    pub(crate) fn n_proxies(&self) -> usize {
        self.proxies.len()
    }

    /// When proxy `i`'s next client request arrives, while its stream has
    /// requests left.
    pub(crate) fn request_due(&self, i: usize) -> Option<f64> {
        let p = &self.proxies[i];
        (p.issued < self.n_requests).then_some(p.pending.time)
    }

    /// When proxy `i`'s earliest jittered prefetch decision comes due.
    /// Pending prefetches are still issued after the request stream ends
    /// so any waiters attached to them resolve.
    pub(crate) fn prefetch_due(&self, i: usize) -> Option<f64> {
        self.proxies[i].delayed.peek().map(|d| d.due)
    }

    /// The next digest-refresh boundary (cooperative mode only). Always on
    /// the epoch grid `k · epoch` — refresh is a first-class event, not a
    /// side effect of whatever event straddles the boundary.
    pub(crate) fn refresh_boundary(&self) -> Option<f64> {
        self.router.as_ref().map(|r| r.next_refresh())
    }

    /// Resolves where a miss/prefetch at `me` is served from.
    fn resolve(&self, me: usize, item: ItemId) -> Dest {
        match self.router.as_ref().map(|r| r.resolve(me, item.0)) {
            Some(coop::Resolution::Peer(q)) => Dest::Peer(q as u32),
            _ => Dest::Origin,
        }
    }

    /// Injects `job` onto the first link of its path at time `t`.
    fn launch(&mut self, t: f64, job: Job) {
        let first = job.path(self.topology)[0];
        let id = self.next_job_id;
        self.next_job_id += 1;
        self.jobs.insert(id, job);
        self.links[first].arrive(t, job.size, id);
        self.dirty_links.push(first);
    }

    /// A link departure event on link `l` at time `t`.
    pub(crate) fn on_link(&mut self, t: f64, l: usize) {
        self.t_end = t;
        self.dirty_links.push(l);
        for c in self.links[l].on_event(t) {
            let job = self.jobs[&c.tag];
            self.links[l].bytes_carried += job.size;
            let route = job.path(self.topology);
            if job.hop + 1 < route.len() {
                let mut fwd = job;
                fwd.hop += 1;
                self.jobs.insert(c.tag, fwd);
                self.links[route[fwd.hop]].arrive(t, fwd.size, c.tag);
                self.dirty_links.push(route[fwd.hop]);
                continue;
            }
            // Digest false hit: the transfer reached a peer that does not
            // hold the item (evicted since the last refresh, or a
            // structural Bloom false positive) — fall back to the origin,
            // paying the peer path *and* the origin path.
            if let Dest::Peer(q) = job.dest {
                if !self.proxies[q as usize].cache.inner().contains(&job.item) {
                    let mut fwd = job;
                    fwd.dest = Dest::Origin;
                    fwd.hop = 0;
                    fwd.spent += fwd.size;
                    self.jobs.insert(c.tag, fwd);
                    let p = &mut self.proxies[job.proxy as usize];
                    p.peer_false_hits += 1;
                    match job.kind {
                        JobKind::Demand { .. } => p.demand_bytes += job.size,
                        JobKind::Prefetch { .. } => p.prefetch_bytes += job.size,
                    }
                    let first = fwd.path(self.topology)[0];
                    self.links[first].arrive(t, fwd.size, c.tag);
                    self.dirty_links.push(first);
                    continue;
                }
            }
            self.jobs.remove(&c.tag);
            let p = &mut self.proxies[job.proxy as usize];
            if matches!(job.dest, Dest::Peer(_)) {
                p.peer_fetches += 1;
                p.peer_bytes += job.size;
            }
            match job.kind {
                JobKind::Demand { measured } => {
                    let (admitted, evicted) = p.cache.charge_after_fetch(job.item, job.size);
                    note_cache_change(
                        &mut self.deltas,
                        job.proxy as usize,
                        p,
                        job.item,
                        admitted,
                        &evicted,
                    );
                    p.inflight.remove(&job.item);
                    if measured {
                        let sojourn = t - job.issued;
                        p.access_times.push(sojourn);
                        p.retrievals.push(sojourn);
                        p.total_job_time += sojourn;
                    }
                    if let Some(ws) = p.waiters.remove(&job.item) {
                        for (tw, mw) in ws {
                            if mw {
                                p.access_times.push(t - tw);
                            }
                        }
                    }
                }
                JobKind::Prefetch { measured } => {
                    if measured {
                        p.total_job_time += t - job.issued;
                    }
                    if let Some(ws) = p.waiters.remove(&job.item) {
                        // The item was demanded while the prefetch was in
                        // flight: it lands as a demand-fetched (tagged)
                        // entry and the waiters' clocks stop now. The
                        // transfer served real demand, so everything it
                        // cost counts as used.
                        let (admitted, evicted) = p.cache.charge_after_fetch(job.item, job.size);
                        note_cache_change(
                            &mut self.deltas,
                            job.proxy as usize,
                            p,
                            job.item,
                            admitted,
                            &evicted,
                        );
                        p.used_prefetch_bytes += job.spent;
                        for (tw, mw) in ws {
                            if mw {
                                p.access_times.push(t - tw);
                            }
                        }
                    } else {
                        let (admitted, evicted) = p.cache.charge_prefetch(job.item, job.size);
                        note_cache_change(
                            &mut self.deltas,
                            job.proxy as usize,
                            p,
                            job.item,
                            admitted,
                            &evicted,
                        );
                        if admitted {
                            p.controller.on_prefetch_insert();
                            p.prefetch_cost.insert(job.item, job.spent);
                        }
                    }
                    p.inflight.remove(&job.item);
                }
            }
        }
    }

    /// A jittered prefetch decision of proxy `i` coming due.
    pub(crate) fn on_issue_prefetch(&mut self, i: usize) {
        let pfx = self.proxies[i].delayed.pop().expect("pending prefetch");
        self.t_end = pfx.due;
        if !self.proxies[i].cache.inner().contains(&pfx.item) {
            let dest = self.resolve(i, pfx.item);
            let shard = (pfx.item.0 % self.n_shards) as u32;
            {
                let p = &mut self.proxies[i];
                p.prefetch_jobs += 1;
                p.prefetch_bytes += pfx.size;
            }
            self.launch(
                pfx.due,
                Job {
                    proxy: i as u32,
                    shard,
                    dest,
                    hop: 0,
                    size: pfx.size,
                    spent: pfx.size,
                    issued: pfx.due,
                    item: pfx.item,
                    kind: JobKind::Prefetch { measured: pfx.measured },
                },
            );
        } else {
            // Unreachable by construction: the in-flight marker set at
            // decision time reserves the item until this transfer (or its
            // cancellation here) resolves — demand misses on a reserved
            // item join `waiters` instead of fetching, and duplicate
            // prefetch decisions are filtered on `inflight` — so nothing
            // can have cached the item since the decision checked it was
            // absent. Pinned by `pending_prefetch_never_finds_item_cached`.
            debug_assert!(
                false,
                "pending prefetch for item {:?} found it already cached",
                pfx.item
            );
            // If a release build ever does get here, resolve any waiters
            // at the cancellation instant instead of silently dropping
            // their measured access times (the waiter-leak bug).
            let p = &mut self.proxies[i];
            if let Some(ws) = p.waiters.remove(&pfx.item) {
                for (tw, mw) in ws {
                    if mw {
                        p.access_times.push(pfx.due - tw);
                    }
                }
            }
            p.inflight.remove(&pfx.item);
        }
    }

    /// The next client request of proxy `i`.
    pub(crate) fn on_request(&mut self, i: usize) {
        let n_shards = self.n_shards;
        let p = &mut self.proxies[i];
        let req = p.pending;
        p.pending = p.web.next_request(&mut p.rng);
        let t = req.time;
        self.t_end = t;
        let idx = p.issued;
        p.issued += 1;
        let in_window = idx >= self.warm;
        let mut launch_demand = false;

        match p.cache.probe(req.item) {
            AccessKind::HitTagged => {
                p.controller.on_cache_hit(t, EntryStatus::Tagged, req.size);
                if in_window {
                    p.access_times.push(0.0);
                    p.hits += 1;
                    p.measured += 1;
                }
            }
            AccessKind::HitUntagged => {
                p.controller.on_cache_hit(t, EntryStatus::Untagged, req.size);
                // First use of a prefetched entry: credit exactly what its
                // transfer cost, once. The probe retags the entry, so a
                // re-access is a tagged hit and cannot double-count.
                let cost = p
                    .prefetch_cost
                    .remove(&req.item)
                    .expect("untagged cache entry must have a recorded prefetch cost");
                p.used_prefetch_bytes += cost;
                if in_window {
                    p.access_times.push(0.0);
                    p.hits += 1;
                    p.measured += 1;
                }
            }
            AccessKind::Miss => {
                p.controller.on_miss(t, req.size);
                if in_window {
                    p.measured += 1;
                }
                if p.inflight.contains(&req.item) {
                    // Join the in-flight fetch instead of duplicating the
                    // transfer.
                    p.waiters.entry(req.item).or_default().push((t, in_window));
                } else {
                    p.inflight.insert(req.item);
                    p.demand_bytes += req.size;
                    launch_demand = true;
                }
            }
        }
        if launch_demand {
            let shard = (req.item.0 % n_shards) as u32;
            let dest = self.resolve(i, req.item);
            self.launch(
                t,
                Job {
                    proxy: i as u32,
                    shard,
                    dest,
                    hop: 0,
                    size: req.size,
                    spent: req.size,
                    issued: t,
                    item: req.item,
                    kind: JobKind::Demand { measured: in_window },
                },
            );
        }

        // Predict and prefetch.
        let p = &mut self.proxies[i];
        p.predictor.observe(req.item);
        let threshold = match self.w.policy {
            ProxyPolicy::NoPrefetch => f64::INFINITY,
            ProxyPolicy::FixedThreshold(th) => th,
            ProxyPolicy::Adaptive => p.controller.policy().threshold,
        };
        if in_window && threshold.is_finite() {
            p.threshold_sum += threshold;
            p.threshold_n += 1;
        }
        if threshold.is_finite() {
            for (item, prob) in p.predictor.candidates(self.w.max_candidates) {
                if prob > threshold
                    && !p.cache.inner().contains(&item)
                    && !p.inflight.contains(&item)
                {
                    p.inflight.insert(item);
                    let size = p.web.catalog.size(item);
                    let due = if self.w.prefetch_jitter > 0.0 {
                        t + p.jitter_rng.exp(1.0 / self.w.prefetch_jitter)
                    } else {
                        t
                    };
                    p.delayed.push(PendingPrefetch { due, item, size, measured: in_window });
                }
            }
        }
    }

    /// The digest-refresh event at epoch boundary `t`: regenerate the
    /// advertised summaries — by flushing the accumulated delta streams
    /// (the production path) or by full rebuild from the live caches (the
    /// parity oracle) — and feed the controllers' `ρ̂′` estimates to the
    /// placement policy. Both strategies leave the router advertising the
    /// same state, so reports only differ in digest-exchange bytes.
    pub(crate) fn on_refresh(&mut self, t: f64) {
        let proxies = &self.proxies;
        let r = self.router.as_mut().expect("refresh event without a router");
        let loads: Vec<f64> =
            proxies.iter().map(|p| p.controller.rho_prime_estimate().unwrap_or(0.0)).collect();
        match self.refresh_strategy {
            RefreshStrategy::Deltas => r.apply_deltas(t, &mut self.deltas, &loads),
            RefreshStrategy::FullRebuild => {
                r.refresh(
                    t,
                    |proxy| proxies[proxy].cache.keys().iter().map(|k| k.0).collect(),
                    &loads,
                );
                // The oracle rebuilt from the live caches; discard the
                // buffered stream it did not ship so engine state stays
                // identical across strategies.
                for d in &mut self.deltas {
                    d.clear();
                }
            }
        }
    }

    pub(crate) fn into_report(self) -> ClusterReport {
        let coop_on = self.router.is_some();
        let n_requests = self.n_requests;
        let nodes: Vec<NodeReport> = self
            .proxies
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let (mean_access, ci) = p.access_times.mean_ci();
                let measured = p.measured.max(1);
                // Per-distinct-entry accounting conserves prefetched bytes
                // exactly: every transferred byte is either used (served a
                // demand) or not — no clamp needed to keep goodput within
                // the prefetched volume.
                debug_assert!(
                    p.used_prefetch_bytes <= p.prefetch_bytes * (1.0 + 1e-9) + 1e-9,
                    "proxy {i}: goodput {} exceeds prefetched volume {}",
                    p.used_prefetch_bytes,
                    p.prefetch_bytes
                );
                let goodput = p.used_prefetch_bytes;
                let badput = (p.prefetch_bytes - p.used_prefetch_bytes).max(0.0);
                debug_assert!(
                    (goodput + badput - p.prefetch_bytes).abs() <= 1e-6 * p.prefetch_bytes.max(1.0),
                    "proxy {i}: goodput {goodput} + badput {badput} != prefetched {}",
                    p.prefetch_bytes
                );
                NodeReport {
                    proxy: i,
                    measured_requests: p.measured,
                    hit_ratio: p.hits as f64 / measured as f64,
                    mean_access_time: mean_access,
                    access_time_ci95: ci,
                    mean_retrieval_time: p.retrievals.mean(),
                    retrieval_per_request: p.total_job_time / measured as f64,
                    prefetches_per_request: p.prefetch_jobs as f64 / n_requests.max(1) as f64,
                    goodput_bytes: Some(goodput),
                    badput_bytes: Some(badput),
                    demand_bytes: p.demand_bytes,
                    cache_used_bytes: Some(p.cache.used_bytes()),
                    peer_bytes: coop_on.then_some(p.peer_bytes),
                    peer_fetches: coop_on.then_some(p.peer_fetches),
                    peer_false_hits: coop_on.then_some(p.peer_false_hits),
                    mean_threshold: (p.threshold_n > 0)
                        .then(|| p.threshold_sum / p.threshold_n as f64),
                    rho_prime_estimate: p.controller.rho_prime_estimate(),
                    h_prime_estimate: p.controller.h_prime_estimate(),
                }
            })
            .collect();

        let t_end = self.t_end;
        let link_reports: Vec<LinkReport> = self
            .topology
            .links()
            .iter()
            .zip(&self.links)
            .map(|(spec, state)| LinkReport {
                name: spec.name.clone(),
                utilisation: if t_end > 0.0 { state.busy_time() / t_end } else { 0.0 },
                bytes_carried: state.bytes_carried,
                jobs_completed: state.jobs_completed,
            })
            .collect();

        let total_measured: u64 = nodes.iter().map(|n| n.measured_requests).sum();
        let mean_access_time =
            nodes.iter().map(|n| n.mean_access_time * n.measured_requests as f64).sum::<f64>()
                / total_measured.max(1) as f64;
        let total_bytes: f64 = self.proxies.iter().map(|p| p.demand_bytes + p.prefetch_bytes).sum();

        ClusterReport {
            nodes,
            links: link_reports,
            mean_access_time,
            bytes_per_request: total_bytes / (n_requests * self.proxies.len() as u64).max(1) as f64,
            duration: t_end,
            coop: self.router.map(|r| CoopReport {
                router: r.stats(),
                peer_fetches: self.proxies.iter().map(|p| p.peer_fetches).sum(),
                peer_false_hits: self.proxies.iter().map(|p| p.peer_false_hits).sum(),
            }),
        }
    }
}

/// Runs the closed loop on the indexed event scheduler.
///
/// Timer-key layout (also the same-instant firing order, since the
/// scheduler breaks time ties by ascending key — matching the engine's
/// historical link < request < prefetch < refresh precedence):
/// `[0, L)` link departures, `[L, L+P)` request arrivals, `[L+P, L+2P)`
/// pending-prefetch issues, `L+2P` digest refresh.
pub(crate) fn run(
    topology: &Topology,
    w: &AdaptiveWorkload,
    coop_cfg: Option<&CoopConfig>,
    requests: usize,
    warmup: usize,
    seed: u64,
) -> ClusterReport {
    let mut eng = Engine::new(topology, w, coop_cfg, requests, warmup, seed);
    let n_links = eng.links.len();
    let n_proxies = eng.n_proxies();
    let req_key = n_links;
    let pre_key = n_links + n_proxies;
    let refresh_key = n_links + 2 * n_proxies;
    let mut sched = Scheduler::with_timers(refresh_key + 1);

    for i in 0..n_proxies {
        if let Some(t) = eng.request_due(i) {
            sched.schedule(req_key + i, t);
        }
    }
    if let Some(t) = eng.refresh_boundary() {
        sched.schedule(refresh_key, t);
    }

    loop {
        // The refresh timer re-arms forever; stop once it is all that is
        // left (boundaries beyond the last real event never fire).
        match sched.peek() {
            None => break,
            Some((_, key)) if key == refresh_key && sched.len() == 1 => break,
            _ => {}
        }
        let (t, key) = sched.pop().expect("peeked event");
        if key < n_links {
            eng.on_link(t, key);
        } else if key < pre_key {
            let i = key - req_key;
            eng.on_request(i);
            sched.sync(req_key + i, eng.request_due(i));
            // The request may have queued new (possibly earlier) prefetch
            // decisions.
            sched.sync(pre_key + i, eng.prefetch_due(i));
        } else if key < refresh_key {
            let i = key - pre_key;
            eng.on_issue_prefetch(i);
            sched.sync(pre_key + i, eng.prefetch_due(i));
        } else {
            eng.on_refresh(t);
            sched.sync(refresh_key, eng.refresh_boundary());
        }
        while let Some(l) = eng.dirty_links.pop() {
            eng.links[l].sync_timer(&mut sched, l);
        }
    }
    eng.into_report()
}
