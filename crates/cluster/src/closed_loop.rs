//! Closed-loop cluster engine: adaptive prefetching, optionally with
//! cooperative caching.
//!
//! Each proxy is a real edge cache: a Zipf catalog with Markov client
//! navigation (`workload::SynthWeb`), a shared tagged LRU cache
//! (`cachesim::TaggedCache`) fronting its whole client population, an
//! online `prefetch_core::AdaptiveController` provisioned against the
//! proxy's bottleneck bandwidth, and a per-proxy access predictor that
//! proposes prefetch candidates with probabilities. Misses and accepted
//! prefetches traverse a route of queueing links; items are partitioned
//! over origin shards by `item % n_shards`.
//!
//! Because every controller estimates `ρ̂′` from *its own* traffic, two
//! proxies with different local load converge to different thresholds —
//! the per-node divergence the cluster experiment (E13) demonstrates.
//!
//! With a [`coop::CoopConfig`] attached (the [`crate::Workload::Cooperative`]
//! mode, experiment E14), a [`coop::Router`] additionally resolves every
//! miss and prefetch against the peers' Bloom digests and the consistent-
//! hash placement ring: a `Peer(q)` resolution traverses the proxy↔proxy
//! peer links instead of the backbone, and a transfer that reaches a peer
//! not actually holding the entry (a **false hit** — epoch staleness or a
//! structural Bloom false positive) falls back to the origin, paying both
//! paths. Digests refresh on the
//! configured epoch, at which point the placement policy may migrate
//! virtual nodes from hot proxies to cold ones. With a single proxy the
//! router always resolves to the origin and the engine makes exactly the
//! draws of plain adaptive mode — the parity the integration tests pin.

use crate::report::{ClusterReport, CoopReport, LinkReport, NodeReport};
use crate::sim::{earliest_link_event, proxy_seed, LinkState};
use crate::{AdaptiveWorkload, CandidateSource, ProxyPolicy, Topology};
use cachesim::{AccessKind, LruCache, ReplacementCache, TaggedCache};
use coop::CoopConfig;
use predictor::{MarkovPredictor, OraclePredictor, Predictor};
use prefetch_core::controller::{AdaptiveController, ControllerConfig};
use prefetch_core::estimator::EntryStatus;
use simcore::rng::Rng;
use simcore::stats::{BatchMeans, Welford};
use std::collections::{BinaryHeap, HashMap, HashSet};
use workload::synth_web::SynthWeb;
use workload::{ItemId, TraceRecord};

#[derive(Clone, Copy)]
enum JobKind {
    Demand { measured: bool },
    Prefetch { measured: bool },
}

/// Where a transfer is being served from.
#[derive(Clone, Copy)]
enum Dest {
    /// The item's origin shard, over the proxy's origin route.
    Origin,
    /// A peer proxy's cache, over the peer route.
    Peer(u32),
}

#[derive(Clone, Copy)]
struct Job {
    proxy: u32,
    shard: u32,
    dest: Dest,
    hop: usize,
    size: f64,
    issued: f64,
    item: ItemId,
    kind: JobKind,
}

impl Job {
    /// The link path this job is currently traversing.
    fn path<'t>(&self, topology: &'t Topology) -> &'t [usize] {
        match self.dest {
            Dest::Origin => topology.route(self.proxy as usize, self.shard as usize),
            Dest::Peer(q) => topology.peer_route(self.proxy as usize, q as usize),
        }
    }
}

/// A prefetch decision waiting out its pacing jitter before hitting the
/// first link.
#[derive(Clone, Copy)]
struct PendingPrefetch {
    due: f64,
    item: ItemId,
    size: f64,
    measured: bool,
}

impl PartialEq for PendingPrefetch {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for PendingPrefetch {}
impl PartialOrd for PendingPrefetch {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingPrefetch {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest due first.
        other.due.total_cmp(&self.due)
    }
}

struct ProxyState {
    rng: Rng,
    jitter_rng: Rng,
    web: SynthWeb,
    cache: TaggedCache<ItemId, LruCache<ItemId>>,
    controller: AdaptiveController,
    predictor: Box<dyn Predictor>,
    inflight: HashSet<ItemId>,
    waiters: HashMap<ItemId, Vec<(f64, bool)>>,
    delayed: BinaryHeap<PendingPrefetch>,
    pending: TraceRecord,
    issued: u64,
    access_times: BatchMeans,
    retrievals: Welford,
    total_job_time: f64,
    hits: u64,
    measured: u64,
    prefetch_jobs: u64,
    threshold_sum: f64,
    threshold_n: u64,
    demand_bytes: f64,
    prefetch_bytes: f64,
    used_prefetch_bytes: f64,
    peer_bytes: f64,
    peer_fetches: u64,
    peer_false_hits: u64,
}

pub(crate) fn run(
    topology: &Topology,
    w: &AdaptiveWorkload,
    coop_cfg: Option<&CoopConfig>,
    requests: usize,
    warmup: usize,
    seed: u64,
) -> ClusterReport {
    let n_shards = topology.n_shards() as u64;
    let mut links: Vec<LinkState> = topology.links().iter().map(LinkState::new).collect();
    let mut router =
        coop_cfg.map(|c| coop::Router::new(topology.n_proxies(), w.cache_capacity, *c));

    let mut proxies: Vec<ProxyState> = w
        .proxies
        .iter()
        .enumerate()
        .map(|(i, web_cfg)| {
            let mut rng = Rng::new(proxy_seed(seed, i));
            let jitter_rng = rng.split();
            // With a shared structure seed every proxy draws the same
            // catalog and navigation chain (the redundancy cooperative
            // caching removes); otherwise each proxy's structure comes
            // from its own stream, exactly as before.
            let mut web = match w.shared_structure_seed {
                Some(s) => {
                    let mut structure_rng = Rng::new(s);
                    SynthWeb::new(*web_cfg, &mut structure_rng)
                }
                None => SynthWeb::new(*web_cfg, &mut rng),
            };
            let predictor: Box<dyn Predictor> = match w.predictor {
                CandidateSource::Oracle => Box::new(OraclePredictor::from_chain(&web.chain)),
                CandidateSource::Markov1 => Box::new(MarkovPredictor::new(1)),
            };
            let pending = web.next_request(&mut rng);
            ProxyState {
                rng,
                jitter_rng,
                web,
                cache: TaggedCache::new(LruCache::new(w.cache_capacity)),
                controller: AdaptiveController::new(ControllerConfig::model_a(
                    topology.proxy_bottleneck(i),
                )),
                predictor,
                inflight: HashSet::new(),
                waiters: HashMap::new(),
                delayed: BinaryHeap::new(),
                pending,
                issued: 0,
                access_times: BatchMeans::new(20),
                retrievals: Welford::new(),
                total_job_time: 0.0,
                hits: 0,
                measured: 0,
                prefetch_jobs: 0,
                threshold_sum: 0.0,
                threshold_n: 0,
                demand_bytes: 0.0,
                prefetch_bytes: 0.0,
                used_prefetch_bytes: 0.0,
                peer_bytes: 0.0,
                peer_fetches: 0,
                peer_false_hits: 0,
            }
        })
        .collect();

    let warm = warmup as u64;
    let n_requests = requests as u64;
    let mut jobs: HashMap<u64, Job> = HashMap::new();
    let mut next_job_id: u64 = 0;
    let mut t_end = 0.0;

    // Resolves where a miss/prefetch at `me` is served from.
    let resolve = |router: &Option<coop::Router>, me: usize, item: ItemId| -> Dest {
        match router.as_ref().map(|r| r.resolve(me, item.0)) {
            Some(coop::Resolution::Peer(q)) => Dest::Peer(q as u32),
            _ => Dest::Origin,
        }
    };

    enum Ev {
        Link(f64, usize),
        Request(usize),
        IssuePrefetch(usize),
    }

    loop {
        let link_ev = earliest_link_event(&links);
        let mut req: Option<(f64, usize)> = None;
        let mut pre: Option<(f64, usize)> = None;
        for (i, p) in proxies.iter().enumerate() {
            if p.issued < n_requests && req.is_none_or(|(t, _)| p.pending.time < t) {
                req = Some((p.pending.time, i));
            }
            // Pending prefetches are still issued after the request stream
            // ends so any waiters attached to them resolve.
            if let Some(d) = p.delayed.peek() {
                if pre.is_none_or(|(t, _)| d.due < t) {
                    pre = Some((d.due, i));
                }
            }
        }

        let ts = link_ev.map_or(f64::INFINITY, |(t, _)| t);
        let tr = req.map_or(f64::INFINITY, |(t, _)| t);
        let tp = pre.map_or(f64::INFINITY, |(t, _)| t);
        let ev = if ts.is_infinite() && tr.is_infinite() && tp.is_infinite() {
            break;
        } else if ts <= tr && ts <= tp {
            let (t, l) = link_ev.expect("link event");
            Ev::Link(t, l)
        } else if tr <= tp {
            Ev::Request(req.expect("request event").1)
        } else {
            Ev::IssuePrefetch(pre.expect("prefetch event").1)
        };

        match ev {
            Ev::IssuePrefetch(i) => {
                let pfx = proxies[i].delayed.pop().expect("pending prefetch");
                t_end = pfx.due;
                // The item may have been demand-fetched while waiting; the
                // in-flight marker was set at decision time, so only issue
                // if it is still not cached.
                if !proxies[i].cache.inner().contains(&pfx.item) {
                    let dest = resolve(&router, i, pfx.item);
                    let p = &mut proxies[i];
                    p.prefetch_jobs += 1;
                    p.prefetch_bytes += pfx.size;
                    let shard = (pfx.item.0 % n_shards) as u32;
                    let id = next_job_id;
                    next_job_id += 1;
                    let job = Job {
                        proxy: i as u32,
                        shard,
                        dest,
                        hop: 0,
                        size: pfx.size,
                        issued: pfx.due,
                        item: pfx.item,
                        kind: JobKind::Prefetch { measured: pfx.measured },
                    };
                    let first = job.path(topology)[0];
                    jobs.insert(id, job);
                    links[first].arrive(pfx.due, pfx.size, id);
                } else {
                    proxies[i].inflight.remove(&pfx.item);
                }
            }
            Ev::Link(t, l) => {
                t_end = t;
                for c in links[l].on_event(t) {
                    let job = jobs[&c.tag];
                    links[l].bytes_carried += job.size;
                    let route = job.path(topology);
                    if job.hop + 1 < route.len() {
                        let mut fwd = job;
                        fwd.hop += 1;
                        jobs.insert(c.tag, fwd);
                        links[route[fwd.hop]].arrive(t, fwd.size, c.tag);
                        continue;
                    }
                    // Digest false hit: the transfer reached a peer that
                    // does not hold the item (evicted since the last
                    // refresh, or a structural Bloom false positive) —
                    // fall back to the origin, paying the peer path *and*
                    // the origin path.
                    if let Dest::Peer(q) = job.dest {
                        if !proxies[q as usize].cache.inner().contains(&job.item) {
                            let mut fwd = job;
                            fwd.dest = Dest::Origin;
                            fwd.hop = 0;
                            jobs.insert(c.tag, fwd);
                            let p = &mut proxies[job.proxy as usize];
                            p.peer_false_hits += 1;
                            match job.kind {
                                JobKind::Demand { .. } => p.demand_bytes += job.size,
                                JobKind::Prefetch { .. } => p.prefetch_bytes += job.size,
                            }
                            links[fwd.path(topology)[0]].arrive(t, fwd.size, c.tag);
                            continue;
                        }
                    }
                    jobs.remove(&c.tag);
                    let p = &mut proxies[job.proxy as usize];
                    if matches!(job.dest, Dest::Peer(_)) {
                        p.peer_fetches += 1;
                        p.peer_bytes += job.size;
                    }
                    match job.kind {
                        JobKind::Demand { measured } => {
                            p.cache.admit_after_fetch(job.item);
                            p.inflight.remove(&job.item);
                            if measured {
                                let sojourn = t - job.issued;
                                p.access_times.push(sojourn);
                                p.retrievals.push(sojourn);
                                p.total_job_time += sojourn;
                            }
                            if let Some(ws) = p.waiters.remove(&job.item) {
                                for (tw, mw) in ws {
                                    if mw {
                                        p.access_times.push(t - tw);
                                    }
                                }
                            }
                        }
                        JobKind::Prefetch { measured } => {
                            if measured {
                                p.total_job_time += t - job.issued;
                            }
                            if let Some(ws) = p.waiters.remove(&job.item) {
                                // The item was demanded while the prefetch
                                // was in flight: it lands as a demand-fetched
                                // (tagged) entry and the waiters' clocks
                                // stop now. The transfer still served real
                                // demand, so its bytes count as used.
                                p.cache.admit_after_fetch(job.item);
                                p.used_prefetch_bytes += job.size;
                                for (tw, mw) in ws {
                                    if mw {
                                        p.access_times.push(t - tw);
                                    }
                                }
                            } else {
                                p.cache.prefetch_insert(job.item);
                                p.controller.on_prefetch_insert();
                            }
                            p.inflight.remove(&job.item);
                        }
                    }
                }
            }
            Ev::Request(i) => {
                let p = &mut proxies[i];
                let req = p.pending;
                p.pending = p.web.next_request(&mut p.rng);
                let t = req.time;
                t_end = t;
                let idx = p.issued;
                p.issued += 1;
                let in_window = idx >= warm;

                match p.cache.probe(req.item) {
                    AccessKind::HitTagged => {
                        p.controller.on_cache_hit(t, EntryStatus::Tagged, req.size);
                        if in_window {
                            p.access_times.push(0.0);
                            p.hits += 1;
                            p.measured += 1;
                        }
                    }
                    AccessKind::HitUntagged => {
                        p.controller.on_cache_hit(t, EntryStatus::Untagged, req.size);
                        p.used_prefetch_bytes += req.size;
                        if in_window {
                            p.access_times.push(0.0);
                            p.hits += 1;
                            p.measured += 1;
                        }
                    }
                    AccessKind::Miss => {
                        p.controller.on_miss(t, req.size);
                        if in_window {
                            p.measured += 1;
                        }
                        if p.inflight.contains(&req.item) {
                            // Join the in-flight fetch instead of duplicating
                            // the transfer.
                            p.waiters.entry(req.item).or_default().push((t, in_window));
                        } else {
                            p.inflight.insert(req.item);
                            p.demand_bytes += req.size;
                            let shard = (req.item.0 % n_shards) as u32;
                            let dest = resolve(&router, i, req.item);
                            let id = next_job_id;
                            next_job_id += 1;
                            let job = Job {
                                proxy: i as u32,
                                shard,
                                dest,
                                hop: 0,
                                size: req.size,
                                issued: t,
                                item: req.item,
                                kind: JobKind::Demand { measured: in_window },
                            };
                            let first = job.path(topology)[0];
                            jobs.insert(id, job);
                            links[first].arrive(t, req.size, id);
                        }
                    }
                }

                // Predict and prefetch.
                let p = &mut proxies[i];
                p.predictor.observe(req.item);
                let threshold = match w.policy {
                    ProxyPolicy::NoPrefetch => f64::INFINITY,
                    ProxyPolicy::FixedThreshold(th) => th,
                    ProxyPolicy::Adaptive => p.controller.policy().threshold,
                };
                if in_window && threshold.is_finite() {
                    p.threshold_sum += threshold;
                    p.threshold_n += 1;
                }
                if threshold.is_finite() {
                    for (item, prob) in p.predictor.candidates(w.max_candidates) {
                        if prob > threshold
                            && !p.cache.inner().contains(&item)
                            && !p.inflight.contains(&item)
                        {
                            p.inflight.insert(item);
                            let size = p.web.catalog.size(item);
                            let due = if w.prefetch_jitter > 0.0 {
                                t + p.jitter_rng.exp(1.0 / w.prefetch_jitter)
                            } else {
                                t
                            };
                            p.delayed.push(PendingPrefetch {
                                due,
                                item,
                                size,
                                measured: in_window,
                            });
                        }
                    }
                }
            }
        }

        // Digest epoch: rebuild every proxy's summary from its live cache
        // and feed the controllers' ρ̂′ estimates to the placement policy.
        if let Some(r) = router.as_mut() {
            if r.refresh_due(t_end) {
                let loads: Vec<f64> = proxies
                    .iter()
                    .map(|p| p.controller.rho_prime_estimate().unwrap_or(0.0))
                    .collect();
                r.refresh(
                    t_end,
                    |proxy| proxies[proxy].cache.keys().iter().map(|k| k.0).collect(),
                    &loads,
                );
            }
        }
    }

    let coop_on = router.is_some();
    let nodes: Vec<NodeReport> = proxies
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (mean_access, ci) = p.access_times.mean_ci();
            let measured = p.measured.max(1);
            NodeReport {
                proxy: i,
                measured_requests: p.measured,
                hit_ratio: p.hits as f64 / measured as f64,
                mean_access_time: mean_access,
                access_time_ci95: ci,
                mean_retrieval_time: p.retrievals.mean(),
                retrieval_per_request: p.total_job_time / measured as f64,
                prefetches_per_request: p.prefetch_jobs as f64 / n_requests.max(1) as f64,
                goodput_bytes: Some(p.used_prefetch_bytes.min(p.prefetch_bytes)),
                badput_bytes: Some((p.prefetch_bytes - p.used_prefetch_bytes).max(0.0)),
                demand_bytes: p.demand_bytes,
                peer_bytes: coop_on.then_some(p.peer_bytes),
                peer_fetches: coop_on.then_some(p.peer_fetches),
                peer_false_hits: coop_on.then_some(p.peer_false_hits),
                mean_threshold: (p.threshold_n > 0).then(|| p.threshold_sum / p.threshold_n as f64),
                rho_prime_estimate: p.controller.rho_prime_estimate(),
                h_prime_estimate: p.controller.h_prime_estimate(),
            }
        })
        .collect();

    let link_reports: Vec<LinkReport> = topology
        .links()
        .iter()
        .zip(&links)
        .map(|(spec, state)| LinkReport {
            name: spec.name.clone(),
            utilisation: if t_end > 0.0 { state.busy_time() / t_end } else { 0.0 },
            bytes_carried: state.bytes_carried,
            jobs_completed: state.jobs_completed,
        })
        .collect();

    let total_measured: u64 = nodes.iter().map(|n| n.measured_requests).sum();
    let mean_access_time =
        nodes.iter().map(|n| n.mean_access_time * n.measured_requests as f64).sum::<f64>()
            / total_measured.max(1) as f64;
    let total_bytes: f64 = proxies.iter().map(|p| p.demand_bytes + p.prefetch_bytes).sum();

    ClusterReport {
        nodes,
        links: link_reports,
        mean_access_time,
        bytes_per_request: total_bytes / (n_requests * proxies.len() as u64).max(1) as f64,
        duration: t_end,
        coop: router.map(|r| CoopReport {
            router: r.stats(),
            peer_fetches: proxies.iter().map(|p| p.peer_fetches).sum(),
            peer_false_hits: proxies.iter().map(|p| p.peer_false_hits).sum(),
        }),
    }
}
