//! Deterministic observability: metrics registry, flight recorder, and
//! runtime profiles.
//!
//! Simulation telemetry has two hard requirements that rule out an
//! off-the-shelf metrics crate:
//!
//! 1. **Determinism** — instrumentation must never perturb the simulation:
//!    no RNG draws, no event reordering, no clock reads on the hot path.
//!    Everything in this module is a plain accumulator fed values the
//!    caller already computed; the only wall-clock numbers (profiler
//!    timings) are pushed in by drivers and kept out of simulation state.
//! 2. **Zero cost when off** — engines hold an `Option` of their probe
//!    state and every hook starts with a branch on `None`
//!    ([`ObsConfig::off`], the default). No sink, no allocation, no
//!    formatting unless observability was explicitly enabled.
//!
//! The pieces:
//!
//! * [`Registry`] — named counters, gauges (high-water-mark semantics),
//!   distributions ([`crate::stats::Welford`] plus an optional
//!   [`crate::stats::Histogram`] for percentiles), and epoch-grid time
//!   series. Registries merge by name so per-shard instances reduce to one
//!   global view: counters add, gauges max, distributions merge, series
//!   add element-wise (each shard contributes its local share of a global
//!   quantity at the same grid point).
//! * [`FlightRecorder`] — a bounded ring of recent [`FlightRecord`]s
//!   (event dispatches and cross-shard effect traffic) for diagnosing
//!   parity failures: when two drivers disagree, the last few hundred
//!   records on each side show where the schedules diverged.
//! * [`ShardProfile`] — per-shard runtime counters for the conservative-
//!   window driver: windows driven, events dispatched, barrier-wait and
//!   window-drain wall time, mailbox traffic, scheduler heap depth.

use crate::json::Json;
use crate::stats::{Histogram, Welford};
use std::collections::HashMap;

/// Switchboard for the observability layer. The default ([`ObsConfig::off`])
/// disables everything; [`ObsConfig::on`] enables the registry, probes,
/// profiler, and flight recorder with sensible defaults.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Master switch. When false, instrumented code paths reduce to one
    /// branch on a `None`.
    pub enabled: bool,
    /// Time-series sampling grid in simulation seconds. `0.0` means "use
    /// the domain's natural grid" — the cluster layer substitutes the
    /// cooperative digest-refresh epoch, and disables series probes when
    /// no such grid exists.
    pub sample_every: f64,
    /// Latency histogram range `[lo, hi)` and bin count (out-of-range
    /// samples land in the under/overflow buckets and still count toward
    /// quantiles).
    pub latency_lo: f64,
    pub latency_hi: f64,
    pub latency_bins: usize,
    /// Capacity of the per-shard flight-recorder ring; `0` disables it.
    pub flight_capacity: usize,
    /// Causal-trace head sampling: trace one request in `trace_every`
    /// (`0` disables tracing — the default even under [`ObsConfig::on`],
    /// since span buffers grow with the request count).
    pub trace_every: u64,
}

impl ObsConfig {
    /// Everything off — the default. Hot paths pay one branch.
    pub fn off() -> Self {
        ObsConfig {
            enabled: false,
            sample_every: 0.0,
            latency_lo: 0.0,
            latency_hi: 2.0,
            latency_bins: 200,
            flight_capacity: 0,
            trace_every: 0,
        }
    }

    /// Metrics + probes + profiler on, flight recorder with a small ring,
    /// series sampled on the domain's natural grid.
    pub fn on() -> Self {
        ObsConfig { enabled: true, flight_capacity: 256, ..ObsConfig::off() }
    }

    pub fn with_sample_every(mut self, dt: f64) -> Self {
        self.sample_every = dt;
        self
    }

    pub fn with_latency_range(mut self, lo: f64, hi: f64, bins: usize) -> Self {
        self.latency_lo = lo;
        self.latency_hi = hi;
        self.latency_bins = bins;
        self
    }

    pub fn with_flight_capacity(mut self, n: usize) -> Self {
        self.flight_capacity = n;
        self
    }

    /// Enables causal tracing, head-sampling one request in `every`
    /// (`1` traces everything, `0` turns tracing back off).
    pub fn with_trace_every(mut self, every: u64) -> Self {
        self.trace_every = every;
        self
    }

    /// Builds the latency distribution this config describes.
    pub fn latency_dist(&self) -> Dist {
        Dist::with_histogram(self.latency_lo, self.latency_hi, self.latency_bins)
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

/// Handle to a registered counter. Handles are plain indices — cheap to
/// copy, and hot-path updates are a bounds-checked vector write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);
/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);
/// Handle to a registered distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistId(usize);
/// Handle to a registered time series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A streaming distribution: Welford moments always, histogram quantiles
/// when a bucket geometry was declared.
#[derive(Clone, Debug)]
pub struct Dist {
    pub moments: Welford,
    pub hist: Option<Histogram>,
}

impl Dist {
    pub fn new() -> Self {
        Dist { moments: Welford::new(), hist: None }
    }

    pub fn with_histogram(lo: f64, hi: f64, bins: usize) -> Self {
        Dist { moments: Welford::new(), hist: Some(Histogram::new(lo, hi, bins)) }
    }

    #[inline]
    pub fn record(&mut self, x: f64) {
        self.moments.push(x);
        if let Some(h) = &mut self.hist {
            h.push(x);
        }
    }

    /// Histogram quantile (`None` without a histogram or without samples).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let h = self.hist.as_ref()?;
        if h.total() == 0 {
            return None;
        }
        Some(h.quantile(q))
    }

    pub fn merge(&mut self, other: &Dist) {
        self.moments.merge(&other.moments);
        match (&mut self.hist, &other.hist) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.hist = Some(b.clone()),
            _ => {}
        }
    }

    pub fn to_json(&self) -> Json {
        let w = &self.moments;
        let mut doc = Json::obj()
            .set("count", Json::num(w.count() as f64))
            .set("mean", Json::num(w.mean()))
            .set("std_dev", Json::num(w.std_dev()))
            .set("min", Json::num(w.min()))
            .set("max", Json::num(w.max()));
        if self.hist.is_some() {
            for (key, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                doc.insert(key, Json::num(self.quantile(q).unwrap_or(f64::NAN)));
            }
        }
        doc
    }
}

impl Default for Dist {
    fn default() -> Self {
        Dist::new()
    }
}

/// Named metrics, one instance per instrumented scope. Storage is flat
/// vectors addressed by the typed handles; the name index exists only for
/// registration and merging, never for iteration, so output order is the
/// deterministic registration order.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    dists: Vec<(String, Dist)>,
    series: Vec<(String, Vec<f64>)>,
    index: HashMap<String, (Kind, usize)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Dist,
    Series,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&mut self, name: &str, kind: Kind, len: usize) -> Option<usize> {
        match self.index.get(name) {
            Some(&(k, i)) => {
                assert!(k == kind, "metric {name:?} re-registered as a different kind");
                Some(i)
            }
            None => {
                self.index.insert(name.to_string(), (kind, len));
                None
            }
        }
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match self.register(name, Kind::Counter, self.counters.len()) {
            Some(i) => CounterId(i),
            None => {
                self.counters.push((name.to_string(), 0));
                CounterId(self.counters.len() - 1)
            }
        }
    }

    /// Gets or creates the gauge `name` (high-water-mark semantics).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match self.register(name, Kind::Gauge, self.gauges.len()) {
            Some(i) => GaugeId(i),
            None => {
                self.gauges.push((name.to_string(), f64::NEG_INFINITY));
                GaugeId(self.gauges.len() - 1)
            }
        }
    }

    /// Gets or creates the moments-only distribution `name`.
    pub fn dist(&mut self, name: &str) -> DistId {
        self.dist_with(name, Dist::new)
    }

    /// Gets or creates the distribution `name` with histogram quantiles.
    pub fn dist_hist(&mut self, name: &str, lo: f64, hi: f64, bins: usize) -> DistId {
        self.dist_with(name, || Dist::with_histogram(lo, hi, bins))
    }

    fn dist_with(&mut self, name: &str, make: impl FnOnce() -> Dist) -> DistId {
        match self.register(name, Kind::Dist, self.dists.len()) {
            Some(i) => DistId(i),
            None => {
                self.dists.push((name.to_string(), make()));
                DistId(self.dists.len() - 1)
            }
        }
    }

    /// Gets or creates the time series `name`.
    pub fn series(&mut self, name: &str) -> SeriesId {
        match self.register(name, Kind::Series, self.series.len()) {
            Some(i) => SeriesId(i),
            None => {
                self.series.push((name.to_string(), Vec::new()));
                SeriesId(self.series.len() - 1)
            }
        }
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Raises the gauge to `v` if higher (gauges track high-water marks).
    #[inline]
    pub fn gauge_max(&mut self, id: GaugeId, v: f64) {
        if v > self.gauges[id.0].1 {
            self.gauges[id.0].1 = v;
        }
    }

    #[inline]
    pub fn record(&mut self, id: DistId, x: f64) {
        self.dists[id.0].1.record(x);
    }

    #[inline]
    pub fn push_point(&mut self, id: SeriesId, x: f64) {
        self.series[id.0].1.push(x);
    }

    /// Counter value by name (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.index.get(name) {
            Some(&(Kind::Counter, i)) => self.counters[i].1,
            _ => 0,
        }
    }

    /// Gauge value by name (`None` when absent or never raised).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.index.get(name) {
            Some(&(Kind::Gauge, i)) if self.gauges[i].1.is_finite() => Some(self.gauges[i].1),
            _ => None,
        }
    }

    /// Distribution by name.
    pub fn dist_stats(&self, name: &str) -> Option<&Dist> {
        match self.index.get(name) {
            Some(&(Kind::Dist, i)) => Some(&self.dists[i].1),
            _ => None,
        }
    }

    /// Series points by name.
    pub fn series_points(&self, name: &str) -> Option<&[f64]> {
        match self.index.get(name) {
            Some(&(Kind::Series, i)) => Some(&self.series[i].1),
            _ => None,
        }
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    pub fn dists(&self) -> impl Iterator<Item = (&str, &Dist)> {
        self.dists.iter().map(|(n, d)| (n.as_str(), d))
    }

    pub fn all_series(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.series.iter().map(|(n, s)| (n.as_str(), s.as_slice()))
    }

    /// Merges another registry by metric name: counters add, gauges take
    /// the max, distributions merge, series add element-wise (shorter
    /// series are zero-extended — each scope contributes its share of a
    /// global quantity at the same grid index). Metrics only present in
    /// `other` are adopted in `other`'s order after existing ones.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            let id = self.counter(name);
            self.inc(id, *v);
        }
        for (name, v) in &other.gauges {
            let id = self.gauge(name);
            self.gauge_max(id, *v);
        }
        for (name, d) in &other.dists {
            let id = self.dist_with(name, Dist::new);
            self.dists[id.0].1.merge(d);
        }
        for (name, pts) in &other.series {
            let id = self.series(name);
            let mine = &mut self.series[id.0].1;
            if mine.len() < pts.len() {
                mine.resize(pts.len(), 0.0);
            }
            for (slot, p) in mine.iter_mut().zip(pts) {
                *slot += p;
            }
        }
    }

    /// Full registry as one JSON object (series included — callers that
    /// need to cap series for artifact size assemble their own document
    /// from the iteration accessors instead).
    pub fn to_json(&self) -> Json {
        let counters =
            self.counters.iter().fold(Json::obj(), |d, (n, v)| d.set(n, Json::num(*v as f64)));
        let gauges = self.gauges.iter().fold(Json::obj(), |d, (n, v)| d.set(n, Json::num(*v)));
        let dists = self.dists.iter().fold(Json::obj(), |d, (n, x)| d.set(n, x.to_json()));
        let series = self
            .series
            .iter()
            .fold(Json::obj(), |d, (n, s)| d.set(n, Json::nums(s.iter().copied())));
        Json::obj()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("dists", dists)
            .set("series", series)
    }
}

/// What a [`FlightRecord`] witnessed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// An event dispatched from the scheduler.
    Dispatch,
    /// A cross-shard effect received from a mailbox.
    EffectIn,
}

/// One entry in the flight-recorder ring: enough to reconstruct the tail
/// of a shard's schedule when chasing a parity failure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightRecord {
    /// Simulation time of the record.
    pub t: f64,
    /// Shard that produced it.
    pub shard: u32,
    /// What happened.
    pub kind: FlightKind,
    /// Event class (the engine's class index).
    pub class: u8,
    /// Global id of the entity the event addressed.
    pub entity: u64,
}

/// Bounded ring of the most recent [`FlightRecord`]s. Writes are O(1) and
/// allocation-free after the ring fills; [`FlightRecorder::records`]
/// returns the survivors oldest-first.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: Vec<FlightRecord>,
    cap: usize,
    head: usize,
    total: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { buf: Vec::with_capacity(capacity), cap: capacity, head: 0, total: 0 }
    }

    #[inline]
    pub fn record(&mut self, rec: FlightRecord) {
        if self.cap == 0 {
            return;
        }
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Records seen over the recorder's lifetime (≥ the retained count).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// Runtime profile of one shard of the conservative-window driver.
///
/// The event/window/mailbox counters are deterministic for a fixed shard
/// count (the round structure is a pure function of the schedule); the
/// wall-time accumulators are not and belong in diagnostics artifacts
/// only, never in simulation output.
#[derive(Clone, Debug)]
pub struct ShardProfile {
    pub shard: usize,
    /// Conservative windows driven (0 under the sequential driver).
    pub windows: u64,
    /// Digest-refresh rounds participated in.
    pub refreshes: u64,
    /// Events dispatched by this shard's scheduler.
    pub events: u64,
    /// Cross-shard effects posted to other shards' mailboxes.
    pub effects_sent: u64,
    /// Messages drained from this shard's mailbox, per exchange.
    pub mail_in: Welford,
    /// Largest single mailbox drain.
    pub mailbox_hwm: u64,
    /// Deepest scheduler heap observed (live + stale entries).
    pub heap_depth_hwm: usize,
    /// Wall seconds per window drain (non-deterministic).
    pub window_wall: Welford,
    /// Wall seconds per barrier wait (non-deterministic).
    pub barrier_wall: Welford,
}

impl ShardProfile {
    pub fn new(shard: usize) -> Self {
        ShardProfile {
            shard,
            windows: 0,
            refreshes: 0,
            events: 0,
            effects_sent: 0,
            mail_in: Welford::new(),
            mailbox_hwm: 0,
            heap_depth_hwm: 0,
            window_wall: Welford::new(),
            barrier_wall: Welford::new(),
        }
    }

    /// Notes a mailbox drain of `n` messages.
    pub fn mailbox_drained(&mut self, n: usize) {
        self.mail_in.push(n as f64);
        self.mailbox_hwm = self.mailbox_hwm.max(n as u64);
    }

    /// Raises the heap-depth high-water mark.
    #[inline]
    pub fn heap_depth(&mut self, depth: usize) {
        if depth > self.heap_depth_hwm {
            self.heap_depth_hwm = depth;
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("shard", Json::num(self.shard as f64))
            .set("windows", Json::num(self.windows as f64))
            .set("refreshes", Json::num(self.refreshes as f64))
            .set("events", Json::num(self.events as f64))
            .set("effects_sent", Json::num(self.effects_sent as f64))
            .set("mailbox_msgs", Json::num(self.mail_in.count() as f64 * self.mail_in.mean()))
            .set("mailbox_drains", Json::num(self.mail_in.count() as f64))
            .set("mailbox_hwm", Json::num(self.mailbox_hwm as f64))
            .set("heap_depth_hwm", Json::num(self.heap_depth_hwm as f64))
            .set("window_wall_secs", welford_json(&self.window_wall))
            .set("barrier_wall_secs", welford_json(&self.barrier_wall))
    }
}

/// `{count, mean, min, max, total}` summary of a Welford accumulator
/// (empty accumulators render min/max as null).
pub fn welford_json(w: &Welford) -> Json {
    Json::obj()
        .set("count", Json::num(w.count() as f64))
        .set("mean", Json::num(w.mean()))
        .set("min", Json::num(w.min()))
        .set("max", Json::num(w.max()))
        .set("total", Json::num(w.mean() * w.count() as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_off() {
        assert!(!ObsConfig::default().enabled);
        assert!(!ObsConfig::off().enabled);
        assert!(ObsConfig::on().enabled);
    }

    #[test]
    fn registry_get_or_create_and_update() {
        let mut r = Registry::new();
        let c = r.counter("requests");
        r.inc(c, 2);
        assert_eq!(r.counter("requests"), c, "same name, same handle");
        r.inc(c, 3);
        assert_eq!(r.counter_value("requests"), 5);
        assert_eq!(r.counter_value("absent"), 0);

        let g = r.gauge("depth.hwm");
        r.gauge_max(g, 4.0);
        r.gauge_max(g, 2.0);
        assert_eq!(r.gauge_value("depth.hwm"), Some(4.0));
        assert_eq!(r.gauge_value("untouched"), None);

        let d = r.dist_hist("latency", 0.0, 1.0, 10);
        for i in 0..10 {
            r.record(d, i as f64 / 10.0);
        }
        let dist = r.dist_stats("latency").unwrap();
        assert_eq!(dist.moments.count(), 10);
        assert!(dist.quantile(0.5).is_some());

        let s = r.series("util");
        r.push_point(s, 0.5);
        r.push_point(s, 0.75);
        assert_eq!(r.series_points("util"), Some(&[0.5, 0.75][..]));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_clash() {
        let mut r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn registry_merge_semantics() {
        let mut a = Registry::new();
        let c = a.counter("n");
        a.inc(c, 1);
        let g = a.gauge("hwm");
        a.gauge_max(g, 1.0);
        let s = a.series("util");
        a.push_point(s, 0.25);
        let d = a.dist("lat");
        a.record(d, 1.0);

        let mut b = Registry::new();
        let c = b.counter("n");
        b.inc(c, 41);
        let g = b.gauge("hwm");
        b.gauge_max(g, 3.0);
        let s = b.series("util");
        b.push_point(s, 0.5);
        b.push_point(s, 0.5);
        let d = b.dist("lat");
        b.record(d, 3.0);
        let only = b.counter("only_in_b");
        b.inc(only, 7);

        a.merge(&b);
        assert_eq!(a.counter_value("n"), 42);
        assert_eq!(a.gauge_value("hwm"), Some(3.0));
        // Element-wise add with zero-extension of the shorter series.
        assert_eq!(a.series_points("util"), Some(&[0.75, 0.5][..]));
        let lat = a.dist_stats("lat").unwrap();
        assert_eq!(lat.moments.count(), 2);
        assert!((lat.moments.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.counter_value("only_in_b"), 7);
    }

    #[test]
    fn flight_ring_wraps_keeping_newest() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(FlightRecord {
                t: i as f64,
                shard: 0,
                kind: FlightKind::Dispatch,
                class: 0,
                entity: i,
            });
        }
        assert_eq!(fr.total(), 5);
        let recs = fr.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs.iter().map(|r| r.entity).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn flight_ring_zero_capacity_is_inert() {
        let mut fr = FlightRecorder::new(0);
        fr.record(FlightRecord {
            t: 0.0,
            shard: 0,
            kind: FlightKind::EffectIn,
            class: 0,
            entity: 0,
        });
        assert_eq!(fr.total(), 0);
        assert!(fr.records().is_empty());
    }

    #[test]
    fn profile_json_has_expected_fields() {
        let mut p = ShardProfile::new(2);
        p.windows = 10;
        p.events = 1000;
        p.mailbox_drained(5);
        p.mailbox_drained(1);
        p.heap_depth(17);
        let doc = p.to_json();
        assert_eq!(doc.get("shard").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("mailbox_hwm").and_then(Json::as_f64), Some(5.0));
        assert_eq!(doc.get("mailbox_msgs").and_then(Json::as_f64), Some(6.0));
        assert_eq!(doc.get("heap_depth_hwm").and_then(Json::as_f64), Some(17.0));
        assert!(doc.get("barrier_wall_secs").is_some());
    }

    #[test]
    fn dist_json_includes_quantiles_only_with_histogram() {
        let mut plain = Dist::new();
        plain.record(1.0);
        assert!(plain.to_json().get("p50").is_none());
        let mut hist = Dist::with_histogram(0.0, 10.0, 10);
        for i in 0..100 {
            hist.record(i as f64 / 10.0);
        }
        let p50 = hist.to_json().get("p50").and_then(Json::as_f64).unwrap();
        assert!((p50 - 4.5).abs() <= 1.0);
    }
}
