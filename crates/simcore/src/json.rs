//! A minimal JSON document model: build, render, parse.
//!
//! The workspace deliberately carries no JSON dependency; the two codecs
//! that existed before this module (trace records in `workload`, bench rows
//! in the vendored `criterion`) are flat and hand-rolled per record type.
//! The observability layer needs nested documents — registries of series,
//! per-shard profiles, merged artifacts — plus a *parser* so CI can
//! schema-check the emitted artifact and experiment binaries can
//! read-modify-write a shared file. [`Json`] is the small value tree that
//! serves all of those: six variants, deterministic rendering (object
//! fields keep insertion order; no HashMap iteration anywhere), and a
//! recursive-descent parser that accepts exactly the documents the
//! renderer produces (plus standard escapes and whitespace).

use std::fmt::Write as _;

/// One JSON value. Objects preserve field insertion order so rendering is
/// deterministic and diffs are stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`] chaining.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value (non-finite floats render as `null`).
    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    /// An array from anything iterable over `Json`.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An array of numbers.
    pub fn nums(items: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(items.into_iter().map(Json::Num).collect())
    }

    /// Sets field `key` on an object (replacing an existing value), then
    /// returns `self` for chaining. Panics on non-objects.
    pub fn set(mut self, key: impl Into<String>, value: Json) -> Json {
        self.insert(key, value);
        self
    }

    /// In-place version of [`Json::set`].
    pub fn insert(&mut self, key: impl Into<String>, value: Json) {
        let Json::Obj(fields) = self else { panic!("Json::insert on a non-object") };
        let key = key.into();
        match fields.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => fields.push((key, value)),
        }
    }

    /// Field lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline — the artifact format checked into CI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&render_num(*x)),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Flat arrays of scalars render on one line; nested ones
                // get one element per line.
                let scalar = items.iter().all(|v| !matches!(v, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.render_into(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        v.render_into(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    render_str(k, out);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Integral values print without a fraction (counters stay greppable);
/// everything else uses Rust's shortest-round-trip `{:?}`; non-finite
/// values have no JSON encoding and become `null`.
fn render_num(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:?}")
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or(format!("bad \\u{hex} escape"))?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let doc = Json::obj()
            .set("name", Json::str("backbone"))
            .set("util", Json::nums([0.5, 0.75]))
            .set("count", Json::num(3.0));
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("backbone"));
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("util").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn set_replaces_existing_field() {
        let doc = Json::obj().set("x", Json::num(1.0)).set("x", Json::num(2.0));
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.as_obj().unwrap().len(), 1);
    }

    #[test]
    fn render_parse_roundtrip() {
        let doc = Json::obj()
            .set("artifact", Json::str("OBS_cluster"))
            .set("pi", Json::num(std::f64::consts::PI))
            .set("n", Json::num(42.0))
            .set("flag", Json::Bool(true))
            .set("nothing", Json::Null)
            .set("series", Json::nums([0.0, 0.125, 1e-9]))
            .set(
                "rows",
                Json::arr([Json::obj().set("shard", Json::num(0.0)).set("s", Json::str("a\"b"))]),
            );
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_accepts_standard_json() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5e3 , \"x\\u0041\" ] , \"b\" : { } } ").unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("xA"));
        assert_eq!(v.get("b").and_then(Json::as_obj).map(<[(String, Json)]>::len), Some(0));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::num(f64::NAN).render(), "null\n");
        assert_eq!(Json::num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn integers_render_bare() {
        assert_eq!(Json::num(1234.0).render(), "1234\n");
        assert_eq!(Json::num(-7.0).render(), "-7\n");
        assert_eq!(Json::num(0.5).render(), "0.5\n");
    }
}
