//! # simcore — discrete-event simulation substrate
//!
//! This crate provides the simulation machinery that every other crate in the
//! workspace builds on:
//!
//! * [`time`] — a virtual-time newtype ([`SimTime`]) with a total order.
//! * [`rng`] — a hand-rolled, reproducible PRNG ([`rng::Pcg64`]-class
//!   xoshiro256++ generator seeded through SplitMix64) with stream splitting
//!   for parallel experiments.
//! * [`dist`] — analytic sampling distributions (exponential, Pareto,
//!   log-normal, Zipf, hyper-exponential, empirical, …) behind one
//!   [`dist::Sample`] trait, each knowing its own analytic mean where it
//!   exists.
//! * [`event`] — a binary-heap event calendar with stable FIFO tie-breaking
//!   and O(1) cancellation tokens.
//! * [`sched`] — an indexed event scheduler ([`sched::Scheduler`]): a
//!   binary-heap timer wheel over a fixed key space with generation-stamped
//!   entries, so re-arming or cancelling a timer stream is O(log n)/O(1)
//!   with lazy invalidation — the core the multi-node `cluster` engines
//!   run on.
//! * [`engine`] — the event loop ([`Engine`]) that owns the calendar and the
//!   virtual clock.
//! * [`stats`] — streaming statistics: Welford moments, time-weighted
//!   averages, histograms, P² quantile estimation, batch-means confidence
//!   intervals.
//! * [`par`] — a small scoped-thread work-pool used to run
//!   parameter sweeps in parallel with deterministic output ordering.
//! * [`obs`] — deterministic observability: a metrics registry (counters,
//!   gauges, distributions, epoch-grid time series), a bounded
//!   flight-recorder ring for parity debugging, and per-shard runtime
//!   profiles. Off by default ([`obs::ObsConfig::off`]); when off,
//!   instrumented hot paths pay one branch.
//! * [`json`] — a dependency-free JSON value tree ([`json::Json`]) with a
//!   deterministic renderer and a parser, for machine-readable artifacts
//!   (`OBS_cluster.json`) and their CI schema checks.
//!
//! The engine is deliberately generic: the higher-level crates (`queueing`,
//! `netsim`) define their own state types and schedule closures against them.
//!
//! ## Example
//!
//! ```
//! use simcore::{Engine, SimTime};
//!
//! // Count how many events fire before t = 10.
//! let mut engine: Engine<u32> = Engine::new();
//! for i in 0..20 {
//!     engine.schedule_at(SimTime::from_secs(i as f64), |_, count| *count += 1);
//! }
//! let mut count = 0u32;
//! engine.run_until(SimTime::from_secs(10.0), &mut count);
//! assert_eq!(count, 11); // t = 0..=10 inclusive
//! ```

pub mod dist;
pub mod engine;
pub mod event;
pub mod faults;
pub mod json;
pub mod obs;
pub mod par;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod trace;

pub use dist::Sample;
pub use engine::Engine;
pub use event::EventToken;
pub use faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
pub use json::Json;
pub use obs::{FlightRecord, FlightRecorder, ObsConfig, Registry, ShardProfile};
pub use rng::Rng;
pub use sched::{KeyLayout, Scheduler, TimedQueue};
pub use stats::{BatchMeans, Histogram, TimeWeighted, Welford};
pub use time::SimTime;
pub use trace::{SpanEvent, SpanKind, Trace, TraceBuf, TraceClass, TraceStore};

/// Convenient re-exports for downstream simulation code.
pub mod prelude {
    pub use crate::dist::{self, Sample};
    pub use crate::engine::Engine;
    pub use crate::event::EventToken;
    pub use crate::faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, RetryPolicy};
    pub use crate::json::Json;
    pub use crate::obs::{ObsConfig, Registry};
    pub use crate::rng::Rng;
    pub use crate::sched::{KeyLayout, Scheduler, TimedQueue};
    pub use crate::stats::{BatchMeans, Histogram, TimeWeighted, Welford};
    pub use crate::time::SimTime;
}
