//! Span-based causal request tracing.
//!
//! The aggregate telemetry in [`crate::obs`] says *how much* latency a run
//! paid; this module says *where each traced request's latency went* —
//! queue wait vs service vs propagation vs peer-redirect vs
//! pending-prefetch stall. It follows the same contract as the metrics
//! layer:
//!
//! * **Zero overhead when off.** Engines hold an `Option<Box<TraceBuf>>`;
//!   with tracing disabled every record site reduces to one branch.
//! * **Report-bit-identical on/off.** Recording only *reads* simulation
//!   state: no RNG draw, no event, nothing fed back.
//! * **Deterministic head sampling.** A request's trace id is a pure hash
//!   of its `(proxy, sequence)` coordinates ([`trace_id`], built on
//!   [`crate::rng::stream_seed`]-style mixing), so whether a request is
//!   sampled is independent of sharding, timing, and every other request.
//! * **Bit-identical across shard counts.** Raw [`SpanEvent`]s carry a
//!   per-trace sequence number assigned in the job's own causal order;
//!   [`TraceStore::from_events`] sorts on `(trace, seq)`, a total key, so
//!   the merged store cannot depend on which shard recorded what.
//!
//! The extractor turns each trace's event list into a [`Trace`]: an
//! end-to-end interval tiled by **exclusive segments** (queue, service,
//! propagation, pending-prefetch stall, in-flight wait), with segments of
//! a wasted peer leg flagged `wasted` (the false-hit redirect). Exactness
//! is structural: consecutive segments share boundary values, the first
//! starts at the trace's start and the last ends at its end, so durations
//! sum to the measured end-to-end latency ([`Trace::check`] asserts it).

use crate::json::Json;
use crate::rng::{splitmix64, stream_seed};

/// Domain separator for demand-request trace ids (hits, waiters, fetches).
const SALT_REQUEST: u64 = 0x7472_6163_652d_7271; // "trace-rq"
/// Domain separator for prefetch-job trace ids.
const SALT_PREFETCH: u64 = 0x7472_6163_652d_7066; // "trace-pf"

/// Trace id for the `idx`-th client request of global proxy `proxy`.
///
/// A pure function of the request's sharding-independent coordinates: the
/// stream key `(proxy << 40) | idx` mirrors the engines' job-id layout and
/// is mixed through [`stream_seed`] + [`splitmix64`] so head sampling
/// (`id % every == 0`) takes an unbiased 1-in-`every` slice. Never zero:
/// engines use `trace == 0` as the "not sampled" marker on jobs.
pub fn request_trace_id(proxy: u64, idx: u64) -> u64 {
    trace_id(SALT_REQUEST, (proxy << 40) | idx)
}

/// Trace id for the prefetch job with per-proxy sequence `seq` at global
/// proxy `proxy` (the engines' job-id stream).
pub fn prefetch_trace_id(proxy: u64, seq: u64) -> u64 {
    trace_id(SALT_PREFETCH, (proxy << 40) | seq)
}

fn trace_id(salt: u64, stream: u64) -> u64 {
    let mut s = stream_seed(salt, stream);
    let id = splitmix64(&mut s);
    // Reserve 0 as "untraced"; remapping one value in 2^64 keeps sampling
    // unbiased for every practical `every`.
    if id == 0 {
        1
    } else {
        id
    }
}

/// What happened at one instrumentation seam.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// The request/prefetch decided to fetch. `aux` = decision time (for a
    /// jittered prefetch this precedes the issue instant — the gap is the
    /// pending-prefetch stall).
    Issue,
    /// The job entered a link's queue+server. `entity` = global link id.
    Enqueue,
    /// The job finished service on a link. `entity` = global link id,
    /// `aux` = the job's nominal service demand `size / bandwidth` (the
    /// queue/service split point).
    Dequeue,
    /// Peer-serve presence check at the far proxy. `aux` = 1.0 if held.
    Check,
    /// False-hit fallback: the peer leg was wasted, the job restarts
    /// toward the origin. `entity` = requesting proxy.
    Redirect,
    /// The response landed back at the requesting proxy.
    Deliver,
    /// A cache hit: the whole trace is one zero-latency point.
    Hit,
    /// A request joined an already-in-flight fetch; `aux` = the time the
    /// waiter started waiting (the trace spans `[aux, t]`).
    Wait,
    /// A fetch attempt timed out and a retry launched at `t`. `aux` = the
    /// instant the failed attempt's timeout expired (so `[prev, aux]` is
    /// the timeout wait and `[aux, t]` the backoff before this retry).
    /// `entity` = requesting proxy.
    Retry,
    /// The retry budget ran out: the request settles as failed at `t`
    /// (the final attempt's timeout expiry). `entity` = requesting proxy.
    Failed,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Issue => "issue",
            SpanKind::Enqueue => "enqueue",
            SpanKind::Dequeue => "dequeue",
            SpanKind::Check => "check",
            SpanKind::Redirect => "redirect",
            SpanKind::Deliver => "deliver",
            SpanKind::Hit => "hit",
            SpanKind::Wait => "wait",
            SpanKind::Retry => "retry",
            SpanKind::Failed => "failed",
        }
    }
}

/// Flag bit: the record belongs to the report's measurement window.
pub const TF_MEASURED: u8 = 1;
/// Flag bit: the job is a prefetch (demand otherwise).
pub const TF_PREFETCH: u8 = 2;
/// Flag bit: on a `Check`/`Redirect`, the peer did not hold the item.
pub const TF_FALSE_HIT: u8 = 4;

/// One raw record at an instrumentation seam. `Copy`, fixed-size, pushed
/// into a per-engine [`TraceBuf`]; everything else is derived after the
/// run. `seq` is the job's own record counter, so `(trace, seq)` totally
/// orders a trace's records independent of sharding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanEvent {
    pub trace: u64,
    pub seq: u32,
    pub t: f64,
    pub kind: SpanKind,
    /// Global id of the resource touched (link or proxy, per `kind`).
    pub entity: u64,
    /// Kind-specific scalar (see [`SpanKind`]).
    pub aux: f64,
    /// The item fetched, for display (`u64::MAX` when not applicable).
    pub item: u64,
    pub flags: u8,
}

/// Per-engine span buffer: the head-sampling modulus and an append-only
/// event list. Engines hold `Option<Box<TraceBuf>>` — `None` when tracing
/// is off, so every record site costs one branch.
#[derive(Debug)]
pub struct TraceBuf {
    every: u64,
    pub events: Vec<SpanEvent>,
}

impl TraceBuf {
    /// A buffer sampling one trace in `every` (`every` is clamped to ≥ 1).
    pub fn new(every: u64) -> TraceBuf {
        TraceBuf { every: every.max(1), events: Vec::new() }
    }

    /// Head-sampling decision for a candidate trace id.
    #[inline]
    pub fn sampled(&self, id: u64) -> bool {
        id.is_multiple_of(self.every) || self.every == 1
    }

    /// Returns `id` if sampled, else 0 (the jobs' "untraced" marker).
    #[inline]
    pub fn admit(&self, id: u64) -> u64 {
        if self.sampled(id) {
            id
        } else {
            0
        }
    }

    #[inline]
    pub fn push(&mut self, ev: SpanEvent) {
        self.events.push(ev);
    }
}

/// Which lifecycle a trace followed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceClass {
    /// Served from the local cache: zero latency.
    Hit,
    /// A demand miss that launched its own fetch.
    Demand,
    /// A demand miss that joined an already-in-flight fetch (the
    /// MSHR-style waiter — "delayed hit").
    DelayedHit,
    /// A speculative prefetch transfer.
    Prefetch,
    /// A demand miss whose fetch exhausted its retry budget: the request
    /// settled as failed, its latency tiled by timeout/backoff segments.
    Failed,
}

impl TraceClass {
    pub fn name(self) -> &'static str {
        match self {
            TraceClass::Hit => "hit",
            TraceClass::Demand => "demand",
            TraceClass::DelayedHit => "delayed_hit",
            TraceClass::Prefetch => "prefetch",
            TraceClass::Failed => "failed",
        }
    }

    pub const ALL: [TraceClass; 5] = [
        TraceClass::Hit,
        TraceClass::Demand,
        TraceClass::DelayedHit,
        TraceClass::Prefetch,
        TraceClass::Failed,
    ];
}

/// Exclusive-segment kinds the critical-path extractor attributes time to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegKind {
    /// Jittered prefetch decision waiting to be issued.
    PendingWait,
    /// In a link's queue, not yet in service.
    Queue,
    /// In service on a link (`size / bandwidth` of work).
    Service,
    /// Propagation delay between resources (request or response path).
    Prop,
    /// Waiting on someone else's in-flight fetch (delayed hit).
    Wait,
    /// Waiting out a fetch attempt that will time out (fault injection).
    Timeout,
    /// Backing off between fetch attempts (fault injection).
    Backoff,
}

impl SegKind {
    pub fn name(self) -> &'static str {
        match self {
            SegKind::PendingWait => "pending_wait",
            SegKind::Queue => "queue",
            SegKind::Service => "service",
            SegKind::Prop => "prop",
            SegKind::Wait => "wait",
            SegKind::Timeout => "timeout",
            SegKind::Backoff => "backoff",
        }
    }

    pub const ALL: [SegKind; 7] = [
        SegKind::PendingWait,
        SegKind::Queue,
        SegKind::Service,
        SegKind::Prop,
        SegKind::Wait,
        SegKind::Timeout,
        SegKind::Backoff,
    ];
}

/// One exclusive slice of a trace's end-to-end interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    pub kind: SegKind,
    pub start: f64,
    pub end: f64,
    /// Global id of the resource the time was spent on (link for
    /// queue/service, proxy otherwise).
    pub entity: u64,
    /// True for segments of a peer leg that ended in a false-hit redirect:
    /// time the cooperative layer *wasted*. Attribution buckets these
    /// under "redirect" regardless of kind.
    pub wasted: bool,
}

impl Segment {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// The attribution bucket this segment's time lands in.
    pub fn bucket(&self) -> &'static str {
        if self.wasted {
            "redirect"
        } else {
            self.kind.name()
        }
    }
}

/// Attribution buckets, in render order: the seven [`SegKind`]s plus the
/// wasted-peer-leg bucket.
pub const BUCKETS: [&str; 8] =
    ["pending_wait", "queue", "service", "prop", "wait", "timeout", "backoff", "redirect"];

/// One extracted request trace: an end-to-end interval tiled by exclusive
/// segments.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    pub id: u64,
    pub class: TraceClass,
    /// Requesting (for prefetches: issuing) global proxy id.
    pub proxy: u64,
    pub item: u64,
    /// True when the trace falls in the report's measurement window.
    pub measured: bool,
    /// Trace start: the request instant (demand/hit/waiter) or the
    /// prefetch *decision* instant (so the pending stall is inside).
    pub start: f64,
    /// Response delivery (equal to `start` for hits).
    pub end: f64,
    pub segments: Vec<Segment>,
}

impl Trace {
    /// End-to-end latency. For measured demand traces this equals the
    /// report's access-time sample bit-for-bit (both are the same
    /// `deliver_t - issue_t` subtraction).
    pub fn latency(&self) -> f64 {
        self.end - self.start
    }

    /// Sum of exclusive segment durations.
    pub fn segment_sum(&self) -> f64 {
        self.segments.iter().map(Segment::duration).sum()
    }

    /// The bucket the largest share of this trace's time went to
    /// (`"cache"` for zero-latency hits).
    pub fn dominant_bucket(&self) -> &'static str {
        let mut best = "cache";
        let mut best_d = 0.0;
        for s in &self.segments {
            let d = s.duration();
            if d > best_d {
                best_d = d;
                best = s.bucket();
            }
        }
        best
    }

    /// Structural well-formedness: segments tile `[start, end]` exactly —
    /// the first starts at `start`, consecutive segments share the *same*
    /// boundary value, the last ends at `end`, and no segment runs
    /// backwards. Exact `f64` comparisons throughout: tiling is by
    /// construction, not by tolerance. (With exact tiling the segment
    /// durations telescope to `end - start` up to float summation order —
    /// the conservation the tests assert at 1e-9.)
    pub fn check(&self) -> Result<(), String> {
        let mut cursor = self.start;
        for (k, s) in self.segments.iter().enumerate() {
            if s.start != cursor {
                return Err(format!(
                    "trace {:#x}: segment {k} starts at {} but previous ended at {cursor}",
                    self.id, s.start
                ));
            }
            if s.end < s.start {
                return Err(format!("trace {:#x}: segment {k} runs backwards", self.id));
            }
            cursor = s.end;
        }
        if cursor != self.end {
            return Err(format!(
                "trace {:#x}: segments end at {cursor}, trace ends at {}",
                self.id, self.end
            ));
        }
        Ok(())
    }
}

/// Per-(class, bucket) latency-attribution aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BucketStat {
    pub total: f64,
    pub count: u64,
}

/// Attribution table for one [`TraceClass`].
#[derive(Clone, Debug, PartialEq)]
pub struct ClassAttribution {
    pub class: TraceClass,
    pub traces: u64,
    pub measured: u64,
    pub latency_total: f64,
    /// Indexed like [`BUCKETS`].
    pub buckets: [BucketStat; BUCKETS.len()],
}

impl ClassAttribution {
    fn new(class: TraceClass) -> ClassAttribution {
        ClassAttribution {
            class,
            traces: 0,
            measured: 0,
            latency_total: 0.0,
            buckets: [BucketStat::default(); BUCKETS.len()],
        }
    }

    pub fn mean_latency(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.latency_total / self.traces as f64
        }
    }
}

/// The merged, extracted traces of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStore {
    /// Head-sampling modulus the run used (1 = every request).
    pub every: u64,
    /// Extracted traces, sorted by `(start, id)` — a deterministic order
    /// under every sharding.
    pub traces: Vec<Trace>,
}

impl TraceStore {
    /// Merges raw span buffers (concatenated in any order) into extracted
    /// traces. Events are sorted by the total key `(trace, seq)`; each
    /// trace group is handed to the critical-path extractor.
    pub fn from_events(mut events: Vec<SpanEvent>, every: u64) -> TraceStore {
        events.sort_by(|a, b| {
            a.trace.cmp(&b.trace).then(a.seq.cmp(&b.seq)).then(a.t.total_cmp(&b.t))
        });
        let mut traces = Vec::new();
        let mut lo = 0;
        while lo < events.len() {
            let id = events[lo].trace;
            let mut hi = lo;
            while hi < events.len() && events[hi].trace == id {
                hi += 1;
            }
            traces.push(extract(&events[lo..hi]));
            lo = hi;
        }
        traces.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.id.cmp(&b.id)));
        TraceStore { every: every.max(1), traces }
    }

    /// Per-class latency attribution over all traces.
    pub fn attribution(&self) -> Vec<ClassAttribution> {
        let mut out: Vec<ClassAttribution> =
            TraceClass::ALL.iter().map(|&c| ClassAttribution::new(c)).collect();
        for tr in &self.traces {
            let a = &mut out[TraceClass::ALL.iter().position(|&c| c == tr.class).unwrap()];
            a.traces += 1;
            if tr.measured {
                a.measured += 1;
            }
            a.latency_total += tr.latency();
            for s in &tr.segments {
                let b = BUCKETS.iter().position(|&n| n == s.bucket()).unwrap();
                a.buckets[b].total += s.duration();
                a.buckets[b].count += 1;
            }
        }
        out
    }

    /// The `k` slowest traces, slowest first (ties broken by id).
    pub fn top_k_slowest(&self, k: usize) -> Vec<&Trace> {
        let mut all: Vec<&Trace> = self.traces.iter().collect();
        all.sort_by(|a, b| b.latency().total_cmp(&a.latency()).then(a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    /// Renders every trace as Chrome trace-event JSON (`chrome://tracing`
    /// / Perfetto "JSON Array Format"): one `"X"` complete event per
    /// segment, `pid` = requesting proxy, `tid` = trace index, timestamps
    /// in microseconds of simulation time.
    pub fn chrome_json(&self) -> Json {
        let us = 1e6;
        let mut events = Vec::new();
        for (ti, tr) in self.traces.iter().enumerate() {
            events.push(
                Json::obj()
                    .set("name", Json::str(format!("{} item {}", tr.class.name(), tr.item)))
                    .set("cat", Json::str(tr.class.name()))
                    .set("ph", Json::str("X"))
                    .set("ts", Json::num(tr.start * us))
                    .set("dur", Json::num(tr.latency() * us))
                    .set("pid", Json::num(tr.proxy as f64))
                    .set("tid", Json::num(ti as f64)),
            );
            for s in &tr.segments {
                events.push(
                    Json::obj()
                        .set("name", Json::str(format!("{} @{}", s.bucket(), s.entity)))
                        .set("cat", Json::str(s.bucket()))
                        .set("ph", Json::str("X"))
                        .set("ts", Json::num(s.start * us))
                        .set("dur", Json::num(s.duration() * us))
                        .set("pid", Json::num(tr.proxy as f64))
                        .set("tid", Json::num(ti as f64)),
                );
            }
        }
        Json::obj().set("displayTimeUnit", Json::str("ms")).set("traceEvents", Json::Arr(events))
    }

    /// Summary for the run artifact: sampling rate, per-class attribution,
    /// and the top-`k` slowest traces with their segment breakdown.
    pub fn to_json(&self, top_k: usize) -> Json {
        let mut classes = Json::obj();
        for a in self.attribution() {
            let mut buckets = Json::obj();
            for (bi, &name) in BUCKETS.iter().enumerate() {
                if a.buckets[bi].count > 0 {
                    buckets.insert(
                        name,
                        Json::obj()
                            .set("total", Json::num(a.buckets[bi].total))
                            .set("segments", Json::num(a.buckets[bi].count as f64)),
                    );
                }
            }
            classes.insert(
                a.class.name(),
                Json::obj()
                    .set("traces", Json::num(a.traces as f64))
                    .set("measured", Json::num(a.measured as f64))
                    .set("mean_latency", Json::num(a.mean_latency()))
                    .set("buckets", buckets),
            );
        }
        let slowest = Json::Arr(
            self.top_k_slowest(top_k)
                .iter()
                .map(|tr| {
                    Json::obj()
                        .set("trace", Json::str(format!("{:#018x}", tr.id)))
                        .set("class", Json::str(tr.class.name()))
                        .set("proxy", Json::num(tr.proxy as f64))
                        .set("item", Json::num(tr.item as f64))
                        .set("latency", Json::num(tr.latency()))
                        .set("dominant", Json::str(tr.dominant_bucket()))
                        .set("segments", Json::num(tr.segments.len() as f64))
                })
                .collect(),
        );
        Json::obj()
            .set("sample_every", Json::num(self.every as f64))
            .set("traces", Json::num(self.traces.len() as f64))
            .set("classes", classes)
            .set("slowest", slowest)
    }
}

/// Extracts one trace from its `(trace, seq)`-sorted records.
fn extract(events: &[SpanEvent]) -> Trace {
    let first = events[0];
    let measured = first.flags & TF_MEASURED != 0;
    match first.kind {
        SpanKind::Hit => Trace {
            id: first.trace,
            class: TraceClass::Hit,
            proxy: first.entity,
            item: first.item,
            measured,
            start: first.t,
            end: first.t,
            segments: Vec::new(),
        },
        SpanKind::Wait => Trace {
            id: first.trace,
            class: TraceClass::DelayedHit,
            proxy: first.entity,
            item: first.item,
            measured,
            start: first.aux,
            end: first.t,
            segments: vec![Segment {
                kind: SegKind::Wait,
                start: first.aux,
                end: first.t,
                entity: first.entity,
                wasted: false,
            }],
        },
        SpanKind::Issue => extract_job(events),
        other => {
            debug_assert!(false, "trace {:#x} starts with {:?}", first.trace, other);
            // A truncated trace (e.g. a fetch still in flight at the end
            // of the run) degenerates to a zero-length marker.
            Trace {
                id: first.trace,
                class: TraceClass::Demand,
                proxy: first.entity,
                item: first.item,
                measured,
                start: first.t,
                end: first.t,
                segments: Vec::new(),
            }
        }
    }
}

/// Walks an `Issue …` job lifecycle into exclusive segments. The cursor
/// invariant — every pushed segment starts exactly where the previous one
/// ended — is what makes conservation structural.
fn extract_job(events: &[SpanEvent]) -> Trace {
    let first = events[0];
    let measured = first.flags & TF_MEASURED != 0;
    let mut class =
        if first.flags & TF_PREFETCH != 0 { TraceClass::Prefetch } else { TraceClass::Demand };
    let proxy = first.entity;
    // A jittered prefetch is decided at `aux` and issued at `t`; the gap
    // is a pending-prefetch stall. Demand fetches issue at decision time.
    let start = if first.aux < first.t { first.aux } else { first.t };
    let mut segments = Vec::new();
    if first.aux < first.t {
        segments.push(Segment {
            kind: SegKind::PendingWait,
            start: first.aux,
            end: first.t,
            entity: proxy,
            wasted: false,
        });
    }
    let mut cursor = first.t;
    let mut end = first.t;
    // Segments since this index belong to the current (possibly wasted)
    // leg; a Redirect flips them to `wasted`.
    let mut leg_from = segments.len();
    let mut open: Option<(u64, f64)> = None;
    for ev in &events[1..] {
        match ev.kind {
            SpanKind::Enqueue => {
                if ev.t > cursor {
                    segments.push(Segment {
                        kind: SegKind::Prop,
                        start: cursor,
                        end: ev.t,
                        entity: ev.entity,
                        wasted: false,
                    });
                }
                open = Some((ev.entity, ev.t));
                cursor = ev.t;
            }
            SpanKind::Dequeue => {
                let (entity, t_in) = open.take().unwrap_or((ev.entity, cursor));
                // The nominal service demand is `size / bandwidth` (`aux`);
                // everything before its start is queueing/sharing delay.
                // Clamped into the sojourn so degenerate float cases stay
                // well-formed.
                let sb = (ev.t - ev.aux).max(t_in).min(ev.t);
                if sb > t_in {
                    segments.push(Segment {
                        kind: SegKind::Queue,
                        start: t_in,
                        end: sb,
                        entity,
                        wasted: false,
                    });
                }
                if ev.t > sb {
                    segments.push(Segment {
                        kind: SegKind::Service,
                        start: sb,
                        end: ev.t,
                        entity,
                        wasted: false,
                    });
                }
                cursor = ev.t;
            }
            SpanKind::Check => {
                if ev.t > cursor {
                    segments.push(Segment {
                        kind: SegKind::Prop,
                        start: cursor,
                        end: ev.t,
                        entity: ev.entity,
                        wasted: false,
                    });
                }
                cursor = ev.t;
            }
            SpanKind::Redirect => {
                if ev.t > cursor {
                    segments.push(Segment {
                        kind: SegKind::Prop,
                        start: cursor,
                        end: ev.t,
                        entity: ev.entity,
                        wasted: false,
                    });
                }
                cursor = ev.t;
                // The whole peer leg up to here bought nothing.
                for s in &mut segments[leg_from..] {
                    s.wasted = true;
                }
                leg_from = segments.len();
            }
            SpanKind::Deliver => {
                if ev.t > cursor {
                    segments.push(Segment {
                        kind: SegKind::Prop,
                        start: cursor,
                        end: ev.t,
                        entity: ev.entity,
                        wasted: false,
                    });
                }
                cursor = ev.t;
                end = ev.t;
            }
            SpanKind::Retry => {
                // `[cursor, aux]` waited out the doomed attempt's timeout;
                // `[aux, t]` is the backoff before this retry launched.
                let expiry = ev.aux.max(cursor).min(ev.t);
                if expiry > cursor {
                    segments.push(Segment {
                        kind: SegKind::Timeout,
                        start: cursor,
                        end: expiry,
                        entity: ev.entity,
                        wasted: false,
                    });
                }
                if ev.t > expiry {
                    segments.push(Segment {
                        kind: SegKind::Backoff,
                        start: expiry,
                        end: ev.t,
                        entity: ev.entity,
                        wasted: false,
                    });
                }
                cursor = ev.t;
                open = None;
            }
            SpanKind::Failed => {
                if ev.t > cursor {
                    segments.push(Segment {
                        kind: SegKind::Timeout,
                        start: cursor,
                        end: ev.t,
                        entity: ev.entity,
                        wasted: false,
                    });
                }
                cursor = ev.t;
                end = ev.t;
                if class != TraceClass::Prefetch {
                    class = TraceClass::Failed;
                }
            }
            SpanKind::Issue | SpanKind::Hit | SpanKind::Wait => {
                debug_assert!(false, "trace {:#x}: unexpected {:?} mid-trace", ev.trace, ev.kind);
            }
        }
    }
    // A job still in flight at the end of the run never delivered: close
    // the trace at the last recorded seam so the tiling stays exact.
    if end < cursor {
        end = cursor;
    }
    Trace { id: first.trace, class, proxy, item: first.item, measured, start, end, segments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        trace: u64,
        seq: u32,
        t: f64,
        kind: SpanKind,
        entity: u64,
        aux: f64,
        flags: u8,
    ) -> SpanEvent {
        SpanEvent { trace, seq, t, kind, entity, aux, item: 7, flags }
    }

    #[test]
    fn trace_ids_are_nonzero_and_stable() {
        let a = request_trace_id(3, 41);
        assert_ne!(a, 0);
        assert_eq!(a, request_trace_id(3, 41));
        assert_ne!(a, request_trace_id(3, 42));
        assert_ne!(a, prefetch_trace_id(3, 41));
    }

    #[test]
    fn head_sampling_is_modular() {
        let b = TraceBuf::new(4);
        let hits =
            (0..10_000u64).map(|i| request_trace_id(1, i)).filter(|&id| b.sampled(id)).count();
        // 1-in-4 of a uniform hash: loose band.
        assert!((1_500..3_500).contains(&hits), "{hits} of 10000 sampled");
        assert!(TraceBuf::new(1).sampled(request_trace_id(0, 0)));
        assert_eq!(b.admit(5), 0);
    }

    #[test]
    fn demand_lifecycle_tiles_exactly() {
        let id = 9;
        // Issue at 1.0, hop enqueue 1.1 (prop 0.1), dequeue 1.5 with
        // 0.25 service, deliver 1.8.
        let events = vec![
            ev(id, 0, 1.0, SpanKind::Issue, 2, 1.0, TF_MEASURED),
            ev(id, 1, 1.1, SpanKind::Enqueue, 10, 0.0, 0),
            ev(id, 2, 1.5, SpanKind::Dequeue, 10, 0.25, 0),
            ev(id, 3, 1.8, SpanKind::Deliver, 2, 0.0, 0),
        ];
        let store = TraceStore::from_events(events, 1);
        assert_eq!(store.traces.len(), 1);
        let tr = &store.traces[0];
        assert_eq!(tr.class, TraceClass::Demand);
        assert!(tr.measured);
        tr.check().unwrap();
        assert!((tr.latency() - 0.8).abs() < 1e-12);
        let kinds: Vec<SegKind> = tr.segments.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SegKind::Prop, SegKind::Queue, SegKind::Service, SegKind::Prop]);
        assert!((tr.segment_sum() - tr.latency()).abs() < 1e-12);
    }

    #[test]
    fn redirect_marks_peer_leg_wasted() {
        let id = 11;
        let events = vec![
            ev(id, 0, 0.0, SpanKind::Issue, 1, 0.0, TF_MEASURED),
            ev(id, 1, 0.0, SpanKind::Enqueue, 4, 0.0, 0),
            ev(id, 2, 0.5, SpanKind::Dequeue, 4, 0.5, 0),
            ev(id, 3, 0.6, SpanKind::Check, 3, 0.0, TF_FALSE_HIT),
            ev(id, 4, 0.7, SpanKind::Redirect, 1, 0.0, TF_FALSE_HIT),
            ev(id, 5, 0.7, SpanKind::Enqueue, 8, 0.0, 0),
            ev(id, 6, 1.2, SpanKind::Dequeue, 8, 0.5, 0),
            ev(id, 7, 1.2, SpanKind::Deliver, 1, 0.0, 0),
        ];
        let store = TraceStore::from_events(events, 1);
        let tr = &store.traces[0];
        tr.check().unwrap();
        let wasted: f64 = tr.segments.iter().filter(|s| s.wasted).map(Segment::duration).sum();
        assert!((wasted - 0.7).abs() < 1e-12, "wasted {wasted}");
        assert!(!tr.segments.last().unwrap().wasted);
        let att = store.attribution();
        let demand = att.iter().find(|a| a.class == TraceClass::Demand).unwrap();
        let redirect_bucket = BUCKETS.iter().position(|&b| b == "redirect").unwrap();
        assert!((demand.buckets[redirect_bucket].total - 0.7).abs() < 1e-12);
    }

    #[test]
    fn prefetch_pending_stall_and_waiters() {
        let pid = 21;
        let wid = 23;
        let events = vec![
            // Prefetch decided at 2.0, issued at 2.4 after jitter.
            ev(pid, 0, 2.4, SpanKind::Issue, 0, 2.0, TF_PREFETCH),
            ev(pid, 1, 2.4, SpanKind::Enqueue, 5, 0.0, 0),
            ev(pid, 2, 3.0, SpanKind::Dequeue, 5, 0.6, 0),
            ev(pid, 3, 3.2, SpanKind::Deliver, 0, 0.0, 0),
            // A demand arrives at 2.9 and waits on it until 3.2.
            ev(wid, 0, 3.2, SpanKind::Wait, 0, 2.9, TF_MEASURED),
        ];
        let store = TraceStore::from_events(events, 1);
        assert_eq!(store.traces.len(), 2);
        let pf = store.traces.iter().find(|t| t.class == TraceClass::Prefetch).unwrap();
        pf.check().unwrap();
        assert_eq!(pf.segments[0].kind, SegKind::PendingWait);
        assert!((pf.latency() - 1.2).abs() < 1e-12);
        let dh = store.traces.iter().find(|t| t.class == TraceClass::DelayedHit).unwrap();
        dh.check().unwrap();
        assert!((dh.latency() - 0.3).abs() < 1e-12);
        assert_eq!(dh.dominant_bucket(), "wait");
    }

    #[test]
    fn store_order_is_shard_independent() {
        let mk = |shuffled: bool| {
            let a = vec![
                ev(5, 0, 1.0, SpanKind::Issue, 0, 1.0, 0),
                ev(5, 1, 1.0, SpanKind::Enqueue, 2, 0.0, 0),
                ev(5, 2, 2.0, SpanKind::Dequeue, 2, 1.0, 0),
                ev(5, 3, 2.0, SpanKind::Deliver, 0, 0.0, 0),
            ];
            let b = vec![ev(3, 0, 0.5, SpanKind::Hit, 1, 0.0, TF_MEASURED)];
            let mut all = Vec::new();
            if shuffled {
                // Interleave as two shards' buffers might.
                all.push(a[2]);
                all.push(b[0]);
                all.push(a[0]);
                all.push(a[3]);
                all.push(a[1]);
            } else {
                all.extend(a);
                all.extend(b);
            }
            TraceStore::from_events(all, 2)
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn retry_legs_tile_timeout_then_backoff() {
        let id = 31;
        let events = vec![
            // Issued at 1.0; first attempt times out at 2.0; backoff until
            // 2.3; second attempt succeeds over the network.
            ev(id, 0, 1.0, SpanKind::Issue, 2, 1.0, TF_MEASURED),
            ev(id, 1, 2.3, SpanKind::Retry, 2, 2.0, 0),
            ev(id, 2, 2.3, SpanKind::Enqueue, 4, 0.0, 0),
            ev(id, 3, 2.8, SpanKind::Dequeue, 4, 0.5, 0),
            ev(id, 4, 3.0, SpanKind::Deliver, 2, 0.0, 0),
        ];
        let store = TraceStore::from_events(events, 1);
        let tr = &store.traces[0];
        assert_eq!(tr.class, TraceClass::Demand);
        tr.check().unwrap();
        assert!((tr.latency() - 2.0).abs() < 1e-12);
        let kinds: Vec<SegKind> = tr.segments.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SegKind::Timeout, SegKind::Backoff, SegKind::Service, SegKind::Prop]
        );
        assert!((tr.segments[0].duration() - 1.0).abs() < 1e-12);
        assert!((tr.segments[1].duration() - 0.3).abs() < 1e-12);
        assert_eq!(tr.dominant_bucket(), "timeout");
    }

    #[test]
    fn exhausted_retries_settle_as_failed_class() {
        let id = 33;
        let events = vec![
            ev(id, 0, 1.0, SpanKind::Issue, 0, 1.0, TF_MEASURED),
            ev(id, 1, 2.5, SpanKind::Retry, 0, 2.0, 0),
            // Second attempt also times out; budget gone → failed at 3.5.
            ev(id, 2, 3.5, SpanKind::Failed, 0, 0.0, 0),
        ];
        let store = TraceStore::from_events(events, 1);
        let tr = &store.traces[0];
        assert_eq!(tr.class, TraceClass::Failed);
        assert!(tr.measured);
        tr.check().unwrap();
        assert!((tr.latency() - 2.5).abs() < 1e-12);
        let kinds: Vec<SegKind> = tr.segments.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SegKind::Timeout, SegKind::Backoff, SegKind::Timeout]);
        let att = store.attribution();
        let failed = att.iter().find(|a| a.class == TraceClass::Failed).unwrap();
        assert_eq!(failed.traces, 1);
        let timeout_bucket = BUCKETS.iter().position(|&b| b == "timeout").unwrap();
        assert!((failed.buckets[timeout_bucket].total - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_and_summary_json_render() {
        let events = vec![
            ev(5, 0, 1.0, SpanKind::Issue, 0, 1.0, TF_MEASURED),
            ev(5, 1, 1.0, SpanKind::Enqueue, 2, 0.0, 0),
            ev(5, 2, 2.0, SpanKind::Dequeue, 2, 1.0, 0),
            ev(5, 3, 2.0, SpanKind::Deliver, 0, 0.0, 0),
        ];
        let store = TraceStore::from_events(events, 1);
        let chrome = store.chrome_json();
        let evs = chrome.get("traceEvents").and_then(Json::as_arr).unwrap();
        // One summary event plus one per segment.
        assert_eq!(evs.len(), 1 + store.traces[0].segments.len());
        assert_eq!(evs[0].get("ph").and_then(Json::as_str), Some("X"));
        let sum = store.to_json(3);
        assert_eq!(sum.get("traces").and_then(Json::as_f64), Some(1.0));
        assert!(Json::parse(&sum.render()).is_ok());
    }
}
