//! Sampling distributions.
//!
//! Everything that generates workload randomness — item sizes, inter-arrival
//! times, popularity ranks — goes through the [`Sample`] trait so that
//! simulators can be parameterised by distribution. Each distribution knows
//! its analytic mean (used by the analytical models, which only see `s̄`),
//! and most know their variance.
//!
//! The catalogue-sampling distributions ([`Discrete`], [`Zipf`]) return
//! indices and use Walker's alias method for O(1) draws.

use crate::rng::Rng;

/// A distribution over `f64` values.
pub trait Sample: Send + Sync {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// Analytic mean, if it exists and is finite.
    fn mean(&self) -> f64;

    /// Analytic variance, if known and finite.
    fn variance(&self) -> Option<f64> {
        None
    }
}

/// Point mass at `value` (deterministic service/size).
#[derive(Clone, Copy, Debug)]
pub struct Deterministic(pub f64);

impl Sample for Deterministic {
    fn sample(&self, _rng: &mut Rng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
    fn variance(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    pub lo: f64,
    pub hi: f64,
}

impl Uniform {
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "Uniform: lo > hi");
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
    fn variance(&self) -> Option<f64> {
        let w = self.hi - self.lo;
        Some(w * w / 12.0)
    }
}

/// Exponential with rate `rate` (mean `1/rate`).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    pub rate: f64,
}

impl Exponential {
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "Exponential: rate must be > 0");
        Exponential { rate }
    }
    /// Exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.exp(self.rate)
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
    fn variance(&self) -> Option<f64> {
        Some(1.0 / (self.rate * self.rate))
    }
}

/// Erlang-k: sum of `k` independent exponentials of rate `rate`.
#[derive(Clone, Copy, Debug)]
pub struct Erlang {
    pub k: u32,
    pub rate: f64,
}

impl Erlang {
    pub fn new(k: u32, rate: f64) -> Self {
        assert!(k >= 1 && rate > 0.0);
        Erlang { k, rate }
    }
}

impl Sample for Erlang {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (0..self.k).map(|_| rng.exp(self.rate)).sum()
    }
    fn mean(&self) -> f64 {
        self.k as f64 / self.rate
    }
    fn variance(&self) -> Option<f64> {
        Some(self.k as f64 / (self.rate * self.rate))
    }
}

/// Two-phase hyper-exponential: with probability `p1` draw Exp(`r1`),
/// otherwise Exp(`r2`). High-variance (CV² > 1) service times.
#[derive(Clone, Copy, Debug)]
pub struct HyperExp {
    pub p1: f64,
    pub r1: f64,
    pub r2: f64,
}

impl HyperExp {
    pub fn new(p1: f64, r1: f64, r2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p1) && r1 > 0.0 && r2 > 0.0);
        HyperExp { p1, r1, r2 }
    }

    /// Builds a balanced hyper-exponential with the given mean and squared
    /// coefficient of variation `cv2 >= 1`.
    pub fn with_mean_cv2(mean: f64, cv2: f64) -> Self {
        assert!(cv2 >= 1.0, "HyperExp requires CV² ≥ 1");
        // Balanced means: p1/r1 = p2/r2 (each phase contributes half the mean).
        let p1 = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        let r1 = 2.0 * p1 / mean;
        let r2 = 2.0 * (1.0 - p1) / mean;
        HyperExp { p1, r1, r2 }
    }
}

impl Sample for HyperExp {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.p1) {
            rng.exp(self.r1)
        } else {
            rng.exp(self.r2)
        }
    }
    fn mean(&self) -> f64 {
        self.p1 / self.r1 + (1.0 - self.p1) / self.r2
    }
    fn variance(&self) -> Option<f64> {
        let m = self.mean();
        let m2 = 2.0 * (self.p1 / (self.r1 * self.r1) + (1.0 - self.p1) / (self.r2 * self.r2));
        Some(m2 - m * m)
    }
}

/// Pareto (Lomax form shifted to `scale`): density `a·scaleᵃ/xᵃ⁺¹` for
/// `x ≥ scale`. Heavy-tailed file sizes. Mean finite iff `shape > 1`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    pub shape: f64,
    pub scale: f64,
}

impl Pareto {
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 1.0, "Pareto: need shape > 1 for a finite mean");
        assert!(scale > 0.0);
        Pareto { shape, scale }
    }

    /// Pareto with the given mean and tail exponent.
    pub fn with_mean(mean: f64, shape: f64) -> Self {
        assert!(shape > 1.0);
        Pareto::new(shape, mean * (shape - 1.0) / shape)
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.f64(); // in (0, 1]
        self.scale / u.powf(1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        self.shape * self.scale / (self.shape - 1.0)
    }
    fn variance(&self) -> Option<f64> {
        if self.shape > 2.0 {
            let a = self.shape;
            let s = self.scale;
            Some(s * s * a / ((a - 1.0) * (a - 1.0) * (a - 2.0)))
        } else {
            None
        }
    }
}

/// Pareto truncated at `cap`; samples above the cap are redrawn.
/// Keeps heavy-tail shape while bounding worst-case service time.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    pub inner: Pareto,
    pub cap: f64,
}

impl BoundedPareto {
    pub fn new(shape: f64, scale: f64, cap: f64) -> Self {
        assert!(cap > scale, "BoundedPareto: cap must exceed scale");
        BoundedPareto { inner: Pareto::new(shape, scale), cap }
    }
}

impl Sample for BoundedPareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse-CDF of the truncated distribution (no rejection loop).
        let a = self.inner.shape;
        let l = self.inner.scale;
        let h = self.cap;
        let u = rng.f64();
        let la = l.powf(a);
        let ha = h.powf(a);
        (la / (1.0 - u * (1.0 - la / ha))).powf(1.0 / a)
    }
    fn mean(&self) -> f64 {
        let a = self.inner.shape;
        let l = self.inner.scale;
        let h = self.cap;
        if (a - 1.0).abs() < 1e-12 {
            (l * h / (h - l)) * (h / l).ln()
        } else {
            (l.powf(a) / (1.0 - (l / h).powf(a)))
                * (a / (a - 1.0))
                * (l.powf(1.0 - a) - h.powf(1.0 - a))
        }
    }
}

/// Log-normal: `exp(mu + sigma·Z)`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Log-normal with the given arithmetic mean and squared coefficient of
    /// variation.
    pub fn with_mean_cv2(mean: f64, cv2: f64) -> Self {
        assert!(mean > 0.0 && cv2 >= 0.0);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        LogNormal { mu, sigma: sigma2.sqrt() }
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.normal()).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
    fn variance(&self) -> Option<f64> {
        let s2 = self.sigma * self.sigma;
        let m = self.mean();
        Some((s2.exp() - 1.0) * m * m)
    }
}

/// Weibull with shape `k` and scale `lambda`.
#[derive(Clone, Copy, Debug)]
pub struct Weibull {
    pub k: f64,
    pub lambda: f64,
}

impl Weibull {
    pub fn new(k: f64, lambda: f64) -> Self {
        assert!(k > 0.0 && lambda > 0.0);
        Weibull { k, lambda }
    }
}

/// Lanczos approximation of the Gamma function (needed for the Weibull mean).
fn gamma_fn(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9 (Numerical Recipes / Boost parameters).
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        core::f64::consts::PI / ((core::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, &c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * core::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut Rng) -> f64 {
        let u = 1.0 - rng.f64();
        self.lambda * (-u.ln()).powf(1.0 / self.k)
    }
    fn mean(&self) -> f64 {
        self.lambda * gamma_fn(1.0 + 1.0 / self.k)
    }
}

/// Empirical distribution resampling uniformly from observed values.
#[derive(Clone, Debug)]
pub struct Empirical {
    values: Vec<f64>,
    mean: f64,
}

impl Empirical {
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "Empirical: need at least one value");
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        Empirical { values, mean }
    }
    pub fn len(&self) -> usize {
        self.values.len()
    }
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut Rng) -> f64 {
        *rng.pick(&self.values)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Discrete distribution over indices `0..n` with given weights,
/// sampled in O(1) via Walker's alias method.
#[derive(Clone, Debug)]
pub struct Discrete {
    prob: Vec<f64>,
    alias: Vec<u32>,
    weights_sum: f64,
    mean_index: f64,
}

impl Discrete {
    /// Builds the alias table from non-negative weights (not all zero).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "Discrete: empty weight vector");
        assert!(n <= u32::MAX as usize, "Discrete: too many outcomes");
        let sum: f64 = weights.iter().sum();
        assert!(
            sum > 0.0 && sum.is_finite(),
            "Discrete: weights must sum to a positive finite value"
        );
        assert!(weights.iter().all(|&w| w >= 0.0), "Discrete: negative weight");

        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities (mean 1).
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / sum).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &l in &large {
            prob[l as usize] = 1.0;
        }
        for &s in &small {
            prob[s as usize] = 1.0; // numerical leftovers
        }
        let mean_index = weights.iter().enumerate().map(|(i, &w)| i as f64 * w).sum::<f64>() / sum;
        Discrete { prob, alias, weights_sum: sum, mean_index }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sum of the original weights.
    pub fn total_weight(&self) -> f64 {
        self.weights_sum
    }

    /// Draws an outcome index in O(1).
    #[inline]
    pub fn sample_index(&self, rng: &mut Rng) -> usize {
        let i = rng.index(self.prob.len());
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

impl Sample for Discrete {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.sample_index(rng) as f64
    }
    fn mean(&self) -> f64 {
        self.mean_index
    }
}

/// Zipf law over ranks `0..n`: weight of rank `i` is `1/(i+1)^s`.
///
/// Backed by an alias table, so sampling is O(1) after O(n) setup.
#[derive(Clone, Debug)]
pub struct Zipf {
    table: Discrete,
    pub n: usize,
    pub exponent: f64,
}

impl Zipf {
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf: need at least one rank");
        assert!(exponent >= 0.0, "Zipf: exponent must be non-negative");
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(exponent)).collect();
        Zipf { table: Discrete::new(&weights), n, exponent }
    }

    /// Probability of rank `i` (0-based).
    pub fn prob(&self, i: usize) -> f64 {
        1.0 / ((i + 1) as f64).powf(self.exponent) / self.table.total_weight()
    }

    /// Draws a rank in `0..n`.
    #[inline]
    pub fn sample_rank(&self, rng: &mut Rng) -> usize {
        self.table.sample_index(rng)
    }
}

impl Sample for Zipf {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.sample_rank(rng) as f64
    }
    fn mean(&self) -> f64 {
        self.table.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn empirical_mean(d: &dyn Sample, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic(3.5);
        let mut rng = Rng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(2.0);
        let m = empirical_mean(&d, 2, 200_000);
        assert!((m - 2.0).abs() < 0.03, "mean {m}");
        assert_eq!(d.mean(), 2.0);
    }

    #[test]
    fn erlang_mean_and_variance() {
        let d = Erlang::new(4, 2.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.variance().unwrap() - 1.0).abs() < 1e-12);
        let m = empirical_mean(&d, 3, 100_000);
        assert!((m - 2.0).abs() < 0.03, "mean {m}");
    }

    #[test]
    fn hyperexp_matches_target_mean_and_cv2() {
        let d = HyperExp::with_mean_cv2(1.0, 4.0);
        assert!((d.mean() - 1.0).abs() < 1e-9, "analytic mean {}", d.mean());
        let var = d.variance().unwrap();
        assert!((var - 4.0).abs() < 1e-6, "analytic var {var}");
        let m = empirical_mean(&d, 4, 400_000);
        assert!((m - 1.0).abs() < 0.03, "empirical mean {m}");
    }

    #[test]
    fn pareto_with_mean() {
        let d = Pareto::with_mean(1.0, 2.5);
        assert!((d.mean() - 1.0).abs() < 1e-12);
        let m = empirical_mean(&d, 5, 400_000);
        assert!((m - 1.0).abs() < 0.05, "empirical mean {m}");
    }

    #[test]
    fn bounded_pareto_never_exceeds_cap() {
        let d = BoundedPareto::new(1.2, 0.5, 50.0);
        let mut rng = Rng::new(6);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((0.5..=50.0).contains(&x), "sample {x}");
        }
        let m = empirical_mean(&d, 7, 400_000);
        assert!((m - d.mean()).abs() / d.mean() < 0.05, "emp {m} vs analytic {}", d.mean());
    }

    #[test]
    fn lognormal_with_mean_cv2() {
        let d = LogNormal::with_mean_cv2(2.0, 1.5);
        assert!((d.mean() - 2.0).abs() < 1e-9);
        let m = empirical_mean(&d, 8, 400_000);
        assert!((m - 2.0).abs() < 0.05, "empirical mean {m}");
    }

    #[test]
    fn weibull_mean_exponential_case() {
        // k = 1 reduces to Exponential(1/lambda).
        let d = Weibull::new(1.0, 3.0);
        assert!((d.mean() - 3.0).abs() < 1e-9, "mean {}", d.mean());
        let m = empirical_mean(&d, 9, 200_000);
        assert!((m - 3.0).abs() < 0.05, "empirical mean {m}");
    }

    #[test]
    fn gamma_fn_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-7);
        assert!((gamma_fn(0.5) - core::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empirical_resamples_values() {
        let d = Empirical::new(vec![1.0, 2.0, 3.0]);
        let mut rng = Rng::new(10);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 3.0);
        }
        assert!((d.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn discrete_alias_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let d = Discrete::new(&weights);
        let mut rng = Rng::new(11);
        let n = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[d.sample_index(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.005, "outcome {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn discrete_single_outcome() {
        let d = Discrete::new(&[5.0]);
        let mut rng = Rng::new(12);
        assert_eq!(d.sample_index(&mut rng), 0);
    }

    #[test]
    fn zipf_rank_probabilities() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::new(13);
        let n = 500_000;
        let mut count0 = 0usize;
        let mut count9 = 0usize;
        for _ in 0..n {
            match z.sample_rank(&mut rng) {
                0 => count0 += 1,
                9 => count9 += 1,
                _ => {}
            }
        }
        let p0 = count0 as f64 / n as f64;
        let p9 = count9 as f64 / n as f64;
        assert!((p0 - z.prob(0)).abs() < 0.005, "p0 {p0} vs {}", z.prob(0));
        assert!((p9 - z.prob(9)).abs() < 0.002, "p9 {p9} vs {}", z.prob(9));
        // Rank 0 is ~10x more likely than rank 9 under exponent 1.
        assert!(p0 / p9 > 7.0 && p0 / p9 < 13.0);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.prob(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_probs_sum_to_one() {
        let z = Zipf::new(1000, 0.8);
        let total: f64 = (0..1000).map(|i| z.prob(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
