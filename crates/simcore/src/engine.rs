//! The discrete-event engine.
//!
//! [`Engine<S>`] owns the virtual clock and the event calendar; the caller
//! owns the model state `S`. Events are boxed `FnOnce(&mut Engine<S>,
//! &mut S)` closures — they may freely schedule or cancel further events.
//!
//! The split between engine and state keeps the borrow checker happy:
//! when an event fires it receives the engine (for scheduling) and the state
//! (for mutation) as two disjoint mutable borrows.

use crate::event::{Calendar, EventToken};
use crate::time::SimTime;

/// Boxed event closure type fired by [`Engine::step`].
pub type EventFn<S> = Box<dyn FnOnce(&mut Engine<S>, &mut S)>;

/// A discrete-event simulation engine over user state `S`.
pub struct Engine<S> {
    now: SimTime,
    calendar: Calendar<EventFn<S>>,
    fired: u64,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Engine<S> {
    /// A fresh engine at time zero with an empty calendar.
    pub fn new() -> Self {
        Engine { now: SimTime::ZERO, calendar: Calendar::new(), fired: 0 }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.calendar.len()
    }

    /// Schedules an event at an absolute time. Panics if the time is in the
    /// past (strictly before `now`).
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        f: impl FnOnce(&mut Engine<S>, &mut S) + 'static,
    ) -> EventToken {
        assert!(time >= self.now, "cannot schedule into the past: {time:?} < {:?}", self.now);
        self.calendar.push(time, Box::new(f))
    }

    /// Schedules an event `dt ≥ 0` seconds from now.
    pub fn schedule_in(
        &mut self,
        dt: f64,
        f: impl FnOnce(&mut Engine<S>, &mut S) + 'static,
    ) -> EventToken {
        assert!(dt >= 0.0, "negative delay {dt}");
        self.schedule_at(self.now.after(dt), f)
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.calendar.cancel(token)
    }

    /// Fires the next event, advancing the clock to its timestamp.
    /// Returns `false` if the calendar is empty.
    pub fn step(&mut self, state: &mut S) -> bool {
        match self.calendar.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now, "calendar returned an event in the past");
                self.now = ev.time;
                self.fired += 1;
                (ev.payload)(self, state);
                true
            }
            None => false,
        }
    }

    /// Runs until the calendar is empty.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Runs all events with timestamps `≤ horizon`, then sets the clock to
    /// `horizon` (even if the calendar still has later events).
    pub fn run_until(&mut self, horizon: SimTime, state: &mut S) {
        while let Some(t) = self.calendar.peek_time() {
            if t > horizon {
                break;
            }
            self.step(state);
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_order_and_advance_clock() {
        let mut engine: Engine<Vec<(f64, u32)>> = Engine::new();
        engine.schedule_at(SimTime::from_secs(2.0), |e, log| log.push((e.now().as_secs(), 2)));
        engine.schedule_at(SimTime::from_secs(1.0), |e, log| log.push((e.now().as_secs(), 1)));
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![(1.0, 1), (2.0, 2)]);
        assert_eq!(engine.now(), SimTime::from_secs(2.0));
        assert_eq!(engine.events_fired(), 2);
    }

    #[test]
    fn events_can_schedule_more_events() {
        // A self-perpetuating "arrival process": each event schedules the next.
        fn arrive(e: &mut Engine<u32>, count: &mut u32) {
            *count += 1;
            if *count < 5 {
                e.schedule_in(1.0, arrive);
            }
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, arrive);
        let mut count = 0;
        engine.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(engine.now(), SimTime::from_secs(4.0));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime::from_secs(i as f64), |_, c| *c += 1);
        }
        let mut count = 0;
        engine.run_until(SimTime::from_secs(4.5), &mut count);
        assert_eq!(count, 5); // t = 0,1,2,3,4
        assert_eq!(engine.now(), SimTime::from_secs(4.5));
        assert_eq!(engine.pending(), 5);
        // Continue to the end.
        engine.run(&mut count);
        assert_eq!(count, 10);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut engine: Engine<u32> = Engine::new();
        let tok = engine.schedule_at(SimTime::from_secs(1.0), |_, c| *c += 100);
        engine.schedule_at(SimTime::from_secs(2.0), |_, c| *c += 1);
        assert!(engine.cancel(tok));
        let mut count = 0;
        engine.run(&mut count);
        assert_eq!(count, 1);
    }

    #[test]
    fn events_can_cancel_other_events() {
        let mut engine: Engine<u32> = Engine::new();
        let victim = engine.schedule_at(SimTime::from_secs(5.0), |_, c| *c += 100);
        engine.schedule_at(SimTime::from_secs(1.0), move |e, _| {
            e.cancel(victim);
        });
        let mut count = 0;
        engine.run(&mut count);
        assert_eq!(count, 0);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule_at(SimTime::from_secs(5.0), |_, _| {});
        let mut s = 0;
        engine.run(&mut s);
        engine.schedule_at(SimTime::from_secs(1.0), |_, _| {});
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut engine: Engine<Vec<u32>> = Engine::new();
        for i in 0..5 {
            engine.schedule_at(SimTime::from_secs(1.0), move |_, log: &mut Vec<u32>| log.push(i));
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![0, 1, 2, 3, 4]);
    }
}
