//! Virtual time.
//!
//! Simulation time is a non-negative, finite `f64` measured in seconds.
//! [`SimTime`] wraps the raw float to give it a *total* order (so it can key
//! the event calendar) and to catch NaN/negative times at construction in
//! debug builds.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since simulation start.
///
/// `SimTime` is `Copy`, totally ordered, and supports arithmetic with plain
/// `f64` durations (seconds). Construction from a NaN panics.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// The largest representable time; used as an "infinite horizon".
    pub const MAX: SimTime = SimTime(f64::MAX);

    /// Creates a `SimTime` from seconds. Panics on NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Returns the time as raw seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns `self + dt` seconds.
    #[inline]
    pub fn after(self, dt: f64) -> Self {
        SimTime::from_secs(self.0 + dt)
    }

    /// The elapsed seconds from `earlier` to `self` (may be negative if the
    /// arguments are swapped).
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        self.after(rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        *self = self.after(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1.5);
        assert_eq!((t + 0.5).as_secs(), 2.0);
        assert!((t.after(1.0) - t - 1.0).abs() < 1e-12);
        let mut u = t;
        u += 2.5;
        assert_eq!(u.as_secs(), 4.0);
    }

    #[test]
    #[should_panic]
    fn nan_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn zero_and_max() {
        assert!(SimTime::ZERO < SimTime::MAX);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(0.25)), "0.250000");
        assert_eq!(format!("{:?}", SimTime::from_secs(0.25)), "0.25s");
    }
}
