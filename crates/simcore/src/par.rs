//! Parallel execution primitives.
//!
//! Two layers live here, both on `std::thread::scope` (no external runtime):
//!
//! * **Parameter sweeps** ([`par_map`], [`sweep_vs_baseline`]) — experiments
//!   evaluate the same simulation at many independent points; work is
//!   distributed by an atomic cursor (self-balancing for heterogeneous run
//!   times) and results land in their input slots, so output order is
//!   deterministic regardless of scheduling.
//! * **Conservative-window shard synchronization** ([`Mailboxes`],
//!   [`TimeBoard`]) — the building blocks for a *single* simulation split
//!   across threads: per-shard message inboxes filled concurrently during a
//!   window and drained at its barrier, and an atomic board where each
//!   shard publishes its next-event time so a coordinator can compute the
//!   global horizon. Determinism is the callers' contract: receivers must
//!   sequence drained messages by their own timestamps/ids (e.g. via
//!   `sched::TimedQueue`), never by delivery order, which these primitives
//!   deliberately leave unspecified.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One message inbox per shard, safe to fill from any thread.
///
/// During a window every shard pushes cross-shard messages into the
/// destination's inbox; at the barrier each shard [`Mailboxes::drain`]s its
/// own. The drain order is whatever the send interleaving produced —
/// receivers must re-sequence by message timestamp (the cluster drivers
/// feed a `TimedQueue`, which orders by `(time, id)`).
pub struct Mailboxes<M> {
    boxes: Vec<Mutex<Vec<M>>>,
}

impl<M> Mailboxes<M> {
    pub fn new(n: usize) -> Self {
        Mailboxes { boxes: (0..n).map(|_| Mutex::new(Vec::new())).collect() }
    }

    pub fn n(&self) -> usize {
        self.boxes.len()
    }

    /// Appends `msg` to shard `to`'s inbox.
    pub fn send(&self, to: usize, msg: M) {
        self.boxes[to].lock().expect("mailbox poisoned").push(msg);
    }

    /// Takes everything currently in shard `me`'s inbox.
    pub fn drain(&self, me: usize) -> Vec<M> {
        std::mem::take(&mut *self.boxes[me].lock().expect("mailbox poisoned"))
    }
}

/// A board of per-shard times published atomically (as `f64` bit patterns
/// — monotone under `u64` comparison for the non-negative times simulations
/// use, though [`TimeBoard::min`] decodes and compares as `f64` anyway).
///
/// Shards publish their next pending event time at each barrier; the
/// coordinator reads the global minimum to size the next conservative
/// window. `f64::INFINITY` means "idle — nothing pending".
pub struct TimeBoard {
    slots: Vec<AtomicU64>,
}

impl TimeBoard {
    /// A board of `n` slots, all initially idle (`+∞`).
    pub fn new(n: usize) -> Self {
        TimeBoard { slots: (0..n).map(|_| AtomicU64::new(f64::INFINITY.to_bits())).collect() }
    }

    /// Publishes shard `me`'s next-event time (`None` ⇒ idle).
    pub fn publish(&self, me: usize, t: Option<f64>) {
        let t = t.unwrap_or(f64::INFINITY);
        debug_assert!(!t.is_nan(), "published NaN time");
        self.slots[me].store(t.to_bits(), Ordering::Release);
    }

    /// The published time of shard `i`.
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.slots[i].load(Ordering::Acquire))
    }

    /// The minimum published time across all shards (`+∞` when all idle).
    pub fn min(&self) -> f64 {
        (0..self.slots.len()).map(|i| self.get(i)).fold(f64::INFINITY, f64::min)
    }
}

/// Number of worker threads to use: the available parallelism, capped by the
/// work-item count.
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    hw.min(items).max(1)
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output vector.
///
/// `f` must be `Sync` (shared across workers) and the items are borrowed
/// immutably. Panics in workers propagate.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot poisoned").expect("slot unfilled"))
        .collect()
}

/// Like [`par_map`] but uses [`default_threads`].
pub fn par_map_auto<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, default_threads(items.len()), f)
}

/// The network-load-curve convention shared by the single-path
/// (`netsim::parametric::run_with_baseline`) and cluster
/// (`cluster::network_load_curve`) Figure-2/3 sweeps: run the `baseline`
/// point at `seed`, then every treatment point at `seed + 1` (all
/// treatment points share one seed so they differ only in parameters),
/// fanning the treatments out over the pool. Returns
/// `(baseline result, per-point results in input order)`.
pub fn sweep_vs_baseline<T, R, F>(baseline: &T, points: &[T], seed: u64, run: F) -> (R, Vec<R>)
where
    T: Sync,
    R: Send,
    F: Fn(&T, u64) -> R + Sync,
{
    let base = run(baseline, seed);
    let treated = par_map_auto(points, |_, point| run(point, seed.wrapping_add(1)));
    (base, treated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        let out = par_map(&items, 1, |i, &x| x + i as i32);
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out: Vec<u32> = par_map(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![10, 20];
        let out = par_map(&items, 64, |_, &x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let out = par_map(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn heavy_imbalanced_work_completes() {
        // Some items "cost" much more than others; cursor-based stealing
        // should still complete everything.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |_, &x| {
            let iters = if x % 8 == 0 { 200_000 } else { 100 };
            let mut acc = 0u64;
            for i in 0..iters {
                acc = acc.wrapping_add(i ^ x);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn sweep_vs_baseline_seeding_convention() {
        let (base, points) = sweep_vs_baseline(&0.0f64, &[1.0, 2.0], 41, |&x, s| (x, s));
        assert_eq!(base, (0.0, 41));
        assert_eq!(points, vec![(1.0, 42), (2.0, 42)]);
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1) == 1);
        assert!(default_threads(1000) >= 1);
    }

    #[test]
    fn mailboxes_collect_concurrent_sends() {
        let boxes: Mailboxes<(usize, u64)> = Mailboxes::new(2);
        std::thread::scope(|scope| {
            for sender in 0..4usize {
                let boxes = &boxes;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        boxes.send((sender + i as usize) % 2, (sender, i));
                    }
                });
            }
        });
        let mut got: Vec<(usize, u64)> = boxes.drain(0);
        got.extend(boxes.drain(1));
        assert_eq!(got.len(), 400, "no message lost or duplicated");
        got.sort_unstable();
        let expect: Vec<(usize, u64)> =
            (0..4).flat_map(|s| (0..100).map(move |i| (s, i))).collect();
        assert_eq!(got, expect);
        assert!(boxes.drain(0).is_empty(), "drain empties the inbox");
    }

    #[test]
    fn time_board_tracks_minimum() {
        let board = TimeBoard::new(3);
        assert_eq!(board.min(), f64::INFINITY, "all idle at start");
        board.publish(0, Some(5.0));
        board.publish(1, Some(2.5));
        board.publish(2, None);
        assert_eq!(board.min(), 2.5);
        assert_eq!(board.get(2), f64::INFINITY);
        board.publish(1, None);
        assert_eq!(board.min(), 5.0);
    }
}
