//! Parallel parameter sweeps.
//!
//! Experiments evaluate the same simulation at many parameter points; the
//! points are independent, so we farm them out to a `std::thread::scope`
//! pool. Work is distributed by an atomic cursor (self-balancing for
//! heterogeneous run times) and results land in their input slots, so output
//! order is deterministic regardless of scheduling.
//!
//! This is the only concurrency in the workspace — simulations themselves
//! are single-threaded and reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: the available parallelism, capped by the
/// work-item count.
pub fn default_threads(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    hw.min(items).max(1)
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output vector.
///
/// `f` must be `Sync` (shared across workers) and the items are borrowed
/// immutably. Panics in workers propagate.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot poisoned").expect("slot unfilled"))
        .collect()
}

/// Like [`par_map`] but uses [`default_threads`].
pub fn par_map_auto<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, default_threads(items.len()), f)
}

/// The network-load-curve convention shared by the single-path
/// (`netsim::parametric::run_with_baseline`) and cluster
/// (`cluster::network_load_curve`) Figure-2/3 sweeps: run the `baseline`
/// point at `seed`, then every treatment point at `seed + 1` (all
/// treatment points share one seed so they differ only in parameters),
/// fanning the treatments out over the pool. Returns
/// `(baseline result, per-point results in input order)`.
pub fn sweep_vs_baseline<T, R, F>(baseline: &T, points: &[T], seed: u64, run: F) -> (R, Vec<R>)
where
    T: Sync,
    R: Send,
    F: Fn(&T, u64) -> R + Sync,
{
    let base = run(baseline, seed);
    let treated = par_map_auto(points, |_, point| run(point, seed.wrapping_add(1)));
    (base, treated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 8, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        let out = par_map(&items, 1, |i, &x| x + i as i32);
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out: Vec<u32> = par_map(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![10, 20];
        let out = par_map(&items, 64, |_, &x| x + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let out = par_map(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn heavy_imbalanced_work_completes() {
        // Some items "cost" much more than others; cursor-based stealing
        // should still complete everything.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, 8, |_, &x| {
            let iters = if x % 8 == 0 { 200_000 } else { 100 };
            let mut acc = 0u64;
            for i in 0..iters {
                acc = acc.wrapping_add(i ^ x);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn sweep_vs_baseline_seeding_convention() {
        let (base, points) = sweep_vs_baseline(&0.0f64, &[1.0, 2.0], 41, |&x, s| (x, s));
        assert_eq!(base, (0.0, 41));
        assert_eq!(points, vec![(1.0, 42), (2.0, 42)]);
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1) == 1);
        assert!(default_threads(1000) >= 1);
    }
}
