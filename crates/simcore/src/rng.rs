//! Reproducible pseudo-random number generation.
//!
//! The workspace hand-rolls its PRNG instead of depending on `rand` so that
//! every experiment is bit-reproducible across crate-version bumps. The
//! generator is **xoshiro256++** (Blackman & Vigna), seeded from a single
//! `u64` via **SplitMix64** — the construction recommended by the xoshiro
//! authors. Parallel experiments obtain statistically independent streams
//! with [`Rng::split`], which draws a fresh SplitMix64-expanded seed.
//!
//! The sampler methods cover what the simulations need: uniform `f64` in
//! `[0,1)` with full 53-bit resolution, bounded integers via Lemire
//! rejection, Bernoulli trials, exponentials, and unit normals
//! (Box–Muller, cached spare).

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for deriving child seeds; it is a bijection on
/// `u64` with excellent avalanche behaviour.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of partitioned stream `stream` from a base `seed`.
///
/// Stream 0 is the base seed unchanged (so the degenerate single-stream
/// case reproduces an unpartitioned run exactly — the anchor property the
/// cluster parity tests pin); later streams decorrelate through
/// golden-ratio increments, the same Weyl sequence SplitMix64 itself
/// walks. Because the mapping is a pure function of `(seed, stream)`, a
/// sharded simulation can hand stream `i` to whichever thread owns entity
/// `i` and the draws are identical under every partitioning.
#[inline]
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// xoshiro256++ pseudo-random generator with convenience samplers.
///
/// Not cryptographically secure; period 2²⁵⁶−1; passes BigCrush.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64 of any
        // seed cannot produce four zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Rng { s, spare_normal: None }
    }

    /// Derives an independent child generator. Deterministic: the same
    /// parent state always yields the same child sequence.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Panics if `lo > hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "range_f64: lo > hi");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given `rate` (mean `1/rate`).
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exp: rate must be positive");
        // 1 - f64() is in (0, 1], so ln() is finite.
        -(1.0 - self.f64()).ln() / rate
    }

    /// Standard normal sample via Box–Muller with spare caching.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u1 == 0 exactly.
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_zero_is_the_base_seed() {
        assert_eq!(stream_seed(42, 0), 42);
        assert_ne!(stream_seed(42, 1), 42);
    }

    #[test]
    fn streams_are_pairwise_distinct_and_order_free() {
        let seeds: Vec<u64> = (0..64).map(|i| stream_seed(7, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "stream seeds collide");
        // Pure function of (seed, stream): recomputing in any order agrees.
        for (i, &s) in seeds.iter().enumerate().rev() {
            assert_eq!(stream_seed(7, i as u64), s);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_streams_are_independent_of_parent_future() {
        let mut parent = Rng::new(7);
        let mut child = parent.split();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        // Re-derive: child is a pure function of the parent state at split.
        let mut parent2 = Rng::new(7);
        let mut child2 = parent2.split();
        let c2: Vec<u64> = (0..8).map(|_| child2.next_u64()).collect();
        assert_eq!(c, c2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_small_bound() {
        let mut rng = Rng::new(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.below(3) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = Rng::new(9);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(23);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
