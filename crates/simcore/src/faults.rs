//! Deterministic fault injection: scheduled link/node/origin failures and
//! the timeout–retry–backoff policy the request path survives them with.
//!
//! A [`FaultPlan`] is a validated, time-sorted schedule of [`FaultEvent`]s
//! — link down/up with optional packet loss or latency inflation, proxy
//! crashes (cold cache + MSHR drain), origin brownouts/blackouts, digest
//! delta loss. The plan is **static**: once built it never changes, so
//! every piece of fault state is a *pure function of `(plan, t)`*. That is
//! the whole determinism story:
//!
//! * **Empty plan ⇒ bit-identical.** Every query returns its healthy
//!   default without touching a float, an RNG, or an event, so a run
//!   driven through the fault-aware paths with an empty plan is
//!   bit-identical (derived `PartialEq`, no tolerance) to a run that
//!   never heard of faults.
//! * **Shard-invariant.** Queries are pure and the only *stateful*
//!   fault kinds (crash, digest loss) apply at globally synchronised
//!   driver boundaries, exactly like digest refreshes — so a non-empty
//!   plan is itself bit-identical across shard counts.
//! * **No RNG perturbation.** Packet-loss rolls and retry jitter come
//!   from pure hashes of `(seed, entity, job, attempt)` built on
//!   [`crate::rng::stream_seed`]/[`crate::rng::splitmix64`], never from
//!   the workload generators' RNG streams.
//!
//! [`RetryPolicy`] describes the client side: a per-attempt fetch
//! timeout, capped exponential backoff with deterministic jitter, and a
//! bounded retry budget. Because the plan is static, an engine can
//! resolve the *entire* attempt schedule analytically at launch time —
//! walk the attempts, charge `timeout + backoff` per failure, and either
//! launch the transfer at the delayed instant or settle the request as
//! failed at the known failure time.

use crate::rng::{splitmix64, stream_seed};

/// Domain separator for packet-loss rolls.
const SALT_LOSS: u64 = 0x6661_756c_742d_6c73; // "fault-ls"
/// Domain separator for retry-backoff jitter.
const SALT_BACKOFF: u64 = 0x6661_756c_742d_626f; // "fault-bo"

/// One kind of injected fault. Link and proxy indices are **global**
/// topology ids, so a plan means the same thing under every sharding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The link stops carrying traffic: every fetch attempt routed over
    /// it fails until a `LinkUp`/`LinkDegrade` supersedes it.
    LinkDown { link: usize },
    /// The link returns to full health (no loss, nominal latency).
    LinkUp { link: usize },
    /// The link carries traffic but degraded: each fetch attempt routed
    /// over it is lost with probability `loss` (a deterministic
    /// per-attempt roll), and its propagation latency is multiplied by
    /// `latency_factor` (≥ 1, so conservative-window lookaheads stay
    /// sound).
    LinkDegrade { link: usize, loss: f64, latency_factor: f64 },
    /// The proxy restarts cold: its cache is wiped, its outstanding
    /// MSHR fetches are drained (waiters settle as failed), its buffered
    /// digest deltas are dropped, and the router quarantines its stale
    /// digest until the proxy's next refresh payload lands.
    ProxyCrash { proxy: usize },
    /// The proxy's buffered digest delta ops are lost before the next
    /// boundary; it recovers by shipping a full snapshot instead.
    DigestLoss { proxy: usize },
    /// The origin stays reachable but slow: every origin response is
    /// delayed by an extra `delay` until superseded.
    OriginBrownout { delay: f64 },
    /// The origin stops answering: every origin-routed fetch attempt
    /// fails until `OriginRestore`.
    OriginBlackout,
    /// The origin returns to full health.
    OriginRestore,
}

impl FaultKind {
    /// Stateful kinds mutate engine/router state and must apply at a
    /// globally synchronised driver boundary (like a digest refresh).
    /// Everything else is resolved by the pure time queries below.
    pub fn is_boundary(&self) -> bool {
        matches!(self, FaultKind::ProxyCrash { .. } | FaultKind::DigestLoss { .. })
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulation time the fault takes effect (inclusive).
    pub t: f64,
    pub kind: FaultKind,
}

/// A validated, time-sorted schedule of faults. See the module docs for
/// the determinism contract; [`FaultPlan::default`] is the empty plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan from events in any order. Panics on invalid events:
    /// non-finite or negative times, `loss` outside `[0, 1)`,
    /// `latency_factor < 1`, or a negative brownout delay.
    pub fn new(mut events: Vec<FaultEvent>) -> FaultPlan {
        for (i, e) in events.iter().enumerate() {
            assert!(e.t.is_finite() && e.t >= 0.0, "fault {i}: bad time {}", e.t);
            match e.kind {
                FaultKind::LinkDegrade { loss, latency_factor, .. } => {
                    assert!((0.0..1.0).contains(&loss), "fault {i}: loss must be in [0,1)");
                    assert!(
                        latency_factor >= 1.0 && latency_factor.is_finite(),
                        "fault {i}: latency factor must be ≥ 1 (window lookaheads rely on it)"
                    );
                }
                FaultKind::OriginBrownout { delay } => {
                    assert!(delay >= 0.0 && delay.is_finite(), "fault {i}: bad brownout delay");
                }
                _ => {}
            }
        }
        // Stable by schedule order on ties: later entries supersede.
        events.sort_by(|a, b| a.t.total_cmp(&b.t));
        FaultPlan { events }
    }

    /// The empty plan: every query answers "healthy".
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The boundary (stateful) events in schedule order — the driver
    /// applies these at globally synchronised instants.
    pub fn boundary_events(&self) -> Vec<FaultEvent> {
        self.events.iter().filter(|e| e.kind.is_boundary()).copied().collect()
    }

    /// Is `link` down at time `t`? (The latest link event at or before
    /// `t` wins; links start up.)
    pub fn link_down(&self, link: usize, t: f64) -> bool {
        let mut down = false;
        for e in &self.events {
            if e.t > t {
                break;
            }
            match e.kind {
                FaultKind::LinkDown { link: l } if l == link => down = true,
                FaultKind::LinkUp { link: l } | FaultKind::LinkDegrade { link: l, .. }
                    if l == link =>
                {
                    down = false
                }
                _ => {}
            }
        }
        down
    }

    /// Packet-loss probability of `link` at time `t` (0 when healthy).
    pub fn link_loss(&self, link: usize, t: f64) -> f64 {
        let mut loss = 0.0;
        for e in &self.events {
            if e.t > t {
                break;
            }
            match e.kind {
                FaultKind::LinkDegrade { link: l, loss: p, .. } if l == link => loss = p,
                FaultKind::LinkUp { link: l } | FaultKind::LinkDown { link: l } if l == link => {
                    loss = 0.0
                }
                _ => {}
            }
        }
        loss
    }

    /// Latency multiplier of `link` at time `t` (1 when healthy; always
    /// ≥ 1, so inflated hops never undercut a window lookahead).
    pub fn link_latency_factor(&self, link: usize, t: f64) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if e.t > t {
                break;
            }
            match e.kind {
                FaultKind::LinkDegrade { link: l, latency_factor: f, .. } if l == link => {
                    factor = f
                }
                FaultKind::LinkUp { link: l } | FaultKind::LinkDown { link: l } if l == link => {
                    factor = 1.0
                }
                _ => {}
            }
        }
        factor
    }

    /// Is the origin blacked out at time `t`?
    pub fn origin_dark(&self, t: f64) -> bool {
        let mut dark = false;
        for e in &self.events {
            if e.t > t {
                break;
            }
            match e.kind {
                FaultKind::OriginBlackout => dark = true,
                FaultKind::OriginRestore | FaultKind::OriginBrownout { .. } => dark = false,
                _ => {}
            }
        }
        dark
    }

    /// Extra origin response delay at time `t` (0 when healthy).
    pub fn origin_delay(&self, t: f64) -> f64 {
        let mut delay = 0.0;
        for e in &self.events {
            if e.t > t {
                break;
            }
            match e.kind {
                FaultKind::OriginBrownout { delay: d } => delay = d,
                FaultKind::OriginRestore | FaultKind::OriginBlackout => delay = 0.0,
                _ => {}
            }
        }
        delay
    }

    /// Deterministic packet-loss roll: is attempt `attempt` of job `job`
    /// lost on `link` at time `t`? A pure hash — identical under every
    /// sharding, and never touched when the link is healthy.
    pub fn attempt_lost(&self, seed: u64, link: usize, job: u64, attempt: u32, t: f64) -> bool {
        let p = self.link_loss(link, t);
        if p <= 0.0 {
            return false;
        }
        let mut s = stream_seed(stream_seed(seed, SALT_LOSS), job)
            .wrapping_add(stream_seed(link as u64, u64::from(attempt)));
        let u = (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Client-side survival policy: per-attempt fetch timeout, capped
/// exponential backoff with deterministic jitter, bounded retries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// How long one fetch attempt waits before it is declared failed.
    pub timeout: f64,
    /// Re-attempts after the first (0 = fail on the first timeout).
    pub max_retries: u32,
    /// Backoff before retry `k` is nominally `base · 2^k`, capped below.
    pub backoff_base: f64,
    /// Upper bound on the nominal backoff.
    pub backoff_cap: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { timeout: 1.0, max_retries: 3, backoff_base: 0.25, backoff_cap: 2.0 }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, fail at its timeout.
    pub fn no_retries(timeout: f64) -> RetryPolicy {
        RetryPolicy { timeout, max_retries: 0, ..RetryPolicy::default() }
    }

    /// Panics on non-positive/non-finite timings.
    pub fn validate(&self) {
        assert!(self.timeout > 0.0 && self.timeout.is_finite(), "timeout must be positive");
        assert!(self.backoff_base >= 0.0 && self.backoff_base.is_finite(), "bad backoff base");
        assert!(self.backoff_cap >= self.backoff_base, "cap below base");
        assert!(self.backoff_cap.is_finite(), "bad backoff cap");
    }

    /// Total attempts the budget allows.
    pub fn attempts(&self) -> u32 {
        1 + self.max_retries
    }

    /// The nominal (pre-jitter) backoff before retry `attempt` — a
    /// monotone non-decreasing doubling schedule, capped.
    pub fn nominal_backoff(&self, attempt: u32) -> f64 {
        (self.backoff_base * 2f64.powi(attempt.min(1023) as i32)).min(self.backoff_cap)
    }

    /// The jittered backoff before retry `attempt` of job `job`: the
    /// nominal value scaled into `[½·nominal, nominal)` by a pure hash of
    /// `(seed, job, attempt)`. Deterministic and shard-invariant.
    pub fn backoff(&self, seed: u64, job: u64, attempt: u32) -> f64 {
        let nominal = self.nominal_backoff(attempt);
        if nominal <= 0.0 {
            return 0.0;
        }
        let mut s = stream_seed(stream_seed(seed, SALT_BACKOFF), job)
            .wrapping_add(stream_seed(1, u64::from(attempt)));
        let u = (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        nominal * (0.5 + 0.5 * u)
    }
}

/// Everything an engine needs to run faulted: the schedule plus the
/// client-side retry policy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    pub plan: FaultPlan,
    pub retry: RetryPolicy,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flap(link: usize, down: f64, up: f64) -> Vec<FaultEvent> {
        vec![
            FaultEvent { t: down, kind: FaultKind::LinkDown { link } },
            FaultEvent { t: up, kind: FaultKind::LinkUp { link } },
        ]
    }

    #[test]
    fn empty_plan_answers_healthy() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert!(!p.link_down(3, 10.0));
        assert_eq!(p.link_loss(3, 10.0), 0.0);
        assert_eq!(p.link_latency_factor(3, 10.0), 1.0);
        assert!(!p.origin_dark(10.0));
        assert_eq!(p.origin_delay(10.0), 0.0);
        assert!(!p.attempt_lost(7, 3, 9, 0, 10.0));
    }

    #[test]
    fn link_flap_windows_are_inclusive_and_isolated() {
        let p = FaultPlan::new(flap(2, 5.0, 8.0));
        assert!(!p.link_down(2, 4.999));
        assert!(p.link_down(2, 5.0));
        assert!(p.link_down(2, 7.999));
        assert!(!p.link_down(2, 8.0));
        // Other links unaffected.
        assert!(!p.link_down(1, 6.0));
    }

    #[test]
    fn degrade_sets_loss_and_latency_until_superseded() {
        let p = FaultPlan::new(vec![
            FaultEvent {
                t: 1.0,
                kind: FaultKind::LinkDegrade { link: 0, loss: 0.4, latency_factor: 3.0 },
            },
            FaultEvent { t: 6.0, kind: FaultKind::LinkUp { link: 0 } },
        ]);
        assert_eq!(p.link_loss(0, 2.0), 0.4);
        assert_eq!(p.link_latency_factor(0, 2.0), 3.0);
        assert!(!p.link_down(0, 2.0));
        assert_eq!(p.link_loss(0, 6.0), 0.0);
        assert_eq!(p.link_latency_factor(0, 6.0), 1.0);
    }

    #[test]
    fn origin_state_machine() {
        let p = FaultPlan::new(vec![
            FaultEvent { t: 2.0, kind: FaultKind::OriginBrownout { delay: 0.5 } },
            FaultEvent { t: 4.0, kind: FaultKind::OriginBlackout },
            FaultEvent { t: 9.0, kind: FaultKind::OriginRestore },
        ]);
        assert_eq!(p.origin_delay(3.0), 0.5);
        assert!(!p.origin_dark(3.0));
        assert!(p.origin_dark(5.0));
        assert_eq!(p.origin_delay(5.0), 0.0);
        assert!(!p.origin_dark(9.0));
    }

    #[test]
    fn events_sort_and_boundary_filter() {
        let p = FaultPlan::new(vec![
            FaultEvent { t: 9.0, kind: FaultKind::DigestLoss { proxy: 1 } },
            FaultEvent { t: 3.0, kind: FaultKind::ProxyCrash { proxy: 0 } },
            FaultEvent { t: 5.0, kind: FaultKind::LinkDown { link: 0 } },
        ]);
        let ts: Vec<f64> = p.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![3.0, 5.0, 9.0]);
        let boundary = p.boundary_events();
        assert_eq!(boundary.len(), 2);
        assert!(boundary.iter().all(|e| e.kind.is_boundary()));
    }

    #[test]
    fn loss_rolls_are_pure_functions() {
        let p = FaultPlan::new(vec![FaultEvent {
            t: 0.0,
            kind: FaultKind::LinkDegrade { link: 4, loss: 0.5, latency_factor: 1.0 },
        }]);
        let a = p.attempt_lost(11, 4, 77, 2, 1.0);
        assert_eq!(a, p.attempt_lost(11, 4, 77, 2, 1.0));
        // About half the rolls lose at p = 0.5.
        let lost = (0..10_000u64).filter(|&j| p.attempt_lost(11, 4, j, 0, 1.0)).count();
        assert!((3_500..6_500).contains(&lost), "{lost} of 10000 lost");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_nominal_monotone() {
        let r = RetryPolicy::default();
        r.validate();
        for k in 0..8 {
            let b = r.backoff(5, 99, k);
            assert_eq!(b, r.backoff(5, 99, k), "deterministic");
            let nominal = r.nominal_backoff(k);
            assert!(b >= 0.5 * nominal && b < nominal, "jitter bounds: {b} vs {nominal}");
            if k > 0 {
                assert!(nominal >= r.nominal_backoff(k - 1), "nominal monotone");
            }
            assert!(nominal <= r.backoff_cap);
        }
        assert_eq!(RetryPolicy::no_retries(0.7).attempts(), 1);
    }

    #[test]
    #[should_panic(expected = "latency factor")]
    fn latency_deflation_is_rejected() {
        FaultPlan::new(vec![FaultEvent {
            t: 0.0,
            kind: FaultKind::LinkDegrade { link: 0, loss: 0.0, latency_factor: 0.5 },
        }]);
    }
}
