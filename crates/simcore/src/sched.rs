//! Indexed event scheduler: a binary-heap timer wheel over a fixed key
//! space.
//!
//! Where [`crate::event::Calendar`] carries arbitrary payloads and cancels
//! by opaque token, this module serves the other common discrete-event
//! shape: a simulation with a *known set of recurring timer streams* (one
//! per link, one per arrival process, one per periodic task), each of
//! which is re-armed and invalidated many times over a run. Every stream
//! owns a small-integer **key**; arming the key again simply replaces the
//! previous deadline.
//!
//! Invalidation is by **generation stamping**: each `schedule`/`cancel`
//! bumps the key's generation, and heap entries carry the generation they
//! were pushed with, so a superseded entry is skipped lazily when it
//! surfaces — `schedule` and `pop` are O(log n), `cancel` and `armed` are
//! O(1), and no heap surgery is ever needed.
//!
//! Determinism: [`Scheduler::pop`] yields events in nondecreasing time,
//! and simultaneous events fire in ascending key order. Callers that need
//! a specific same-instant ordering (the `cluster` engines fire link
//! completions before request arrivals before prefetch issues) encode it
//! in the key layout.
//!
//! ```
//! use simcore::sched::Scheduler;
//!
//! let mut sched = Scheduler::with_timers(3);
//! sched.schedule(2, 5.0);
//! sched.schedule(0, 9.0);
//! sched.schedule(2, 1.0); // re-arm: the 5.0 entry is now stale
//! assert_eq!(sched.pop(), Some((1.0, 2)));
//! assert_eq!(sched.pop(), Some((9.0, 0)));
//! assert_eq!(sched.pop(), None);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A partition of a scheduler's key space into ordered **classes** — the
/// shard-handle API the `cluster` drivers build their timer layouts on.
///
/// A driver with several kinds of recurring timers (one per link, one per
/// arrival process, …) registers one class per kind, in the order
/// same-instant events must fire, and addresses each stream as
/// `(class, index)` instead of hand-computing key offsets. Because
/// [`Scheduler`] breaks time ties by ascending key, class registration
/// order *is* the same-instant precedence — and two layouts built from the
/// same class sequence assign consistent relative orders even when their
/// per-class counts differ (the property the sharded cluster driver
/// depends on: each shard's local layout must order its local events
/// exactly as the global layout would).
#[derive(Clone, Debug, Default)]
pub struct KeyLayout {
    /// `offsets[c]..offsets[c] + counts[c]` is class `c`'s key range.
    offsets: Vec<usize>,
    counts: Vec<usize>,
}

impl KeyLayout {
    /// An empty layout; add classes with [`KeyLayout::class`].
    pub fn new() -> Self {
        KeyLayout::default()
    }

    /// Registers the next class with `count` timer streams; returns its
    /// class index. Classes fire in registration order on time ties.
    pub fn class(&mut self, count: usize) -> usize {
        let offset = self.n_keys();
        self.offsets.push(offset);
        self.counts.push(count);
        self.offsets.len() - 1
    }

    /// Total keys across all classes.
    pub fn n_keys(&self) -> usize {
        match (self.offsets.last(), self.counts.last()) {
            (Some(o), Some(c)) => o + c,
            _ => 0,
        }
    }

    /// Number of streams in `class`.
    pub fn count(&self, class: usize) -> usize {
        self.counts[class]
    }

    /// The scheduler key of stream `idx` of `class`.
    pub fn key(&self, class: usize, idx: usize) -> usize {
        debug_assert!(idx < self.counts[class], "stream {idx} out of class {class}");
        self.offsets[class] + idx
    }

    /// Inverse of [`KeyLayout::key`]: which `(class, index)` a key is.
    pub fn decode(&self, key: usize) -> (usize, usize) {
        // Layouts have a handful of classes; a linear scan beats a binary
        // search at these sizes and keeps ties in registration order.
        for (c, (&offset, &count)) in self.offsets.iter().zip(&self.counts).enumerate() {
            if key < offset + count {
                debug_assert!(key >= offset);
                return (c, key - offset);
            }
        }
        panic!("key {key} beyond layout ({} keys)", self.n_keys());
    }

    /// A scheduler provisioned with one timer per key of this layout.
    pub fn scheduler(&self) -> Scheduler {
        Scheduler::with_timers(self.n_keys())
    }
}

/// A deterministic time-ordered queue of pending payloads, keyed by
/// `(time, id)` — the companion structure for timer streams that carry
/// *data* (a link's in-flight arrivals, a proxy's pending deliveries).
///
/// The owning driver arms one [`Scheduler`] timer at
/// [`TimedQueue::next_time`] and drains every entry due at the fired
/// instant. Entries pop in ascending `(time, id)` order **regardless of
/// insertion order**, which is what makes a mailbox-fed queue
/// deterministic: messages arriving from concurrent senders are sequenced
/// by their timestamps and stable ids, never by delivery race.
#[derive(Debug)]
pub struct TimedQueue<T> {
    heap: BinaryHeap<TimedEntry<T>>,
}

#[derive(Debug)]
struct TimedEntry<T> {
    time: f64,
    id: u64,
    payload: T,
}

impl<T> PartialEq for TimedEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for TimedEntry<T> {}
impl<T> PartialOrd for TimedEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for TimedEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest (time, id) first out of the max-heap.
        other.time.total_cmp(&self.time).then_with(|| other.id.cmp(&self.id))
    }
}

impl<T> Default for TimedQueue<T> {
    fn default() -> Self {
        TimedQueue { heap: BinaryHeap::new() }
    }
}

impl<T> TimedQueue<T> {
    pub fn new() -> Self {
        TimedQueue::default()
    }

    /// Enqueues `payload` to surface at `time`; `id` breaks time ties (it
    /// must be unique per pending entry for the order to be total).
    pub fn push(&mut self, time: f64, id: u64, payload: T) {
        assert!(time.is_finite(), "queued entry at non-finite time {time}");
        self.heap.push(TimedEntry { time, id, payload });
    }

    /// When the earliest pending entry is due.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest entry if it is due exactly at `time` — drivers
    /// drain a fired instant with `while let Some(x) = q.pop_due(t)`.
    pub fn pop_due(&mut self, time: f64) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.time == time) {
            Some(self.heap.pop().expect("peeked entry").payload)
        } else {
            None
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A heap entry: deadline, owning key, and the generation it was armed
/// under (stale once the key's generation moves on).
#[derive(Clone, Copy, Debug)]
struct Entry {
    time: f64,
    key: usize,
    gen: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // on time ties the lowest key. Generation only breaks ties between
        // a live entry and stale ones of the same key at the same time.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

/// Per-key state: the current generation and the armed deadline, if any.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    gen: u64,
    armed: Option<f64>,
}

/// Indexed timer scheduler with O(log n) arm/re-arm, O(1) cancel, and
/// stable ascending-key tie order.
#[derive(Default)]
pub struct Scheduler {
    heap: BinaryHeap<Entry>,
    slots: Vec<Slot>,
    live: usize,
}

impl Scheduler {
    /// An empty scheduler; add keys with [`Scheduler::add_timer`].
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// A scheduler with keys `0..n`, all disarmed.
    pub fn with_timers(n: usize) -> Self {
        Scheduler { heap: BinaryHeap::new(), slots: vec![Slot::default(); n], live: 0 }
    }

    /// Registers one more timer stream; returns its key (sequential).
    pub fn add_timer(&mut self) -> usize {
        self.slots.push(Slot::default());
        self.slots.len() - 1
    }

    /// Number of registered timer keys (armed or not).
    pub fn n_timers(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently armed timers.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Physical heap depth, counting lazily-invalidated (stale) entries
    /// still awaiting their pop — the number [`Scheduler::len`] hides. A
    /// profiler watches this: a heap far deeper than the live count means
    /// re-arm churn is piling up garbage.
    pub fn heap_depth(&self) -> usize {
        self.heap.len()
    }

    /// The deadline `key` is armed for, if any.
    pub fn armed(&self, key: usize) -> Option<f64> {
        self.slots[key].armed
    }

    /// Arms (or re-arms) `key` to fire at absolute time `t`. Any previous
    /// deadline of this key is invalidated.
    pub fn schedule(&mut self, key: usize, t: f64) {
        assert!(t.is_finite(), "timer {key} armed at non-finite time {t}");
        let slot = &mut self.slots[key];
        if slot.armed.is_none() {
            self.live += 1;
        }
        slot.gen += 1;
        slot.armed = Some(t);
        self.heap.push(Entry { time: t, key, gen: slot.gen });
    }

    /// Disarms `key`; a no-op when it is not armed.
    pub fn cancel(&mut self, key: usize) {
        let slot = &mut self.slots[key];
        if slot.armed.take().is_some() {
            slot.gen += 1;
            self.live -= 1;
        }
    }

    /// Arms `key` at `t`, or disarms it when `t` is `None` — but leaves
    /// the heap untouched when the deadline is unchanged (the cheap path
    /// for owners that re-sync after every state change).
    pub fn sync(&mut self, key: usize, t: Option<f64>) {
        if self.slots[key].armed == t {
            return;
        }
        match t {
            Some(t) => self.schedule(key, t),
            None => self.cancel(key),
        }
    }

    /// Discards stale entries sitting on top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            let slot = &self.slots[top.key];
            if slot.gen == top.gen && slot.armed.is_some() {
                break;
            }
            self.heap.pop();
        }
    }

    /// Earliest armed `(time, key)` without firing it.
    pub fn peek(&mut self) -> Option<(f64, usize)> {
        self.skim();
        self.heap.peek().map(|e| (e.time, e.key))
    }

    /// Fires the earliest armed timer: returns `(time, key)` and disarms
    /// the key (re-arm it to keep the stream going).
    pub fn pop(&mut self) -> Option<(f64, usize)> {
        self.skim();
        let e = self.heap.pop()?;
        self.slots[e.key].armed = None;
        self.live -= 1;
        Some((e.time, e.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut Scheduler) -> Vec<(f64, usize)> {
        let mut out = Vec::new();
        while let Some(ev) = s.pop() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::with_timers(3);
        s.schedule(0, 3.0);
        s.schedule(1, 1.0);
        s.schedule(2, 2.0);
        assert_eq!(drain(&mut s), vec![(1.0, 1), (2.0, 2), (3.0, 0)]);
    }

    #[test]
    fn ties_fire_in_key_order() {
        let mut s = Scheduler::with_timers(5);
        for key in [3usize, 0, 4, 1, 2] {
            s.schedule(key, 7.0);
        }
        assert_eq!(drain(&mut s), (0..5).map(|k| (7.0, k)).collect::<Vec<_>>());
    }

    #[test]
    fn rearm_supersedes_previous_deadline() {
        let mut s = Scheduler::with_timers(2);
        s.schedule(0, 5.0);
        s.schedule(1, 2.0);
        s.schedule(0, 1.0); // earlier
        assert_eq!(s.len(), 2);
        assert_eq!(drain(&mut s), vec![(1.0, 0), (2.0, 1)]);

        s.schedule(0, 1.0);
        s.schedule(0, 9.0); // later: the 1.0 entry must be skipped
        s.schedule(1, 3.0);
        assert_eq!(drain(&mut s), vec![(3.0, 1), (9.0, 0)]);
    }

    #[test]
    fn cancel_disarms() {
        let mut s = Scheduler::with_timers(2);
        s.schedule(0, 1.0);
        s.schedule(1, 2.0);
        s.cancel(0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.armed(0), None);
        assert_eq!(drain(&mut s), vec![(2.0, 1)]);
        s.cancel(0); // cancelling a disarmed key is a no-op
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn pop_disarms_the_key() {
        let mut s = Scheduler::with_timers(1);
        s.schedule(0, 1.0);
        assert_eq!(s.pop(), Some((1.0, 0)));
        assert_eq!(s.armed(0), None);
        assert!(s.is_empty());
        s.schedule(0, 2.0); // recurring stream: re-arm after firing
        assert_eq!(s.pop(), Some((2.0, 0)));
    }

    #[test]
    fn sync_skips_heap_churn_on_unchanged_deadline() {
        let mut s = Scheduler::with_timers(1);
        s.sync(0, Some(4.0));
        let gen_before = s.slots[0].gen;
        s.sync(0, Some(4.0)); // identical deadline: no re-arm
        assert_eq!(s.slots[0].gen, gen_before);
        s.sync(0, None);
        assert!(s.is_empty());
        s.sync(0, None); // disarming a disarmed key: no-op
        assert!(s.is_empty());
    }

    #[test]
    fn add_timer_extends_key_space() {
        let mut s = Scheduler::new();
        assert_eq!(s.add_timer(), 0);
        assert_eq!(s.add_timer(), 1);
        assert_eq!(s.n_timers(), 2);
        s.schedule(1, 1.0);
        assert_eq!(s.pop(), Some((1.0, 1)));
    }

    #[test]
    fn peek_matches_pop() {
        let mut s = Scheduler::with_timers(3);
        s.schedule(2, 2.0);
        s.schedule(1, 2.0);
        s.schedule(2, 8.0); // re-arm later: only key 1 remains at t=2
        assert_eq!(s.peek(), Some((2.0, 1)));
        assert_eq!(s.pop(), Some((2.0, 1)));
        assert_eq!(s.peek(), Some((8.0, 2)));
    }

    #[test]
    #[should_panic]
    fn non_finite_deadline_panics() {
        let mut s = Scheduler::with_timers(1);
        s.schedule(0, f64::NAN);
    }

    #[test]
    fn key_layout_round_trips() {
        let mut layout = KeyLayout::new();
        let links = layout.class(3);
        let empty = layout.class(0);
        let proxies = layout.class(2);
        assert_eq!((links, empty, proxies), (0, 1, 2));
        assert_eq!(layout.n_keys(), 5);
        assert_eq!(layout.count(empty), 0);
        for (class, idx) in [(links, 0), (links, 2), (proxies, 0), (proxies, 1)] {
            assert_eq!(layout.decode(layout.key(class, idx)), (class, idx));
        }
        assert_eq!(layout.scheduler().n_timers(), 5);
    }

    #[test]
    fn key_layout_orders_classes_before_indices() {
        // Same-instant precedence: every stream of an earlier class fires
        // before any stream of a later class.
        let mut layout = KeyLayout::new();
        let a = layout.class(2);
        let b = layout.class(2);
        let mut s = layout.scheduler();
        for key in 0..4 {
            s.schedule(key, 1.0);
        }
        let order: Vec<(usize, usize)> =
            std::iter::from_fn(|| s.pop()).map(|(_, key)| layout.decode(key)).collect();
        assert_eq!(order, vec![(a, 0), (a, 1), (b, 0), (b, 1)]);
    }

    #[test]
    fn timed_queue_pops_by_time_then_id_not_insertion() {
        let mut q = TimedQueue::new();
        q.push(2.0, 7, "late");
        q.push(1.0, 9, "tie-high");
        q.push(1.0, 4, "tie-low");
        assert_eq!(q.next_time(), Some(1.0));
        assert_eq!(q.pop_due(1.0), Some("tie-low"));
        assert_eq!(q.pop_due(1.0), Some("tie-high"));
        assert_eq!(q.pop_due(1.0), None, "2.0 entry is not due yet");
        assert_eq!(q.next_time(), Some(2.0));
        assert_eq!(q.pop_due(2.0), Some("late"));
        assert!(q.is_empty());
    }
}
