//! Streaming statistics for simulation output analysis.
//!
//! * [`Welford`] — numerically stable streaming mean/variance, mergeable
//!   across parallel replications.
//! * [`TimeWeighted`] — time-average of a piecewise-constant signal (e.g.
//!   number-in-system), the workhorse for utilisation measurements.
//! * [`Histogram`] — fixed-width linear histogram with overflow bucket.
//! * [`P2Quantile`] — Jain & Chlamtac's P² streaming quantile estimator
//!   (no sample storage).
//! * [`BatchMeans`] — batch-means confidence intervals for correlated
//!   steady-state output series.

/// Numerically stable streaming moments (Welford / Chan et al. merge).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (needs ≥ 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the ~95% confidence interval on the mean
    /// (Student-t for small n, normal for large).
    pub fn ci95_half_width(&self) -> f64 {
        t_critical_95(self.n.saturating_sub(1)) * self.std_err()
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
/// Exact table for small df, asymptote 1.96 beyond.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[(d - 1) as usize],
        d if d <= 60 => 2.00,
        d if d <= 120 => 1.98,
        _ => 1.96,
    }
}

/// Time-average of a piecewise-constant signal.
///
/// Feed `(time, new_value)` updates; the accumulator integrates the previous
/// value over the elapsed interval. Typical uses: number-in-system, server
/// busy indicator (utilisation).
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_t: f64,
    value: f64,
    integral: f64,
    start_t: f64,
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    pub fn new() -> Self {
        TimeWeighted { last_t: 0.0, value: 0.0, integral: 0.0, start_t: 0.0, started: false }
    }

    /// Records that the signal changed to `value` at time `t`.
    pub fn set(&mut self, t: f64, value: f64) {
        if !self.started {
            self.start_t = t;
            self.started = true;
        } else {
            debug_assert!(t >= self.last_t, "time went backwards");
            self.integral += self.value * (t - self.last_t);
        }
        self.last_t = t;
        self.value = value;
    }

    /// Adds `delta` to the current value at time `t`.
    pub fn add(&mut self, t: f64, delta: f64) {
        let v = self.value;
        self.set(t, v + delta);
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-average over `[start, t_end]`.
    ///
    /// An empty accumulator (or `t_end` at/before the first sample)
    /// averages to 0. A `t_end` before the last sample is clamped to the
    /// last sample time: the accumulator cannot rewind history, so the
    /// answer covers the full observed span rather than extrapolating a
    /// *negative* contribution from the current value.
    pub fn time_average(&self, t_end: f64) -> f64 {
        if !self.started || t_end <= self.start_t {
            return 0.0;
        }
        let t_end = t_end.max(self.last_t);
        if t_end <= self.start_t {
            return 0.0;
        }
        let integral = self.integral + self.value * (t_end - self.last_t);
        integral / (t_end - self.start_t)
    }
}

/// Fixed-width linear histogram over `[lo, hi)` with `bins` buckets plus
/// underflow/overflow counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower edge of bucket `i`.
    pub fn edge(&self, i: usize) -> f64 {
        self.lo + i as f64 * self.width
    }

    /// Merges another histogram into this one. Bucket counts are exact
    /// integer adds, so the merge is associative and commutative — the
    /// property parallel reductions rely on. Panics unless both share the
    /// same bucket geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo
                && self.width == other.width
                && self.counts.len() == other.counts.len(),
            "histogram merge requires identical bucket geometry"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate quantile from bucket midpoints (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return f64::NAN;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target && self.underflow > 0 {
            return self.lo;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.edge(i) + 0.5 * self.width;
            }
        }
        self.lo + self.width * self.counts.len() as f64
    }
}

/// P² single-quantile streaming estimator (Jain & Chlamtac, 1985).
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(f64::total_cmp);
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }
        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d_sign = d.signum();
                let parabolic = self.parabolic(i, d_sign);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, d_sign);
                }
                self.positions[i] += d_sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate (exact for < 5 samples).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            v.sort_by(f64::total_cmp);
            let idx = ((self.q * v.len() as f64).ceil() as usize).saturating_sub(1);
            return v[idx.min(v.len() - 1)];
        }
        self.heights[2]
    }
}

/// Batch-means analysis for autocorrelated steady-state series.
///
/// Observations are grouped into `num_batches` equal batches; the batch means
/// are (approximately) independent, giving a valid CI on the grand mean.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    values: Vec<f64>,
    num_batches: usize,
}

impl BatchMeans {
    pub fn new(num_batches: usize) -> Self {
        assert!(num_batches >= 2);
        BatchMeans { values: Vec::new(), num_batches }
    }

    pub fn push(&mut self, x: f64) {
        self.values.push(x);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Discards the first `n` observations (warm-up deletion).
    pub fn discard_warmup(&mut self, n: usize) {
        let n = n.min(self.values.len());
        self.values.drain(..n);
    }

    /// Grand mean over retained observations.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// `(mean, ci95_half_width)` via batch means. Observations that don't
    /// fill an integral number of batches are truncated from the front.
    pub fn mean_ci(&self) -> (f64, f64) {
        let n = self.values.len();
        if n < self.num_batches * 2 {
            // Too little data for batching; fall back to IID Welford.
            let mut w = Welford::new();
            for &v in &self.values {
                w.push(v);
            }
            return (w.mean(), w.ci95_half_width());
        }
        let batch_size = n / self.num_batches;
        let start = n - batch_size * self.num_batches;
        let mut w = Welford::new();
        for b in 0..self.num_batches {
            let lo = start + b * batch_size;
            let hi = lo + batch_size;
            let m = self.values[lo..hi].iter().sum::<f64>() / batch_size as f64;
            w.push(m);
        }
        (w.mean(), w.ci95_half_width())
    }
}

/// MSER-5 warm-up truncation (White, 1997).
///
/// Batches the series into groups of 5, then picks the truncation point
/// `d*` minimising the standard error of the mean computed over the
/// retained batches. Output analysis folklore: deleting the transient this
/// way beats fixed-fraction rules when the warm-up length is unknown.
///
/// Returns `(raw_observations_to_discard, mean_over_retained)`. The search
/// is restricted to the first half of the series (truncating more than
/// half signals the run is too short to analyse — callers should extend
/// it rather than trust the estimate).
pub fn mser5_truncation(series: &[f64]) -> (usize, f64) {
    const B: usize = 5;
    let n_batches = series.len() / B;
    if n_batches < 4 {
        // Too short to batch meaningfully: keep everything.
        let mean =
            if series.is_empty() { 0.0 } else { series.iter().sum::<f64>() / series.len() as f64 };
        return (0, mean);
    }
    let batch_means: Vec<f64> =
        (0..n_batches).map(|b| series[b * B..(b + 1) * B].iter().sum::<f64>() / B as f64).collect();
    // Suffix sums for O(1) mean/variance of each truncation candidate.
    let mut best_d = 0;
    let mut best_se = f64::INFINITY;
    let mut best_mean = 0.0;
    for d in 0..n_batches / 2 {
        let tail = &batch_means[d..];
        let m = tail.len() as f64;
        let mean = tail.iter().sum::<f64>() / m;
        let var = tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / m;
        let se = (var / m).sqrt();
        if se < best_se {
            best_se = se;
            best_d = d;
            best_mean = mean;
        }
    }
    (best_d * B, best_mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut rng = Rng::new(1);
        let xs: Vec<f64> = (0..1000).map(|_| rng.f64() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..337] {
            a.push(x);
        }
        for &x in &xs[337..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        b.push(3.0);
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 4.0).abs() < 1e-12);
        let empty = Welford::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(0.0, 1.0); // value 1 on [0, 2)
        tw.set(2.0, 3.0); // value 3 on [2, 4)
        tw.set(4.0, 0.0); // value 0 on [4, 8)

        // integral = 1*2 + 3*2 + 0*4 = 8 over 8 seconds
        assert!((tw.time_average(8.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add() {
        let mut tw = TimeWeighted::new();
        tw.set(0.0, 0.0);
        tw.add(1.0, 2.0); // 0 on [0,1), 2 on [1,3)
        tw.add(3.0, -2.0); // 0 afterwards
        assert!((tw.time_average(4.0) - 1.0).abs() < 1e-12);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.time_average(10.0), 0.0);
        assert_eq!(tw.time_average(0.0), 0.0);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_t_end_at_or_before_start_is_zero() {
        let mut tw = TimeWeighted::new();
        tw.set(5.0, 3.0);
        assert_eq!(tw.time_average(5.0), 0.0);
        assert_eq!(tw.time_average(4.0), 0.0);
    }

    #[test]
    fn time_weighted_t_end_before_last_sample_clamps() {
        let mut tw = TimeWeighted::new();
        tw.set(0.0, 1.0); // value 1 on [0, 4)
        tw.set(4.0, 100.0);
        // Querying inside the observed span must not extrapolate the
        // current value backwards: the answer is the average over the
        // full observed span [0, 4], which is exactly 1.
        let avg = tw.time_average(2.0);
        assert!((avg - 1.0).abs() < 1e-12, "clamped average {avg}");
        assert!(avg >= 0.0, "never negative for a non-negative signal");
    }

    #[test]
    fn time_weighted_single_sample_span() {
        let mut tw = TimeWeighted::new();
        tw.set(1.0, 2.0);
        // Constant value 2 over [1, 3].
        assert!((tw.time_average(3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_matches_combined_stream() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 7.31) % 12.0 - 1.0).collect();
        let mut all = Histogram::new(0.0, 10.0, 20);
        let mut a = Histogram::new(0.0, 10.0, 20);
        let mut b = Histogram::new(0.0, 10.0, 20);
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.total(), all.total());
        assert_eq!(a.underflow(), all.underflow());
        assert_eq!(a.overflow(), all.overflow());
        for i in 0..all.bins() {
            assert_eq!(a.count(i), all.count(i), "bucket {i}");
        }
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
    }

    #[test]
    fn histogram_merge_associative() {
        // u64 bucket adds are exactly associative: (a∪b)∪c == a∪(b∪c).
        let mk = |vals: &[f64]| {
            let mut h = Histogram::new(0.0, 1.0, 8);
            for &v in vals {
                h.push(v);
            }
            h
        };
        let (a, b, c) = (mk(&[0.1, 0.9, 2.0]), mk(&[0.5, -0.5]), mk(&[0.3, 0.3, 0.99]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.total(), right.total());
        for i in 0..left.bins() {
            assert_eq!(left.count(i), right.count(i));
        }
        assert_eq!(left.underflow(), right.underflow());
        assert_eq!(left.overflow(), right.overflow());
    }

    #[test]
    #[should_panic(expected = "identical bucket geometry")]
    fn histogram_merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 10.0, 20);
        a.merge(&b);
    }

    #[test]
    fn histogram_buckets_and_quantile() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 10.0); // 0.0 .. 9.9, 10 per bucket
        }
        assert_eq!(h.total(), 100);
        for i in 0..10 {
            assert_eq!(h.count(i), 10, "bucket {i}");
        }
        let med = h.quantile(0.5);
        assert!((med - 4.5).abs() <= 1.0, "median {med}");
        h.push(-1.0);
        h.push(11.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn p2_estimates_median_of_uniform() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = Rng::new(2);
        for _ in 0..100_000 {
            est.push(rng.f64());
        }
        assert!((est.value() - 0.5).abs() < 0.01, "median {}", est.value());
    }

    #[test]
    fn p2_estimates_p99_of_exponential() {
        let mut est = P2Quantile::new(0.99);
        let mut rng = Rng::new(3);
        for _ in 0..200_000 {
            est.push(rng.exp(1.0));
        }
        let true_p99 = -(0.01f64).ln(); // ≈ 4.605
        assert!((est.value() - true_p99).abs() / true_p99 < 0.05, "p99 {}", est.value());
    }

    #[test]
    fn p2_small_sample_exact() {
        let mut est = P2Quantile::new(0.5);
        est.push(3.0);
        est.push(1.0);
        est.push(2.0);
        assert_eq!(est.value(), 2.0);
    }

    #[test]
    fn batch_means_covers_true_mean() {
        // AR(1)-ish correlated series with mean 10.
        let mut rng = Rng::new(4);
        let mut bm = BatchMeans::new(20);
        let mut x = 10.0;
        for _ in 0..50_000 {
            x = 10.0 + 0.9 * (x - 10.0) + rng.normal();
            bm.push(x);
        }
        bm.discard_warmup(1000);
        let (mean, hw) = bm.mean_ci();
        assert!((mean - 10.0).abs() < 3.0 * hw.max(0.05), "mean {mean} ± {hw}");
        assert!(hw > 0.0);
    }

    #[test]
    fn batch_means_fallback_small_n() {
        let mut bm = BatchMeans::new(10);
        for i in 0..5 {
            bm.push(i as f64);
        }
        let (mean, _) = bm.mean_ci();
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mser5_finds_transient() {
        // Series with an obvious warm-up ramp followed by stationarity.
        let mut rng = Rng::new(21);
        let mut series = Vec::new();
        for i in 0..200 {
            // Transient: decays from 50 toward 10 over ~100 observations.
            series.push(10.0 + 40.0 * (-(i as f64) / 30.0).exp() + rng.normal());
        }
        for _ in 0..2000 {
            series.push(10.0 + rng.normal());
        }
        let (cut, mean) = mser5_truncation(&series);
        assert!(cut >= 30, "should cut into the transient: {cut}");
        assert!(cut <= 400, "should not over-truncate: {cut}");
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn mser5_stationary_series_keeps_everything_early() {
        let mut rng = Rng::new(22);
        let series: Vec<f64> = (0..3000).map(|_| 5.0 + rng.normal()).collect();
        let (cut, mean) = mser5_truncation(&series);
        // No transient: the cut should be small (noise-level).
        assert!(cut < series.len() / 4, "cut {cut}");
        assert!((mean - 5.0).abs() < 0.1);
    }

    #[test]
    fn mser5_short_series_degenerates_gracefully() {
        let (cut, mean) = mser5_truncation(&[1.0, 2.0, 3.0]);
        assert_eq!(cut, 0);
        assert!((mean - 2.0).abs() < 1e-12);
        let (cut, mean) = mser5_truncation(&[]);
        assert_eq!(cut, 0);
        assert_eq!(mean, 0.0);
    }

    #[test]
    fn t_table_sane() {
        assert!(t_critical_95(0).is_infinite());
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
        // Monotone decreasing.
        assert!(t_critical_95(5) > t_critical_95(10));
        assert!(t_critical_95(10) > t_critical_95(1000));
    }
}
