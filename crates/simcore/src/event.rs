//! The event calendar.
//!
//! A binary-heap priority queue of scheduled payloads, ordered by
//! `(SimTime, sequence)` so that events scheduled for the same instant fire
//! in FIFO order (determinism matters: downstream experiments assert on
//! exact metric values for fixed seeds).
//!
//! The calendar is agnostic about what a payload *is* — the [`Engine`]
//! stores boxed closures, the queueing simulators store job ids. Cancellation
//! is by token: [`Calendar::cancel`] marks the token and the entry is skipped
//! when popped (lazy deletion), keeping both operations O(log n) amortised.
//!
//! [`Engine`]: crate::engine::Engine

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, usable to cancel it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventToken(pub(crate) u64);

/// A calendar entry: when, insertion order, and the caller's payload.
pub struct Scheduled<A> {
    pub time: SimTime,
    pub seq: u64,
    pub payload: A,
}

impl<A> PartialEq for Scheduled<A> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<A> Eq for Scheduled<A> {}

impl<A> PartialOrd for Scheduled<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<A> Ord for Scheduled<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of future events with lazy cancellation.
pub struct Calendar<A> {
    heap: BinaryHeap<Scheduled<A>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    live: usize,
}

impl<A> Default for Calendar<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A> Calendar<A> {
    pub fn new() -> Self {
        Calendar { heap: BinaryHeap::new(), next_seq: 0, cancelled: HashSet::new(), live: 0 }
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Earliest live event time, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|s| s.time)
    }

    /// Schedules `payload` at absolute time `time`; returns a cancellation
    /// token.
    pub fn push(&mut self, time: SimTime, payload: A) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
        self.live += 1;
        EventToken(seq)
    }

    /// Cancels a scheduled event. Returns `true` if the token was issued by
    /// this calendar and had not been cancelled before. Cancelling a token
    /// whose event already fired is a silent no-op (returns `true` but has no
    /// further effect).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(token.0) {
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Discards cancelled entries sitting at the top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                let popped = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&popped.seq);
            } else {
                break;
            }
        }
    }

    /// Pops the earliest live event.
    pub fn pop(&mut self) -> Option<Scheduled<A>> {
        self.skim();
        let ev = self.heap.pop();
        if ev.is_some() {
            self.live -= 1;
        }
        ev
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(cal: &mut Calendar<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(ev) = cal.pop() {
            out.push(ev.payload);
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_secs(3.0), 3);
        cal.push(SimTime::from_secs(1.0), 1);
        cal.push(SimTime::from_secs(2.0), 2);
        assert_eq!(drain(&mut cal), vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut cal = Calendar::new();
        for mark in 0..10u32 {
            cal.push(SimTime::from_secs(5.0), mark);
        }
        assert_eq!(drain(&mut cal), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_secs(1.0), 1);
        let tok = cal.push(SimTime::from_secs(2.0), 2);
        cal.push(SimTime::from_secs(3.0), 3);
        assert!(cal.cancel(tok));
        assert_eq!(cal.len(), 2);
        assert_eq!(drain(&mut cal), vec![1, 3]);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut cal: Calendar<u32> = Calendar::new();
        let tok = cal.push(SimTime::from_secs(1.0), 1);
        assert!(cal.cancel(tok));
        assert!(!cal.cancel(tok));
        assert_eq!(cal.len(), 0);
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_rejected() {
        let mut cal: Calendar<u32> = Calendar::new();
        assert!(!cal.cancel(EventToken(999)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut cal = Calendar::new();
        let tok = cal.push(SimTime::from_secs(1.0), 1);
        cal.push(SimTime::from_secs(2.0), 2);
        cal.cancel(tok);
        assert_eq!(cal.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn clear_empties() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_secs(1.0), 1);
        cal.clear();
        assert!(cal.is_empty());
        assert!(cal.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut cal = Calendar::new();
        cal.push(SimTime::from_secs(2.0), 2);
        cal.push(SimTime::from_secs(1.0), 1);
        assert_eq!(cal.pop().unwrap().payload, 1);
        cal.push(SimTime::from_secs(1.5), 15);
        cal.push(SimTime::from_secs(3.0), 3);
        assert_eq!(cal.pop().unwrap().payload, 15);
        assert_eq!(cal.pop().unwrap().payload, 2);
        assert_eq!(cal.pop().unwrap().payload, 3);
        assert!(cal.pop().is_none());
    }
}
