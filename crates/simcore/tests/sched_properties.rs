//! Property tests for the indexed event scheduler: under arbitrary
//! interleavings of arm / re-arm / cancel / pop, events fire in
//! nondecreasing time with a stable ascending-key tie order, and every
//! fired event matches the *latest* deadline its key was armed with.

use proptest::prelude::*;
use simcore::sched::{KeyLayout, Scheduler, TimedQueue};

/// One scripted operation against the scheduler.
#[derive(Clone, Copy, Debug)]
enum Op {
    Schedule { key: usize, t: f64 },
    Cancel { key: usize },
    Pop,
}

fn op_strategy(n_keys: usize) -> impl Strategy<Value = Op> {
    // Discriminant-weighted mix: mostly arms, some pops, a few cancels.
    (0u32..7, 0..n_keys, 0.0..1_000.0f64).prop_map(|(kind, key, t)| match kind {
        0..=3 => Op::Schedule { key, t },
        4 => Op::Cancel { key },
        _ => Op::Pop,
    })
}

proptest! {
    /// Replaying any op script against a mirror of "latest deadline per
    /// key" state: every pop returns exactly the earliest (time, key)
    /// armed in the mirror, so the full pop sequence is nondecreasing in
    /// time, ties resolve by ascending key, and stale (superseded or
    /// cancelled) deadlines never fire.
    #[test]
    fn pop_always_returns_the_earliest_live_deadline(
        ops in proptest::collection::vec(op_strategy(12), 1..400),
    ) {
        let mut sched = Scheduler::with_timers(12);
        let mut mirror: Vec<Option<f64>> = vec![None; 12];
        for op in ops {
            match op {
                Op::Schedule { key, t } => {
                    sched.schedule(key, t);
                    mirror[key] = Some(t);
                }
                Op::Cancel { key } => {
                    sched.cancel(key);
                    mirror[key] = None;
                }
                Op::Pop => {
                    let expected = mirror
                        .iter()
                        .enumerate()
                        .filter_map(|(k, t)| t.map(|t| (t, k)))
                        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    prop_assert_eq!(sched.pop(), expected);
                    if let Some((_, k)) = expected {
                        mirror[k] = None;
                    }
                }
            }
            prop_assert_eq!(sched.len(), mirror.iter().flatten().count());
        }
    }

    /// Draining a scheduler after arbitrary arming yields times in
    /// nondecreasing order with ascending keys on ties — the determinism
    /// contract the cluster engines' event ordering rests on.
    #[test]
    fn drain_is_sorted_by_time_then_key(
        arms in proptest::collection::vec((0usize..32, 0.0..100.0f64), 1..200),
    ) {
        let mut sched = Scheduler::with_timers(32);
        for &(key, t) in &arms {
            sched.schedule(key, t);
        }
        let mut fired = Vec::new();
        while let Some(ev) = sched.pop() {
            fired.push(ev);
        }
        for pair in fired.windows(2) {
            prop_assert!(
                pair[0].0 < pair[1].0 || (pair[0].0 == pair[1].0 && pair[0].1 < pair[1].1),
                "out of order: {:?} before {:?}",
                pair[0],
                pair[1]
            );
        }
        // Exactly the latest arm per key fired.
        let mut latest: Vec<Option<f64>> = vec![None; 32];
        for &(key, t) in &arms {
            latest[key] = Some(t);
        }
        let mut expected: Vec<(f64, usize)> = latest
            .iter()
            .enumerate()
            .filter_map(|(k, t)| t.map(|t| (t, k)))
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        prop_assert_eq!(fired, expected);
    }

    /// Cancel/re-arm interleavings addressed through the shard-handle API
    /// ([`KeyLayout`]): a layout-addressed scheduler behaves exactly like
    /// a flat one, and same-instant pops come out class-major then
    /// entity-ascending — the cross-shard tie order the sharded cluster
    /// driver's global-rank merge depends on.
    #[test]
    fn layout_addressed_ops_match_flat_keys(
        ops in proptest::collection::vec(
            (0u32..7, 0usize..3, 0usize..5, 0.0..1_000.0f64),
            1..300,
        ),
    ) {
        // Three classes of five streams each.
        let mut layout = KeyLayout::new();
        let classes: Vec<usize> = (0..3).map(|_| layout.class(5)).collect();
        let mut sched = layout.scheduler();
        let mut mirror: Vec<Option<f64>> = vec![None; layout.n_keys()];
        for (kind, class, idx, t) in ops {
            let key = layout.key(classes[class], idx);
            match kind {
                0..=3 => {
                    sched.schedule(key, t);
                    mirror[key] = Some(t);
                }
                4 => {
                    sched.cancel(key);
                    mirror[key] = None;
                }
                _ => {
                    let expected = mirror
                        .iter()
                        .enumerate()
                        .filter_map(|(k, t)| t.map(|t| (t, k)))
                        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    let popped = sched.pop();
                    prop_assert_eq!(popped, expected);
                    if let Some((_, k)) = popped {
                        // Round-trip: the fired key decodes into the
                        // class/index it was armed through.
                        let (c, i) = layout.decode(k);
                        prop_assert_eq!(layout.key(c, i), k);
                        mirror[k] = None;
                    }
                }
            }
        }
        // Drain: class-major, then entity index, on every time tie.
        let mut last: Option<(f64, usize)> = None;
        while let Some((t, key)) = sched.pop() {
            if let Some((lt, lk)) = last {
                prop_assert!(lt < t || (lt == t && lk < key));
                if lt == t {
                    let (lc, li) = layout.decode(lk);
                    let (c, i) = layout.decode(key);
                    prop_assert!(lc < c || (lc == c && li < i), "tie order violates layout");
                }
            }
            last = Some((t, key));
        }
    }

    /// A mailbox-fed [`TimedQueue`] replays entries in `(time, id)` order
    /// no matter how the sends were interleaved — the property that makes
    /// cross-shard message delivery order irrelevant.
    #[test]
    fn timed_queue_order_is_insertion_invariant(
        mut entries in proptest::collection::vec((0.0..100.0f64, 0u64..10_000), 1..100),
    ) {
        // Unique ids (the queue's contract: one pending entry per id).
        entries.sort_by_key(|e| e.1);
        entries.dedup_by_key(|e| e.1);
        let mut forward = TimedQueue::new();
        let mut backward = TimedQueue::new();
        for &(t, id) in &entries {
            forward.push(t, id, (t, id));
        }
        for &(t, id) in entries.iter().rev() {
            backward.push(t, id, (t, id));
        }
        let drain = |q: &mut TimedQueue<(f64, u64)>| {
            let mut out = Vec::new();
            while let Some(t) = q.next_time() {
                while let Some(e) = q.pop_due(t) {
                    out.push(e);
                }
            }
            out
        };
        let a = drain(&mut forward);
        let b = drain(&mut backward);
        prop_assert_eq!(&a, &b);
        for pair in a.windows(2) {
            prop_assert!(
                pair[0].0 < pair[1].0 || (pair[0].0 == pair[1].0 && pair[0].1 < pair[1].1)
            );
        }
    }
}
