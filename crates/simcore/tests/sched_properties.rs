//! Property tests for the indexed event scheduler: under arbitrary
//! interleavings of arm / re-arm / cancel / pop, events fire in
//! nondecreasing time with a stable ascending-key tie order, and every
//! fired event matches the *latest* deadline its key was armed with.

use proptest::prelude::*;
use simcore::sched::Scheduler;

/// One scripted operation against the scheduler.
#[derive(Clone, Copy, Debug)]
enum Op {
    Schedule { key: usize, t: f64 },
    Cancel { key: usize },
    Pop,
}

fn op_strategy(n_keys: usize) -> impl Strategy<Value = Op> {
    // Discriminant-weighted mix: mostly arms, some pops, a few cancels.
    (0u32..7, 0..n_keys, 0.0..1_000.0f64).prop_map(|(kind, key, t)| match kind {
        0..=3 => Op::Schedule { key, t },
        4 => Op::Cancel { key },
        _ => Op::Pop,
    })
}

proptest! {
    /// Replaying any op script against a mirror of "latest deadline per
    /// key" state: every pop returns exactly the earliest (time, key)
    /// armed in the mirror, so the full pop sequence is nondecreasing in
    /// time, ties resolve by ascending key, and stale (superseded or
    /// cancelled) deadlines never fire.
    #[test]
    fn pop_always_returns_the_earliest_live_deadline(
        ops in proptest::collection::vec(op_strategy(12), 1..400),
    ) {
        let mut sched = Scheduler::with_timers(12);
        let mut mirror: Vec<Option<f64>> = vec![None; 12];
        for op in ops {
            match op {
                Op::Schedule { key, t } => {
                    sched.schedule(key, t);
                    mirror[key] = Some(t);
                }
                Op::Cancel { key } => {
                    sched.cancel(key);
                    mirror[key] = None;
                }
                Op::Pop => {
                    let expected = mirror
                        .iter()
                        .enumerate()
                        .filter_map(|(k, t)| t.map(|t| (t, k)))
                        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    prop_assert_eq!(sched.pop(), expected);
                    if let Some((_, k)) = expected {
                        mirror[k] = None;
                    }
                }
            }
            prop_assert_eq!(sched.len(), mirror.iter().flatten().count());
        }
    }

    /// Draining a scheduler after arbitrary arming yields times in
    /// nondecreasing order with ascending keys on ties — the determinism
    /// contract the cluster engines' event ordering rests on.
    #[test]
    fn drain_is_sorted_by_time_then_key(
        arms in proptest::collection::vec((0usize..32, 0.0..100.0f64), 1..200),
    ) {
        let mut sched = Scheduler::with_timers(32);
        for &(key, t) in &arms {
            sched.schedule(key, t);
        }
        let mut fired = Vec::new();
        while let Some(ev) = sched.pop() {
            fired.push(ev);
        }
        for pair in fired.windows(2) {
            prop_assert!(
                pair[0].0 < pair[1].0 || (pair[0].0 == pair[1].0 && pair[0].1 < pair[1].1),
                "out of order: {:?} before {:?}",
                pair[0],
                pair[1]
            );
        }
        // Exactly the latest arm per key fired.
        let mut latest: Vec<Option<f64>> = vec![None; 32];
        for &(key, t) in &arms {
            latest[key] = Some(t);
        }
        let mut expected: Vec<(f64, usize)> = latest
            .iter()
            .enumerate()
            .filter_map(|(k, t)| t.map(|t| (t, k)))
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        prop_assert_eq!(fired, expected);
    }
}
