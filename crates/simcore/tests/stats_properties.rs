//! Property tests for the streaming statistics the observability layer
//! leans on: parallel reductions (Welford merge, Histogram merge) must
//! agree with the sequential stream they summarise, and histogram merging
//! must be associative so any reduction tree gives the same answer.

use proptest::prelude::*;
use simcore::stats::{Histogram, TimeWeighted, Welford};

fn welford_of(xs: &[f64]) -> Welford {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w
}

fn histogram_of(xs: &[f64]) -> Histogram {
    let mut h = Histogram::new(0.0, 1.0, 16);
    for &x in xs {
        h.push(x);
    }
    h
}

fn assert_histograms_equal(a: &Histogram, b: &Histogram) {
    assert_eq!(a.total(), b.total());
    assert_eq!(a.underflow(), b.underflow());
    assert_eq!(a.overflow(), b.overflow());
    for i in 0..a.bins() {
        assert_eq!(a.count(i), b.count(i), "bucket {i}");
    }
}

proptest! {
    /// Splitting a stream at any point and merging the two accumulators
    /// reproduces the sequential push of the whole stream.
    #[test]
    fn welford_merge_equals_sequential_push(
        xs in proptest::collection::vec(-1.0e3..1.0e3f64, 0..200),
        split in 0..200usize,
    ) {
        let split = split.min(xs.len());
        let all = welford_of(&xs);
        let mut merged = welford_of(&xs[..split]);
        merged.merge(&welford_of(&xs[split..]));
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!((merged.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((merged.variance() - all.variance()).abs() < 1e-6);
        if !xs.is_empty() {
            prop_assert_eq!(merged.min(), all.min());
            prop_assert_eq!(merged.max(), all.max());
        }
    }

    /// Histogram merge is exact (integer bucket adds), so any split of the
    /// stream merges back to the sequential histogram...
    #[test]
    fn histogram_merge_equals_sequential_push(
        xs in proptest::collection::vec(-0.5..1.5f64, 0..200),
        split in 0..200usize,
    ) {
        let split = split.min(xs.len());
        let all = histogram_of(&xs);
        let mut merged = histogram_of(&xs[..split]);
        merged.merge(&histogram_of(&xs[split..]));
        assert_histograms_equal(&merged, &all);
    }

    /// ...and the merge is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`, the
    /// property that makes shard-order-independent reductions safe.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(-0.5..1.5f64, 0..80),
        b in proptest::collection::vec(-0.5..1.5f64, 0..80),
        c in proptest::collection::vec(-0.5..1.5f64, 0..80),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        assert_histograms_equal(&left, &right);
    }

    /// `time_average` never extrapolates a negative span: for a
    /// non-negative piecewise-constant signal the average is non-negative
    /// for every query time, including queries before the last sample.
    #[test]
    fn time_weighted_average_never_negative_for_nonnegative_signal(
        steps in proptest::collection::vec((0.0..10.0f64, 0.0..5.0f64), 1..40),
        query in 0.0..50.0f64,
    ) {
        let mut tw = TimeWeighted::new();
        let mut t = 0.0;
        for (dt, v) in steps {
            t += dt;
            tw.set(t, v);
        }
        let avg = tw.time_average(query);
        prop_assert!(avg >= 0.0, "avg {avg} at query {query} (last sample {t})");
        prop_assert!(avg.is_finite());
    }
}
