//! Byte-accounting invariants of the size-aware caches, proptested over
//! arbitrary operation interleavings:
//!
//! * occupancy in bytes never exceeds `byte_capacity`, and entry count
//!   never exceeds `capacity`, after any mix of charge/insert/remove/touch;
//! * `used_bytes` always equals the sum of the live entries' charges
//!   (no leaked or double-counted bytes);
//! * with an unbounded byte budget, `charge` is observationally identical
//!   to the item-counted `insert` — byte-addressed caches degenerate to
//!   the validated item-counted behaviour, not a parallel code path.

use cachesim::{ByteCapacity, FifoCache, LruCache, ReplacementCache, ValueAwareCache};
use proptest::prelude::*;

/// One generated cache operation. Sizes come quantised so eviction
/// tie-situations and exact-fit boundaries are actually exercised.
#[derive(Clone, Copy, Debug)]
enum Op {
    Charge(u32, f64),
    Insert(u32),
    Remove(u32),
    Touch(u32),
}

fn op_strategy(n_keys: u32) -> impl Strategy<Value = Op> {
    (0u32..4, 0u32..n_keys, 0u32..9).prop_map(|(kind, key, size_q)| match kind {
        0 => Op::Charge(key, size_q as f64 * 0.5),
        1 => Op::Insert(key),
        2 => Op::Remove(key),
        _ => Op::Touch(key),
    })
}

fn check_invariants<C: ByteCapacity<u32>>(cache: &C, label: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        cache.len() <= cache.capacity(),
        "{label}: {} entries exceed capacity {}",
        cache.len(),
        cache.capacity()
    );
    prop_assert!(
        cache.used_bytes() <= cache.byte_capacity() + 1e-9,
        "{label}: occupancy {} bytes exceeds byte capacity {}",
        cache.used_bytes(),
        cache.byte_capacity()
    );
    let sum: f64 = cache.keys().iter().map(|k| cache.entry_bytes(k).unwrap_or(0.0)).sum();
    prop_assert!(
        (cache.used_bytes() - sum).abs() < 1e-6,
        "{label}: used_bytes {} != sum of entry charges {sum}",
        cache.used_bytes()
    );
    Ok(())
}

fn drive<C: ByteCapacity<u32>>(
    cache: &mut C,
    ops: &[Op],
    label: &str,
) -> Result<(), TestCaseError> {
    for &op in ops {
        match op {
            Op::Charge(k, bytes) => {
                let before: Vec<u32> = cache.keys();
                let outcome = cache.charge(k, bytes);
                if bytes <= cache.byte_capacity() {
                    prop_assert!(outcome.admitted, "{label}: fitting entry rejected");
                    prop_assert!(cache.contains(&k));
                } else {
                    prop_assert!(!outcome.admitted, "{label}: oversized entry admitted");
                    prop_assert!(!cache.contains(&k));
                }
                for v in &outcome.evicted {
                    prop_assert!(
                        before.contains(v),
                        "{label}: evicted {v} was not cached beforehand"
                    );
                    prop_assert!(!cache.contains(v), "{label}: evicted {v} still present");
                }
            }
            Op::Insert(k) => {
                cache.insert(k);
            }
            Op::Remove(k) => {
                cache.remove(&k);
            }
            Op::Touch(k) => {
                cache.touch(k);
            }
        }
        check_invariants(cache, label)?;
    }
    Ok(())
}

/// Regression: f64 subtraction residue (`a + b - b ≠ a`) must not survive
/// in the ledger of an emptied cache — a later exact-budget charge (legal:
/// only `bytes > byte_capacity` is rejected) would otherwise drive the
/// eviction loop into an empty cache and panic.
#[test]
fn exact_budget_charge_after_residue_is_admitted() {
    let budget = 1.0;
    for sizes in [[0.1, 0.3], [0.7, 0.2], [0.3, 0.30000000000000004]] {
        let mut lru = LruCache::with_byte_capacity(8, budget);
        let mut fifo = FifoCache::with_byte_capacity(8, budget);
        for (i, &s) in sizes.iter().enumerate() {
            lru.charge(i as u32, s);
            fifo.charge(i as u32, s);
        }
        for i in 0..sizes.len() as u32 {
            lru.remove(&i);
            fifo.remove(&i);
        }
        assert_eq!(lru.used_bytes(), 0.0, "lru ledger residue after drain");
        assert_eq!(fifo.used_bytes(), 0.0, "fifo ledger residue after drain");
        assert!(lru.charge(9, budget).admitted, "exact-budget charge rejected by lru");
        assert!(fifo.charge(9, budget).admitted, "exact-budget charge rejected by fifo");
    }
}

proptest! {
    /// LRU: byte occupancy, entry count, and the used-bytes ledger hold
    /// under arbitrary interleavings of all five operations.
    #[test]
    fn lru_byte_occupancy_never_exceeds_budget(
        ops in proptest::collection::vec(op_strategy(24), 1..400),
        capacity in 1usize..12,
        byte_capacity_q in 1u32..20,
    ) {
        let mut cache = LruCache::with_byte_capacity(capacity, byte_capacity_q as f64 * 0.5);
        drive(&mut cache, &ops, "lru")?;
    }

    /// FIFO: the same invariants, including through its lazy-removal ghost
    /// queue.
    #[test]
    fn fifo_byte_occupancy_never_exceeds_budget(
        ops in proptest::collection::vec(op_strategy(24), 1..400),
        capacity in 1usize..12,
        byte_capacity_q in 1u32..20,
    ) {
        let mut cache = FifoCache::with_byte_capacity(capacity, byte_capacity_q as f64 * 0.5);
        drive(&mut cache, &ops, "fifo")?;
    }

    /// Value-aware: the invariants hold through minimum-value eviction,
    /// whose victim order differs from both LRU and FIFO.
    #[test]
    fn value_aware_byte_occupancy_never_exceeds_budget(
        ops in proptest::collection::vec(op_strategy(24), 1..400),
        capacity in 1usize..12,
        byte_capacity_q in 1u32..20,
    ) {
        let mut cache = ValueAwareCache::with_byte_capacity(capacity, byte_capacity_q as f64 * 0.5);
        drive(&mut cache, &ops, "value_aware")?;
    }

    /// With an unbounded byte budget, `charge` makes exactly the
    /// admissions and evictions `insert` makes: the byte-addressed path
    /// is a strict generalisation, pinned eviction-for-eviction.
    #[test]
    fn unbounded_charge_degenerates_to_insert(
        keys in proptest::collection::vec(0u32..32, 1..300),
        capacity in 1usize..10,
    ) {
        let mut by_charge = LruCache::with_byte_capacity(capacity, f64::INFINITY);
        let mut by_insert = LruCache::new(capacity);
        for &k in &keys {
            let outcome = by_charge.charge(k, 1.0);
            let evicted = by_insert.insert(k);
            prop_assert!(outcome.admitted);
            prop_assert_eq!(outcome.evicted, evicted.into_iter().collect::<Vec<_>>());
            prop_assert_eq!(by_charge.keys(), by_insert.keys());
        }
    }
}
