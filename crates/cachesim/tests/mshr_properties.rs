//! Property tests for the MSHR outstanding-fetch table, pinning the three
//! invariants the cluster engines' determinism rests on:
//!
//! * **waiter FIFO order** — a settled entry yields its waiters in exactly
//!   the order their demand misses coalesced, for any interleaving of
//!   misses, prefetch reservations, and completions;
//! * **entry-budget determinism** — two tables with the same budget driven
//!   by the same operation sequence make identical Launch / Coalesced /
//!   Bypass decisions and end with identical counters, and an unbounded
//!   table never bypasses or rejects while coalescing is on;
//! * **coalesced-bytes conservation** — origin bytes equal the sum of
//!   bytes over launched+bypassed fetches only; coalesced waiters charge
//!   nothing, so (origin fetches + coalesced joins) always equals the
//!   total demand misses offered.

use cachesim::{FetchDecision, Mshr, MshrConfig, Waiter};
use proptest::prelude::*;

/// One generated table operation. Keys are drawn from a small space so
/// in-flight collisions (the interesting case) actually happen.
#[derive(Clone, Copy, Debug)]
enum Op {
    Demand(u32),
    Prefetch(u32),
    Complete(u32),
}

fn op_strategy(n_keys: u32) -> impl Strategy<Value = Op> {
    (0u32..4, 0u32..n_keys).prop_map(|(kind, key)| match kind {
        0 | 1 => Op::Demand(key),
        2 => Op::Prefetch(key),
        _ => Op::Complete(key),
    })
}

/// Drives `ops` through a table, mirroring the expected waiter queues in
/// plain Vecs, and checks FIFO release plus byte/count conservation.
fn drive(config: MshrConfig, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut m: Mshr<u32> = Mshr::new(config);
    // Expected waiter queue per in-flight key, by push order.
    let mut expected: std::collections::HashMap<u32, Vec<u64>> = std::collections::HashMap::new();
    let mut seq: u64 = 0;
    let mut launched_bytes = 0.0f64;
    let mut demand_misses = 0u64;

    for (i, &op) in ops.iter().enumerate() {
        let t = i as f64;
        match op {
            Op::Demand(k) => {
                seq += 1;
                demand_misses += 1;
                let bytes = 1.0 + (k as f64) * 0.25;
                let was_inflight = m.contains(&k);
                let decision =
                    m.on_demand_miss(k, t, bytes, Waiter { t, measured: true, trace: seq });
                match decision {
                    FetchDecision::Launch => {
                        prop_assert!(!was_inflight, "launched over an in-flight entry");
                        launched_bytes += bytes;
                        expected.insert(k, Vec::new());
                    }
                    FetchDecision::Coalesced => {
                        prop_assert!(config.coalesce, "coalesced with coalescing off");
                        prop_assert!(was_inflight, "coalesced onto a missing entry");
                        expected.get_mut(&k).unwrap().push(seq);
                    }
                    FetchDecision::Bypass => {
                        // Bypasses still fetch from the origin.
                        launched_bytes += bytes;
                        if config.coalesce {
                            prop_assert!(
                                config.entries.is_some(),
                                "unbounded coalescing table bypassed"
                            );
                            prop_assert!(!was_inflight, "bypass despite in-flight entry");
                        }
                    }
                }
            }
            Op::Prefetch(k) => {
                let issued = m.reserve_prefetch(k, t, 1.0);
                if issued {
                    expected.insert(k, Vec::new());
                }
            }
            Op::Complete(k) => {
                let entry = m.complete(&k);
                match expected.remove(&k) {
                    Some(want) => {
                        let got: Vec<u64> =
                            entry.unwrap().waiters.iter().map(|w| w.trace).collect();
                        prop_assert_eq!(got, want, "waiters out of FIFO order for key {}", k);
                    }
                    None => prop_assert!(entry.is_none(), "settled an entry never allocated"),
                }
            }
        }
        if let Some(budget) = config.entries {
            prop_assert!(m.len() <= budget, "table exceeded its entry budget");
        }
        // Conservation: every demand miss either fetched or coalesced.
        prop_assert_eq!(m.origin_fetches() + m.coalesced(), demand_misses);
        prop_assert!(
            (m.origin_bytes() - launched_bytes).abs() < 1e-9,
            "origin bytes {} diverged from launched+bypassed bytes {}",
            m.origin_bytes(),
            launched_bytes
        );
    }
    Ok(())
}

/// Replays `ops` on a second identically-configured table and checks the
/// decisions and counters match call-for-call: the full-table policy has
/// no hidden nondeterminism (iteration order, hashing) to diverge on.
fn replay_matches(config: MshrConfig, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut a: Mshr<u32> = Mshr::new(config);
    let mut b: Mshr<u32> = Mshr::new(config);
    for (i, &op) in ops.iter().enumerate() {
        let t = i as f64;
        match op {
            Op::Demand(k) => {
                let w = Waiter { t, measured: true, trace: i as u64 };
                prop_assert_eq!(a.on_demand_miss(k, t, 1.0, w), b.on_demand_miss(k, t, 1.0, w));
            }
            Op::Prefetch(k) => {
                prop_assert_eq!(a.reserve_prefetch(k, t, 1.0), b.reserve_prefetch(k, t, 1.0));
            }
            Op::Complete(k) => {
                let (ea, eb) = (a.complete(&k), b.complete(&k));
                prop_assert_eq!(ea.is_some(), eb.is_some());
                if let (Some(ea), Some(eb)) = (ea, eb) {
                    prop_assert_eq!(ea.waiters, eb.waiters);
                    prop_assert_eq!(ea.origin, eb.origin);
                }
            }
        }
    }
    prop_assert_eq!(a.origin_fetches(), b.origin_fetches());
    prop_assert_eq!(a.coalesced(), b.coalesced());
    prop_assert_eq!(a.rejections(), b.rejections());
    prop_assert_eq!(a.settled_entries(), b.settled_entries());
    prop_assert_eq!(a.settled_waiters(), b.settled_waiters());
    Ok(())
}

proptest! {
    /// Unbounded coalescing table: FIFO release and byte conservation
    /// under arbitrary interleavings.
    #[test]
    fn unbounded_fifo_and_conservation(
        ops in proptest::collection::vec(op_strategy(12), 1..400),
    ) {
        drive(MshrConfig { entries: None, coalesce: true }, &ops)?;
    }

    /// Budgeted table: the same invariants, plus the budget itself, hold
    /// through the deterministic full-table bypass/drop policy.
    #[test]
    fn budgeted_fifo_and_conservation(
        ops in proptest::collection::vec(op_strategy(12), 1..400),
        budget in 1usize..6,
    ) {
        drive(MshrConfig { entries: Some(budget), coalesce: true }, &ops)?;
    }

    /// Independent-miss baseline: demand misses never coalesce, so origin
    /// fetches equal demand misses exactly.
    #[test]
    fn independent_mode_fetches_every_miss(
        ops in proptest::collection::vec(op_strategy(12), 1..400),
    ) {
        drive(MshrConfig { entries: None, coalesce: false }, &ops)?;
        let mut m: Mshr<u32> = Mshr::new(MshrConfig { entries: None, coalesce: false });
        let mut demand = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            match op {
                Op::Demand(k) => {
                    demand += 1;
                    m.on_demand_miss(k, i as f64, 1.0, Waiter::demand(i as f64));
                }
                Op::Prefetch(k) => { m.reserve_prefetch(k, i as f64, 1.0); }
                Op::Complete(k) => { m.complete(&k); }
            }
        }
        prop_assert_eq!(m.origin_fetches(), demand);
        prop_assert_eq!(m.coalesced(), 0);
    }

    /// Budget-policy determinism: replaying the same sequence on a fresh
    /// table reproduces every decision and counter.
    #[test]
    fn replayed_sequences_decide_identically(
        ops in proptest::collection::vec(op_strategy(12), 1..400),
        budget_q in 0usize..6,
        coalesce in any::<bool>(),
    ) {
        let budget = (budget_q > 0).then_some(budget_q);
        replay_matches(MshrConfig { entries: budget, coalesce }, &ops)?;
    }
}
