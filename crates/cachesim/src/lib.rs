//! # cachesim — the cache substrate
//!
//! The paper's prefetch–cache interaction (§2.2) needs real caches to
//! validate against. This crate provides:
//!
//! * [`ReplacementCache`] — the policy trait, over generic keys;
//! * [`lru`], [`lfu`], [`fifo`], [`clock`], [`random`] — classic
//!   replacement policies (LRU in O(1) via an intrusive list);
//! * [`value_aware`] — an oracle cache that evicts the *least valuable*
//!   entry given an external value function: the simulated counterpart of
//!   the paper's interaction models (evict zero-value ⇒ model A, evict
//!   uniformly ⇒ model B);
//! * [`tagged`] — a wrapper implementing the paper's §4 tagged/untagged
//!   algorithm for estimating `h′` (the hit ratio the cache *would* have
//!   without prefetching) while prefetching is live;
//! * [`mshr`] — an MSHR-style outstanding-fetch table making *delayed
//!   hits* first class: misses for in-flight keys coalesce onto the
//!   outstanding fetch's FIFO waiter queue instead of fetching again
//!   ([`TaggedCache::probe_via`] consults it before any fetch).
//!
//! All policies are deterministic data structures (the [`random`] policy
//! owns a seeded PRNG), so simulations remain reproducible.
//!
//! ## Byte-addressed capacity
//!
//! The paper's network-load curves are denominated in *bytes*, so caches
//! that count items misstate occupancy under heterogeneous object sizes.
//! Policies that also implement [`ByteCapacity`] (LRU, FIFO — and
//! [`TaggedCache`] over either) carry a second budget in bytes:
//! [`ByteCapacity::charge`] admits a key with an explicit size and evicts
//! in policy order until **both** the entry-count and the byte budgets
//! hold, returning every victim (byte-driven eviction can claim several).
//! With an unbounded byte budget (the plain constructors) `charge`
//! reproduces [`ReplacementCache::insert`] exactly, so item-counted
//! simulations are the degenerate case, not a separate code path.

pub mod clock;
pub mod fifo;
pub mod gdsf;
pub mod lfu;
pub mod lru;
pub mod mshr;
pub mod random;
pub mod slru;
pub mod tagged;
pub mod value_aware;

pub use clock::ClockCache;
pub use fifo::FifoCache;
pub use gdsf::GdsfCache;
pub use lfu::LfuCache;
pub use lru::LruCache;
pub use mshr::{FetchDecision, FetchOrigin, Mshr, MshrAccess, MshrConfig, MshrEntry, Waiter};
pub use random::RandomCache;
pub use slru::SlruCache;
pub use tagged::{AccessKind, Tag, TaggedCache};
pub use value_aware::ValueAwareCache;

use core::hash::Hash;

/// A bounded cache of keys under some replacement policy.
///
/// The cache stores keys only; values (item bytes) are irrelevant to the
/// replacement behaviour being studied, and sizes are tracked by the
/// simulators. All policies implement the same four operations:
pub trait ReplacementCache<K: Copy + Eq + Hash> {
    /// Maximum number of entries.
    fn capacity(&self) -> usize;

    /// Current number of entries.
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `k` is cached.
    fn contains(&self, k: &K) -> bool;

    /// Records a user access to `k` **if present** (updating
    /// recency/frequency metadata). Returns `true` on hit. Does *not*
    /// admit missing keys — call [`ReplacementCache::insert`] for that.
    fn touch(&mut self, k: K) -> bool;

    /// Admits `k`, evicting if full; returns the evicted key, if any.
    /// Inserting a present key refreshes its metadata and evicts nothing.
    fn insert(&mut self, k: K) -> Option<K>;

    /// Removes a specific key; returns whether it was present.
    fn remove(&mut self, k: &K) -> bool;

    /// Snapshot of the cached keys (order unspecified).
    fn keys(&self) -> Vec<K>;
}

/// Outcome of a byte-charged admission ([`ByteCapacity::charge`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChargeOutcome<K> {
    /// Whether `k` resides in the cache after the call. `false` only when
    /// the entry alone exceeds the byte budget (it is never admitted, and
    /// a previously cached copy is evicted).
    pub admitted: bool,
    /// Keys evicted to make room, in the policy's eviction order.
    pub evicted: Vec<K>,
}

/// A cache with a second budget denominated in bytes.
///
/// Implementors keep the [`ReplacementCache`] entry-count budget *and* a
/// byte budget: an admission via [`ByteCapacity::charge`] evicts (in the
/// policy's usual order) until both hold, so occupancy in bytes never
/// exceeds [`ByteCapacity::byte_capacity`] — the invariant the byte-
/// accounting proptests pin. Keys admitted through the size-oblivious
/// [`ReplacementCache::insert`] are charged zero bytes.
pub trait ByteCapacity<K: Copy + Eq + Hash>: ReplacementCache<K> {
    /// Maximum occupancy in bytes (`f64::INFINITY` when unconstrained).
    fn byte_capacity(&self) -> f64;

    /// Current occupancy in bytes.
    fn used_bytes(&self) -> f64;

    /// Bytes currently charged for `k`, if cached.
    fn entry_bytes(&self, k: &K) -> Option<f64>;

    /// Admits `k` charging `bytes`, evicting in policy order until both
    /// the entry-count and the byte budgets hold. Charging a present key
    /// refreshes its replacement metadata (like
    /// [`ReplacementCache::insert`]) and re-charges its size. An entry
    /// larger than the whole byte budget is rejected, never admitted.
    fn charge(&mut self, k: K, bytes: f64) -> ChargeOutcome<K>;
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared conformance suite run against every policy.
    use super::*;

    pub fn basic_fill_and_evict<C: ReplacementCache<u32>>(mut c: C) {
        assert_eq!(c.capacity(), 3);
        assert!(c.is_empty());
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), None);
        assert_eq!(c.insert(3), None);
        assert_eq!(c.len(), 3);
        let evicted = c.insert(4);
        assert!(evicted.is_some());
        assert_eq!(c.len(), 3);
        assert!(c.contains(&4));
        assert!(!c.contains(&evicted.unwrap()));
    }

    pub fn reinsert_does_not_evict<C: ReplacementCache<u32>>(mut c: C) {
        c.insert(1);
        c.insert(2);
        c.insert(3);
        assert_eq!(c.insert(2), None);
        assert_eq!(c.len(), 3);
    }

    pub fn remove_frees_space<C: ReplacementCache<u32>>(mut c: C) {
        c.insert(1);
        c.insert(2);
        c.insert(3);
        assert!(c.remove(&2));
        assert!(!c.remove(&2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.insert(9), None);
    }

    pub fn touch_only_hits_present<C: ReplacementCache<u32>>(mut c: C) {
        assert!(!c.touch(7));
        c.insert(7);
        assert!(c.touch(7));
        assert_eq!(c.len(), 1);
    }

    pub fn keys_are_consistent<C: ReplacementCache<u32>>(mut c: C) {
        for k in 0..3 {
            c.insert(k);
        }
        let mut keys = c.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2]);
    }
}
