//! Greedy-Dual-Size-Frequency (GDSF) — size-aware replacement.
//!
//! The canonical web-proxy policy of the paper's era (Cherkasova, 1998).
//! Each entry carries `H = L + frequency / size`: small, popular items are
//! kept; large, rarely used ones go first. The inflation value `L` (set to
//! the evicted entry's `H`) implements aging without timestamps.
//!
//! Relevant here because the paper's model is parameterised by the *mean*
//! size `s̄` only — GDSF is how real systems exploited the full size
//! distribution, and the byte-hit-vs-hit-ratio trade-off it embodies is
//! measurable with the `workload` crate's heavy-tailed catalogs.

use crate::ReplacementCache;
use core::hash::Hash;
use std::collections::{BTreeSet, HashMap};

#[derive(Clone, Copy, Debug, PartialEq)]
struct HValue(f64);

impl Eq for HValue {}
impl PartialOrd for HValue {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HValue {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Entry {
    h: HValue,
    seq: u64,
    freq: u64,
    size: f64,
}

/// GDSF cache over keys with explicit sizes (use
/// [`GdsfCache::insert_sized`]; the plain `insert` assumes unit size).
pub struct GdsfCache<K> {
    map: HashMap<K, Entry>,
    order: BTreeSet<(HValue, u64, K)>,
    capacity: usize,
    inflation: f64,
    next_seq: u64,
}

impl<K: Copy + Eq + Hash + Ord> GdsfCache<K> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        GdsfCache {
            map: HashMap::with_capacity(capacity + 1),
            order: BTreeSet::new(),
            capacity,
            inflation: 0.0,
            next_seq: 0,
        }
    }

    /// Current aging level `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    fn priority(&self, freq: u64, size: f64) -> HValue {
        HValue(self.inflation + freq as f64 / size.max(1e-12))
    }

    fn reinsert(&mut self, k: K, freq: u64, size: f64) {
        let h = self.priority(freq, size);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(k, Entry { h, seq, freq, size });
        self.order.insert((h, seq, k));
    }

    /// Inserts/refreshes `k` with an explicit size; returns the evicted key.
    pub fn insert_sized(&mut self, k: K, size: f64) -> Option<K> {
        assert!(size > 0.0 && size.is_finite());
        if let Some(e) = self.map.remove(&k) {
            self.order.remove(&(e.h, e.seq, k));
            self.reinsert(k, e.freq + 1, size);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim = *self.order.iter().next().expect("full cache");
            self.order.remove(&victim);
            let entry = self.map.remove(&victim.2).expect("victim entry");
            // Age the cache: future insertions compete against the evicted
            // entry's priority.
            self.inflation = entry.h.0;
            evicted = Some(victim.2);
        }
        self.reinsert(k, 1, size);
        evicted
    }

    /// Access frequency of a cached key.
    pub fn frequency(&self, k: &K) -> Option<u64> {
        self.map.get(k).map(|e| e.freq)
    }
}

impl<K: Copy + Eq + Hash + Ord> ReplacementCache<K> for GdsfCache<K> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    fn touch(&mut self, k: K) -> bool {
        if let Some(e) = self.map.remove(&k) {
            self.order.remove(&(e.h, e.seq, k));
            self.reinsert(k, e.freq + 1, e.size);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: K) -> Option<K> {
        self.insert_sized(k, 1.0)
    }

    fn remove(&mut self, k: &K) -> bool {
        if let Some(e) = self.map.remove(k) {
            self.order.remove(&(e.h, e.seq, *k));
            true
        } else {
            false
        }
    }

    fn keys(&self) -> Vec<K> {
        self.map.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(GdsfCache::new(3));
        conformance::reinsert_does_not_evict(GdsfCache::new(3));
        conformance::remove_frees_space(GdsfCache::new(3));
        conformance::touch_only_hits_present(GdsfCache::new(3));
        conformance::keys_are_consistent(GdsfCache::new(3));
    }

    #[test]
    fn large_items_evicted_first() {
        let mut c = GdsfCache::new(3);
        c.insert_sized(1, 100.0); // H = 0.01
        c.insert_sized(2, 1.0); // H = 1
        c.insert_sized(3, 10.0); // H = 0.1
        assert_eq!(c.insert_sized(4, 1.0), Some(1));
        assert_eq!(c.insert_sized(5, 1.0), Some(3));
    }

    #[test]
    fn frequency_protects_large_items() {
        let mut c = GdsfCache::new(2);
        c.insert_sized(1, 10.0); // H = 0.1
        for _ in 0..20 {
            c.touch(1); // freq 21 → H = 2.1
        }
        c.insert_sized(2, 1.0); // H = 1

        // Victim must be 2 (H = 1 < 2.1) even though 1 is 10x larger.
        assert_eq!(c.insert_sized(3, 1.0), Some(2));
        assert!(c.contains(&1));
    }

    #[test]
    fn inflation_ages_old_entries() {
        let mut c = GdsfCache::new(2);
        c.insert_sized(1, 1.0); // H = 1
        c.insert_sized(2, 2.0); // H = 0.5
        assert_eq!(c.insert_sized(3, 2.0), Some(2)); // L becomes 0.5; 3 has H = 1.0

        // A new small item now enters with H = L + 1 = 1.5 > 1: evicts the
        // old H = 1 entries despite equal size/frequency — aging at work.
        assert!(c.inflation() > 0.0);
        let evicted = c.insert_sized(4, 1.0).unwrap();
        assert!(evicted == 1 || evicted == 3);
        assert!(c.contains(&4));
    }

    #[test]
    fn byte_hit_ratio_beats_lru_on_heavy_tail() {
        // With Zipf popularity and heavy-tailed sizes, GDSF should match or
        // beat LRU on object hit ratio (it keeps many small popular items).
        use crate::lru::LruCache;
        use simcore::dist::{BoundedPareto, Sample, Zipf};
        use simcore::rng::Rng;
        let mut rng = Rng::new(9);
        let zipf = Zipf::new(2000, 0.9);
        let size_dist = BoundedPareto::new(1.5, 0.3, 60.0);
        let sizes: Vec<f64> = (0..2000).map(|_| size_dist.sample(&mut rng)).collect();
        let mut gdsf = GdsfCache::new(64);
        let mut lru = LruCache::new(64);
        let (mut hits_g, mut hits_l) = (0u32, 0u32);
        let n = 60_000;
        for _ in 0..n {
            let k = zipf.sample_rank(&mut rng) as u32;
            if gdsf.touch(k) {
                hits_g += 1;
            } else {
                gdsf.insert_sized(k, sizes[k as usize]);
            }
            if lru.touch(k) {
                hits_l += 1;
            } else {
                lru.insert(k);
            }
        }
        let hg = hits_g as f64 / n as f64;
        let hl = hits_l as f64 / n as f64;
        assert!(hg > hl - 0.01, "GDSF {hg} vs LRU {hl}");
    }
}
