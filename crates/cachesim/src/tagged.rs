//! Tagged/untagged cache instrumentation — the paper's §4 algorithm.
//!
//! Wraps any [`ReplacementCache`] and maintains, per entry, the tag state
//! the paper defines, plus the `naccess`/`nhit` counters:
//!
//! * **prefetch insert** → entry enters *untagged* (not a user access);
//! * **access to a tagged entry** → `naccess += 1; nhit += 1`;
//! * **access to an untagged entry** → `naccess += 1`, entry becomes
//!   *tagged*;
//! * **miss** → `naccess += 1`, fetched entry admitted *tagged*.
//!
//! `ĥ′ = nhit/naccess` estimates the hit ratio the cache would achieve if
//! prefetching were disabled (model A assumption); the model-B correction
//! multiplies by `n̄(C)/(n̄(C)−n̄(F))`.
//!
//! The wrapper also counts *real* hits, so one pass over a trace yields
//! both `h` (with prefetching) and `ĥ′` (the counterfactual).

use crate::{ByteCapacity, ReplacementCache};
use core::hash::Hash;
use std::collections::HashMap;

/// Paper §4 tag state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tag {
    /// Demand-fetched, or accessed since insertion.
    Tagged,
    /// Prefetched and never accessed.
    Untagged,
}

/// Classification of a user access through the tagged cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Hit on a tagged entry (also a counterfactual hit).
    HitTagged,
    /// Hit on an untagged (prefetched) entry — a hit that prefetching
    /// *created*.
    HitUntagged,
    /// Miss; the item was fetched on demand and admitted tagged.
    Miss,
}

impl AccessKind {
    /// Was this a real cache hit?
    pub fn is_hit(&self) -> bool {
        !matches!(self, AccessKind::Miss)
    }
}

/// Instrumented cache implementing the §4 estimator.
///
/// ```
/// use cachesim::{AccessKind, LruCache, TaggedCache};
///
/// let mut cache = TaggedCache::new(LruCache::new(8));
/// cache.prefetch_insert("page2");            // enters untagged
/// let (kind, _) = cache.access("page2");     // prefetching created this hit…
/// assert_eq!(kind, AccessKind::HitUntagged); // …so it is NOT a counterfactual hit
/// let (kind, _) = cache.access("page2");     // but a re-access would have hit anyway
/// assert_eq!(kind, AccessKind::HitTagged);
/// assert_eq!(cache.estimate_h_prime(), Some(0.5)); // ĥ′ = 1 hit / 2 accesses
/// assert_eq!(cache.hit_ratio(), Some(1.0));        // real h = 2 / 2
/// ```
pub struct TaggedCache<K, C> {
    inner: C,
    tags: HashMap<K, Tag>,
    n_access: u64,
    n_hit: u64,
    real_hits: u64,
    prefetch_inserts: u64,
    evictions_of_untagged: u64,
    evictions_of_tagged: u64,
}

impl<K: Copy + Eq + Hash, C: ReplacementCache<K>> TaggedCache<K, C> {
    pub fn new(inner: C) -> Self {
        TaggedCache {
            inner,
            tags: HashMap::new(),
            n_access: 0,
            n_hit: 0,
            real_hits: 0,
            prefetch_inserts: 0,
            evictions_of_untagged: 0,
            evictions_of_tagged: 0,
        }
    }

    fn note_eviction(&mut self, evicted: Option<K>) -> Option<K> {
        if let Some(v) = evicted {
            match self.tags.remove(&v) {
                Some(Tag::Untagged) => self.evictions_of_untagged += 1,
                Some(Tag::Tagged) => self.evictions_of_tagged += 1,
                None => {}
            }
        }
        evicted
    }

    fn note_evictions(&mut self, evicted: Vec<K>) -> Vec<K> {
        for v in &evicted {
            self.note_eviction(Some(*v));
        }
        evicted
    }

    /// A user access to `k`. Returns its classification; on miss, the item
    /// is admitted (tagged) and the evicted key, if any, is in `.1`.
    pub fn access(&mut self, k: K) -> (AccessKind, Option<K>) {
        match self.probe(k) {
            AccessKind::Miss => {
                let evicted = self.admit_after_fetch(k);
                (AccessKind::Miss, evicted)
            }
            kind => (kind, None),
        }
    }

    /// A user access that does **not** admit on miss — for simulators where
    /// the fetched item only arrives after a network delay (admit it later
    /// with [`TaggedCache::admit_after_fetch`]). Counters are updated
    /// exactly as in [`TaggedCache::access`].
    pub fn probe(&mut self, k: K) -> AccessKind {
        self.n_access += 1;
        if self.inner.touch(k) {
            self.real_hits += 1;
            let tag = self.tags.get(&k).copied().unwrap_or(Tag::Tagged);
            let kind = match tag {
                Tag::Tagged => {
                    self.n_hit += 1;
                    AccessKind::HitTagged
                }
                Tag::Untagged => AccessKind::HitUntagged,
            };
            self.tags.insert(k, Tag::Tagged);
            kind
        } else {
            AccessKind::Miss
        }
    }

    /// Admits a demand-fetched item (tag: tagged) without counting a user
    /// access — the access was already counted by the probe that missed.
    /// Returns the evicted key, if any.
    pub fn admit_after_fetch(&mut self, k: K) -> Option<K> {
        if self.inner.contains(&k) {
            // Concurrent fetch already admitted it; just ensure the tag.
            self.tags.insert(k, Tag::Tagged);
            return None;
        }
        let evicted = self.inner.insert(k);
        let evicted = self.note_eviction(evicted);
        self.tags.insert(k, Tag::Tagged);
        evicted
    }

    /// A prefetch insertion of `k`. Not a user access. Returns the evicted
    /// key, if any. Prefetching an already-cached item is a no-op (its tag
    /// is preserved).
    pub fn prefetch_insert(&mut self, k: K) -> Option<K> {
        self.prefetch_inserts += 1;
        if self.inner.contains(&k) {
            return None;
        }
        let evicted = self.inner.insert(k);
        let evicted = self.note_eviction(evicted);
        self.tags.insert(k, Tag::Untagged);
        evicted
    }

    /// Tag of a cached entry.
    pub fn tag(&self, k: &K) -> Option<Tag> {
        if self.inner.contains(k) {
            self.tags.get(k).copied()
        } else {
            None
        }
    }

    /// Total user accesses (`naccess`).
    pub fn accesses(&self) -> u64 {
        self.n_access
    }

    /// Counterfactual hits (`nhit`).
    pub fn counterfactual_hits(&self) -> u64 {
        self.n_hit
    }

    /// Real hits with prefetching active.
    pub fn real_hits(&self) -> u64 {
        self.real_hits
    }

    /// Real hit ratio `h` with prefetching.
    pub fn hit_ratio(&self) -> Option<f64> {
        (self.n_access > 0).then(|| self.real_hits as f64 / self.n_access as f64)
    }

    /// `ĥ′` under the model-A assumption.
    pub fn estimate_h_prime(&self) -> Option<f64> {
        (self.n_access > 0).then(|| self.n_hit as f64 / self.n_access as f64)
    }

    /// `ĥ′` with the model-B correction `n̄(C)/(n̄(C)−n̄(F))`.
    pub fn estimate_h_prime_model_b(&self, n_c: f64, n_f: f64) -> Option<f64> {
        assert!(n_c > 0.0 && (0.0..n_c).contains(&n_f));
        self.estimate_h_prime().map(|e| (e * n_c / (n_c - n_f)).min(1.0))
    }

    /// Number of prefetch insertions attempted.
    pub fn prefetch_inserts(&self) -> u64 {
        self.prefetch_inserts
    }

    /// Evictions broken down by the victim's tag: `(tagged, untagged)`.
    pub fn evictions_by_tag(&self) -> (u64, u64) {
        (self.evictions_of_tagged, self.evictions_of_untagged)
    }

    /// Read-only access to the wrapped cache.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped cache, for policy-metadata updates
    /// (e.g. [`crate::ValueAwareCache::set_value`]). Inserting or removing
    /// entries through this handle would desynchronise the §4 tag state —
    /// use the tagged admission methods for that.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// Snapshot of the cached keys (order follows the inner policy) — the
    /// contents a cooperative digest summarises.
    pub fn keys(&self) -> Vec<K> {
        self.inner.keys()
    }
}

/// Byte-charged admissions, available when the wrapped policy carries a
/// byte budget. Each mirrors its item-counted twin exactly — same tag
/// transitions, same "already present" short-circuits — but charges an
/// explicit size and can evict several victims, so the §4 counters stay
/// correct under byte-driven eviction.
impl<K: Copy + Eq + Hash, C: ByteCapacity<K>> TaggedCache<K, C> {
    /// Byte-charged [`TaggedCache::admit_after_fetch`]: admits a
    /// demand-fetched item (tag: tagged) charging `bytes`. Returns whether
    /// the entry was *newly* admitted (false when a concurrent fetch
    /// already admitted it, or the entry alone exceeds the byte budget)
    /// and the evicted keys.
    pub fn charge_after_fetch(&mut self, k: K, bytes: f64) -> (bool, Vec<K>) {
        if self.inner.contains(&k) {
            // Concurrent fetch already admitted it; just ensure the tag.
            self.tags.insert(k, Tag::Tagged);
            return (false, Vec::new());
        }
        let outcome = self.inner.charge(k, bytes);
        let evicted = self.note_evictions(outcome.evicted);
        if outcome.admitted {
            self.tags.insert(k, Tag::Tagged);
        }
        (outcome.admitted, evicted)
    }

    /// Byte-charged [`TaggedCache::prefetch_insert`]: a prefetch insertion
    /// of `k` (tag: untagged, not a user access) charging `bytes`.
    /// Prefetching an already-cached item is a no-op (its tag is
    /// preserved). Returns whether the entry was newly admitted, and the
    /// evicted keys.
    pub fn charge_prefetch(&mut self, k: K, bytes: f64) -> (bool, Vec<K>) {
        self.prefetch_inserts += 1;
        if self.inner.contains(&k) {
            return (false, Vec::new());
        }
        let outcome = self.inner.charge(k, bytes);
        let evicted = self.note_evictions(outcome.evicted);
        if outcome.admitted {
            self.tags.insert(k, Tag::Untagged);
        }
        (outcome.admitted, evicted)
    }

    /// Occupancy of the wrapped cache in bytes.
    pub fn used_bytes(&self) -> f64 {
        self.inner.used_bytes()
    }

    /// Byte budget of the wrapped cache (`f64::INFINITY` when the cache
    /// only counts entries).
    pub fn byte_capacity(&self) -> f64 {
        self.inner.byte_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;

    fn cache(cap: usize) -> TaggedCache<u32, LruCache<u32>> {
        TaggedCache::new(LruCache::new(cap))
    }

    #[test]
    fn miss_admits_tagged() {
        let mut c = cache(4);
        let (kind, evicted) = c.access(1);
        assert_eq!(kind, AccessKind::Miss);
        assert!(evicted.is_none());
        assert_eq!(c.tag(&1), Some(Tag::Tagged));
        assert_eq!(c.accesses(), 1);
        assert_eq!(c.counterfactual_hits(), 0);
    }

    #[test]
    fn prefetch_admits_untagged_without_counting() {
        let mut c = cache(4);
        c.prefetch_insert(7);
        assert_eq!(c.tag(&7), Some(Tag::Untagged));
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.prefetch_inserts(), 1);
    }

    #[test]
    fn first_touch_of_prefetched_is_not_counterfactual_hit() {
        let mut c = cache(4);
        c.prefetch_insert(7);
        let (kind, _) = c.access(7);
        assert_eq!(kind, AccessKind::HitUntagged);
        assert_eq!(c.counterfactual_hits(), 0);
        assert_eq!(c.real_hits(), 1);
        assert_eq!(c.tag(&7), Some(Tag::Tagged));
        // Second touch now counts for both.
        let (kind, _) = c.access(7);
        assert_eq!(kind, AccessKind::HitTagged);
        assert_eq!(c.counterfactual_hits(), 1);
        assert_eq!(c.real_hits(), 2);
    }

    #[test]
    fn estimator_recovers_no_prefetch_hit_ratio() {
        // Without prefetching, ĥ′ must equal the real hit ratio exactly.
        let mut c = cache(8);
        let stream = [1u32, 2, 3, 1, 2, 3, 4, 1, 9, 9];
        for &k in &stream {
            c.access(k);
        }
        assert_eq!(c.estimate_h_prime(), c.hit_ratio());
    }

    #[test]
    fn prefetching_inflates_h_but_not_h_prime() {
        // Stream where every item is prefetched just before access:
        // real hit ratio ~1, counterfactual ~0 (no natural reuse).
        let mut c = cache(8);
        for k in 0..100u32 {
            c.prefetch_insert(k);
            let (kind, _) = c.access(k);
            assert_eq!(kind, AccessKind::HitUntagged);
        }
        assert!((c.hit_ratio().unwrap() - 1.0).abs() < 1e-12);
        assert!(c.estimate_h_prime().unwrap() < 1e-12);
    }

    #[test]
    fn prefetch_of_cached_item_preserves_tag() {
        let mut c = cache(4);
        c.access(5); // tagged
        c.prefetch_insert(5);
        assert_eq!(c.tag(&5), Some(Tag::Tagged));
        let (kind, _) = c.access(5);
        assert_eq!(kind, AccessKind::HitTagged);
    }

    #[test]
    fn eviction_cleans_tag_state() {
        let mut c = cache(2);
        c.prefetch_insert(1);
        c.prefetch_insert(2);
        let evicted = c.prefetch_insert(3).unwrap();
        assert_eq!(c.tag(&evicted), None);
        let (tagged, untagged) = c.evictions_by_tag();
        assert_eq!((tagged, untagged), (0, 1));
        assert_eq!(evicted, 1);
    }

    #[test]
    fn keys_snapshot_matches_contents() {
        let mut c = cache(4);
        c.access(1);
        c.prefetch_insert(2);
        let mut keys = c.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn model_b_correction() {
        let mut c = cache(8);
        for &k in &[1u32, 2, 1, 2] {
            c.access(k);
        }
        // naccess=4, nhit=2 → ĥ′_A = 0.5; with n̄(C)=10, n̄(F)=2 → 0.625.
        assert!((c.estimate_h_prime().unwrap() - 0.5).abs() < 1e-12);
        assert!((c.estimate_h_prime_model_b(10.0, 2.0).unwrap() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_prefetch_core_estimator() {
        // The cache-level implementation and the counter state machine in
        // prefetch-core must produce identical estimates on one event
        // sequence. (Cross-crate consistency is checked again in the
        // integration suite; here we replicate the state machine inline.)
        use simcore::rng::Rng;
        let mut rng = Rng::new(5);
        let mut c = cache(16);
        // Inline replica of prefetch_core::HPrimeEstimator counting rules.
        let (mut naccess, mut nhit) = (0u64, 0u64);
        for _ in 0..5000 {
            let k = rng.below(40) as u32;
            if rng.chance(0.3) {
                c.prefetch_insert(k);
            } else {
                let (kind, _) = c.access(k);
                naccess += 1;
                if kind == AccessKind::HitTagged {
                    nhit += 1;
                }
            }
        }
        assert_eq!(c.accesses(), naccess);
        assert_eq!(c.counterfactual_hits(), nhit);
    }
}
