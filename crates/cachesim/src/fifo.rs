//! First-in-first-out cache: eviction order is admission order; touches
//! don't refresh. The cheapest policy and the weakest — used as a baseline
//! in cache-policy comparisons.

use crate::ReplacementCache;
use core::hash::Hash;
use std::collections::{HashSet, VecDeque};

/// FIFO cache.
pub struct FifoCache<K> {
    set: HashSet<K>,
    queue: VecDeque<K>,
    capacity: usize,
}

impl<K: Copy + Eq + Hash> FifoCache<K> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        FifoCache {
            set: HashSet::with_capacity(capacity + 1),
            queue: VecDeque::with_capacity(capacity + 1),
            capacity,
        }
    }
}

impl<K: Copy + Eq + Hash> ReplacementCache<K> for FifoCache<K> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.set.contains(k)
    }

    fn touch(&mut self, k: K) -> bool {
        self.set.contains(&k)
    }

    fn insert(&mut self, k: K) -> Option<K> {
        if self.set.contains(&k) {
            return None;
        }
        let mut evicted = None;
        if self.set.len() == self.capacity {
            // Skip queue entries already removed via `remove`.
            while let Some(victim) = self.queue.pop_front() {
                if self.set.remove(&victim) {
                    evicted = Some(victim);
                    break;
                }
            }
        }
        self.set.insert(k);
        self.queue.push_back(k);
        // Bound ghost growth from lazy removals.
        if self.queue.len() > 2 * self.capacity {
            let set = &self.set;
            self.queue.retain(|key| set.contains(key));
        }
        evicted
    }

    fn remove(&mut self, k: &K) -> bool {
        // Lazy removal: the queue entry is skipped at eviction time.
        self.set.remove(k)
    }

    fn keys(&self) -> Vec<K> {
        self.set.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(FifoCache::new(3));
        conformance::reinsert_does_not_evict(FifoCache::new(3));
        conformance::remove_frees_space(FifoCache::new(3));
        conformance::touch_only_hits_present(FifoCache::new(3));
        conformance::keys_are_consistent(FifoCache::new(3));
    }

    #[test]
    fn evicts_in_admission_order_ignoring_touches() {
        let mut c = FifoCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1); // FIFO ignores recency
        assert_eq!(c.insert(4), Some(1));
        assert_eq!(c.insert(5), Some(2));
    }

    #[test]
    fn lazy_removal_skips_ghosts() {
        let mut c = FifoCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.remove(&1); // ghost in queue
        c.insert(4); // fills the free slot, no eviction

        // Next eviction must skip ghost 1 and take 2.
        assert_eq!(c.insert(5), Some(2));
    }
}
