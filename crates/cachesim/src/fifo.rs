//! First-in-first-out cache: eviction order is admission order; touches
//! don't refresh. The cheapest policy and the weakest — used as a baseline
//! in cache-policy comparisons.

use crate::{ByteCapacity, ChargeOutcome, ReplacementCache};
use core::hash::Hash;
use std::collections::{HashMap, HashSet, VecDeque};

/// FIFO cache.
pub struct FifoCache<K> {
    set: HashSet<K>,
    queue: VecDeque<K>,
    capacity: usize,
    byte_capacity: f64,
    sizes: HashMap<K, f64>,
    used_bytes: f64,
}

impl<K: Copy + Eq + Hash> FifoCache<K> {
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_capacity(capacity, f64::INFINITY)
    }

    /// A FIFO cache bounded by `capacity` entries **and** `byte_capacity`
    /// bytes: admissions via [`ByteCapacity::charge`] evict in admission
    /// order until both budgets hold.
    pub fn with_byte_capacity(capacity: usize, byte_capacity: f64) -> Self {
        assert!(capacity > 0);
        assert!(byte_capacity > 0.0, "byte capacity must be positive");
        FifoCache {
            set: HashSet::with_capacity(capacity + 1),
            queue: VecDeque::with_capacity(capacity + 1),
            capacity,
            byte_capacity,
            sizes: HashMap::new(),
            used_bytes: 0.0,
        }
    }

    /// Evicts the oldest live entry (skipping lazily removed ghosts).
    fn evict_oldest(&mut self) -> Option<K> {
        while let Some(victim) = self.queue.pop_front() {
            if self.set.remove(&victim) {
                self.used_bytes -= self.sizes.remove(&victim).unwrap_or(0.0);
                if self.set.is_empty() {
                    // Kill accumulated f64 residue: an empty cache charges
                    // exactly zero bytes.
                    self.used_bytes = 0.0;
                }
                return Some(victim);
            }
        }
        None
    }

    fn note_admit(&mut self, k: K, bytes: f64) {
        self.set.insert(k);
        self.queue.push_back(k);
        if bytes > 0.0 {
            self.sizes.insert(k, bytes);
        }
        self.used_bytes += bytes;
        // Bound ghost growth from lazy removals.
        if self.queue.len() > 2 * self.capacity {
            let set = &self.set;
            self.queue.retain(|key| set.contains(key));
        }
    }
}

impl<K: Copy + Eq + Hash> ReplacementCache<K> for FifoCache<K> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.set.contains(k)
    }

    fn touch(&mut self, k: K) -> bool {
        self.set.contains(&k)
    }

    fn insert(&mut self, k: K) -> Option<K> {
        if self.set.contains(&k) {
            return None;
        }
        let mut evicted = None;
        if self.set.len() == self.capacity {
            evicted = self.evict_oldest();
        }
        self.note_admit(k, 0.0);
        evicted
    }

    fn remove(&mut self, k: &K) -> bool {
        // Lazy removal: the queue entry is skipped at eviction time.
        if self.set.remove(k) {
            self.used_bytes -= self.sizes.remove(k).unwrap_or(0.0);
            if self.set.is_empty() {
                self.used_bytes = 0.0; // see evict_oldest on residue
            }
            true
        } else {
            false
        }
    }

    fn keys(&self) -> Vec<K> {
        self.set.iter().copied().collect()
    }
}

impl<K: Copy + Eq + Hash> ByteCapacity<K> for FifoCache<K> {
    fn byte_capacity(&self) -> f64 {
        self.byte_capacity
    }

    fn used_bytes(&self) -> f64 {
        self.used_bytes
    }

    fn entry_bytes(&self, k: &K) -> Option<f64> {
        self.set.contains(k).then(|| self.sizes.get(k).copied().unwrap_or(0.0))
    }

    fn charge(&mut self, k: K, bytes: f64) -> ChargeOutcome<K> {
        assert!(bytes >= 0.0 && bytes.is_finite(), "bad entry size {bytes}");
        if bytes > self.byte_capacity {
            let mut evicted = Vec::new();
            if self.remove(&k) {
                evicted.push(k);
            }
            return ChargeOutcome { admitted: false, evicted };
        }
        let mut evicted = Vec::new();
        if self.set.contains(&k) {
            // FIFO keeps admission order: re-charging swaps the size only.
            self.used_bytes += bytes - self.sizes.get(&k).copied().unwrap_or(0.0);
            if bytes > 0.0 {
                self.sizes.insert(k, bytes);
            } else {
                self.sizes.remove(&k);
            }
            // Evict the oldest live entries other than `k` (which fits
            // alone) without disturbing `k`'s admission position. The
            // linear victim scan only runs on this exotic re-charge path.
            while self.used_bytes > self.byte_capacity {
                let victim = self.queue.iter().copied().find(|c| self.set.contains(c) && *c != k);
                match victim {
                    Some(v) => {
                        self.remove(&v);
                        evicted.push(v);
                    }
                    None => break,
                }
            }
            return ChargeOutcome { admitted: true, evicted };
        }
        while self.set.len() == self.capacity || self.used_bytes + bytes > self.byte_capacity {
            match self.evict_oldest() {
                Some(v) => evicted.push(v),
                None => break,
            }
        }
        self.note_admit(k, bytes);
        ChargeOutcome { admitted: true, evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(FifoCache::new(3));
        conformance::reinsert_does_not_evict(FifoCache::new(3));
        conformance::remove_frees_space(FifoCache::new(3));
        conformance::touch_only_hits_present(FifoCache::new(3));
        conformance::keys_are_consistent(FifoCache::new(3));
    }

    #[test]
    fn evicts_in_admission_order_ignoring_touches() {
        let mut c = FifoCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1); // FIFO ignores recency
        assert_eq!(c.insert(4), Some(1));
        assert_eq!(c.insert(5), Some(2));
    }

    #[test]
    fn lazy_removal_skips_ghosts() {
        let mut c = FifoCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.remove(&1); // ghost in queue
        c.insert(4); // fills the free slot, no eviction

        // Next eviction must skip ghost 1 and take 2.
        assert_eq!(c.insert(5), Some(2));
    }
}
