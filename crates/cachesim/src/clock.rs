//! CLOCK (second-chance) cache: an LRU approximation with O(1) touches.
//!
//! Entries sit in a circular buffer with a reference bit. The hand sweeps
//! on eviction: referenced entries get a second chance (bit cleared),
//! unreferenced ones are evicted. This is the policy most real page caches
//! used in the paper's era.

use crate::ReplacementCache;
use core::hash::Hash;
use std::collections::HashMap;

struct Slot<K> {
    key: Option<K>,
    referenced: bool,
}

/// CLOCK cache.
pub struct ClockCache<K> {
    slots: Vec<Slot<K>>,
    map: HashMap<K, usize>,
    hand: usize,
    len: usize,
}

impl<K: Copy + Eq + Hash> ClockCache<K> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ClockCache {
            slots: (0..capacity).map(|_| Slot { key: None, referenced: false }).collect(),
            map: HashMap::with_capacity(capacity + 1),
            hand: 0,
            len: 0,
        }
    }

    fn advance(&mut self) {
        self.hand = (self.hand + 1) % self.slots.len();
    }

    /// Sweeps the hand to a victim slot index (clearing reference bits on
    /// the way) and returns it. Caller guarantees the cache is full.
    fn find_victim(&mut self) -> usize {
        loop {
            let idx = self.hand;
            let slot = &mut self.slots[idx];
            debug_assert!(slot.key.is_some(), "full cache has no empty slots");
            if slot.referenced {
                slot.referenced = false;
                self.advance();
            } else {
                return idx;
            }
        }
    }
}

impl<K: Copy + Eq + Hash> ReplacementCache<K> for ClockCache<K> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    fn touch(&mut self, k: K) -> bool {
        if let Some(&idx) = self.map.get(&k) {
            self.slots[idx].referenced = true;
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: K) -> Option<K> {
        if self.touch(k) {
            return None;
        }
        let mut evicted = None;
        let idx = if self.len < self.slots.len() {
            // Find any empty slot (scan from hand; cheap because sparse
            // only during warm-up).
            let mut idx = self.hand;
            while self.slots[idx].key.is_some() {
                idx = (idx + 1) % self.slots.len();
            }
            idx
        } else {
            let idx = self.find_victim();
            let victim = self.slots[idx].key.expect("victim slot occupied");
            self.map.remove(&victim);
            self.len -= 1;
            evicted = Some(victim);
            self.hand = (idx + 1) % self.slots.len();
            idx
        };
        self.slots[idx] = Slot { key: Some(k), referenced: false };
        self.map.insert(k, idx);
        self.len += 1;
        evicted
    }

    fn remove(&mut self, k: &K) -> bool {
        if let Some(idx) = self.map.remove(k) {
            self.slots[idx] = Slot { key: None, referenced: false };
            self.len -= 1;
            true
        } else {
            false
        }
    }

    fn keys(&self) -> Vec<K> {
        self.map.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(ClockCache::new(3));
        conformance::reinsert_does_not_evict(ClockCache::new(3));
        conformance::remove_frees_space(ClockCache::new(3));
        conformance::touch_only_hits_present(ClockCache::new(3));
        conformance::keys_are_consistent(ClockCache::new(3));
    }

    #[test]
    fn second_chance_protects_referenced() {
        let mut c = ClockCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1);
        // Hand at 0 (slot of 1): 1 is referenced → spared; 2 is the victim.
        assert_eq!(c.insert(4), Some(2));
        assert!(c.contains(&1));
    }

    #[test]
    fn unreferenced_evicted_in_clock_order() {
        let mut c = ClockCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        assert_eq!(c.insert(4), Some(1));
        assert_eq!(c.insert(5), Some(2));
        assert_eq!(c.insert(6), Some(3));
    }

    #[test]
    fn approximates_lru_hit_ratio() {
        // On a Zipf-ish stream, CLOCK should land within a few points of LRU.
        use crate::lru::LruCache;
        use simcore::dist::Zipf;
        use simcore::rng::Rng;
        let mut rng = Rng::new(11);
        let zipf = Zipf::new(200, 0.9);
        let mut clock = ClockCache::new(32);
        let mut lru = LruCache::new(32);
        let mut hits_clock = 0;
        let mut hits_lru = 0;
        let n = 30_000;
        for _ in 0..n {
            let k = zipf.sample_rank(&mut rng) as u32;
            if clock.touch(k) {
                hits_clock += 1;
            } else {
                clock.insert(k);
            }
            if lru.touch(k) {
                hits_lru += 1;
            } else {
                lru.insert(k);
            }
        }
        let hc = hits_clock as f64 / n as f64;
        let hl = hits_lru as f64 / n as f64;
        assert!((hc - hl).abs() < 0.05, "clock {hc} vs lru {hl}");
    }
}
