//! Least-frequently-used cache, O(log n) per operation.
//!
//! Entries are ordered by `(frequency, last-access sequence)` in a
//! `BTreeSet`; eviction takes the least-frequent entry, breaking ties
//! toward the least recently touched (classic LFU-with-aging tie-break).

use crate::ReplacementCache;
use core::hash::Hash;
use std::collections::{BTreeSet, HashMap};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Meta {
    freq: u64,
    seq: u64,
}

/// LFU cache with LRU tie-breaking.
pub struct LfuCache<K> {
    map: HashMap<K, Meta>,
    order: BTreeSet<(u64, u64, K)>,
    capacity: usize,
    next_seq: u64,
}

impl<K: Copy + Eq + Hash + Ord> LfuCache<K> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LfuCache {
            map: HashMap::with_capacity(capacity + 1),
            order: BTreeSet::new(),
            capacity,
            next_seq: 0,
        }
    }

    fn bump(&mut self, k: K) {
        let meta = self.map.get_mut(&k).expect("bump of missing key");
        let old = (meta.freq, meta.seq, k);
        meta.freq += 1;
        meta.seq = self.next_seq;
        self.next_seq += 1;
        let new = (meta.freq, meta.seq, k);
        self.order.remove(&old);
        self.order.insert(new);
    }

    /// Access frequency of a cached key.
    pub fn frequency(&self, k: &K) -> Option<u64> {
        self.map.get(k).map(|m| m.freq)
    }
}

impl<K: Copy + Eq + Hash + Ord> ReplacementCache<K> for LfuCache<K> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    fn touch(&mut self, k: K) -> bool {
        if self.map.contains_key(&k) {
            self.bump(k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: K) -> Option<K> {
        if self.touch(k) {
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim = *self.order.iter().next().expect("full cache has entries");
            self.order.remove(&victim);
            self.map.remove(&victim.2);
            evicted = Some(victim.2);
        }
        let meta = Meta { freq: 1, seq: self.next_seq };
        self.next_seq += 1;
        self.map.insert(k, meta);
        self.order.insert((meta.freq, meta.seq, k));
        evicted
    }

    fn remove(&mut self, k: &K) -> bool {
        if let Some(meta) = self.map.remove(k) {
            self.order.remove(&(meta.freq, meta.seq, *k));
            true
        } else {
            false
        }
    }

    fn keys(&self) -> Vec<K> {
        self.map.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(LfuCache::new(3));
        conformance::reinsert_does_not_evict(LfuCache::new(3));
        conformance::remove_frees_space(LfuCache::new(3));
        conformance::touch_only_hits_present(LfuCache::new(3));
        conformance::keys_are_consistent(LfuCache::new(3));
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1);
        c.touch(1);
        c.touch(2);
        // Frequencies: 1→3, 2→2, 3→1. Victim is 3.
        assert_eq!(c.insert(4), Some(3));
        assert_eq!(c.frequency(&1), Some(3));
    }

    #[test]
    fn tie_break_is_oldest_touch() {
        let mut c = LfuCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3); // all freq 1; 1 is oldest
        assert_eq!(c.insert(4), Some(1));
    }

    #[test]
    fn frequency_counts_inserts_and_touches() {
        let mut c = LfuCache::new(2);
        c.insert(5);
        assert_eq!(c.frequency(&5), Some(1));
        c.insert(5); // counts as a touch
        c.touch(5);
        assert_eq!(c.frequency(&5), Some(3));
    }

    #[test]
    fn scan_resistance_vs_lru() {
        // A hot item survives a one-pass scan under LFU (it would be evicted
        // under LRU with the same capacity).
        let mut c = LfuCache::new(4);
        c.insert(100);
        for _ in 0..10 {
            c.touch(100);
        }
        for k in 0..20 {
            c.insert(k);
        }
        assert!(c.contains(&100), "hot item evicted by scan");
    }
}
