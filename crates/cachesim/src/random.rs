//! Random-replacement cache: evicts a uniformly random entry.
//!
//! This is the *simulated realisation of interaction model B*: under random
//! eviction, every cache entry — each carrying on average `h′/n̄(C)` of the
//! hit ratio — is equally likely to be destroyed by a prefetch insertion,
//! which is exactly the paper's "evict average-value items" assumption.

use crate::ReplacementCache;
use core::hash::Hash;
use simcore::rng::Rng;
use std::collections::HashMap;

/// Random-replacement cache with an owned, seeded PRNG (deterministic).
pub struct RandomCache<K> {
    map: HashMap<K, usize>,
    slots: Vec<K>,
    capacity: usize,
    rng: Rng,
}

impl<K: Copy + Eq + Hash> RandomCache<K> {
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0);
        RandomCache {
            map: HashMap::with_capacity(capacity + 1),
            slots: Vec::with_capacity(capacity),
            capacity,
            rng: Rng::new(seed),
        }
    }

    fn remove_at(&mut self, idx: usize) -> K {
        let victim = self.slots.swap_remove(idx);
        self.map.remove(&victim);
        if idx < self.slots.len() {
            // The swapped-in key changed position.
            let moved = self.slots[idx];
            self.map.insert(moved, idx);
        }
        victim
    }
}

impl<K: Copy + Eq + Hash> ReplacementCache<K> for RandomCache<K> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    fn touch(&mut self, k: K) -> bool {
        self.map.contains_key(&k)
    }

    fn insert(&mut self, k: K) -> Option<K> {
        if self.map.contains_key(&k) {
            return None;
        }
        let mut evicted = None;
        if self.slots.len() == self.capacity {
            let idx = self.rng.index(self.slots.len());
            evicted = Some(self.remove_at(idx));
        }
        self.map.insert(k, self.slots.len());
        self.slots.push(k);
        evicted
    }

    fn remove(&mut self, k: &K) -> bool {
        if let Some(&idx) = self.map.get(k) {
            self.remove_at(idx);
            true
        } else {
            false
        }
    }

    fn keys(&self) -> Vec<K> {
        self.slots.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(RandomCache::new(3, 1));
        conformance::reinsert_does_not_evict(RandomCache::new(3, 2));
        conformance::remove_frees_space(RandomCache::new(3, 3));
        conformance::touch_only_hits_present(RandomCache::new(3, 4));
        conformance::keys_are_consistent(RandomCache::new(3, 5));
    }

    #[test]
    fn eviction_is_approximately_uniform() {
        // Fill with 10 keys, insert a new key, record the victim; repeat.
        let mut victim_counts = std::collections::HashMap::new();
        for trial in 0..20_000u64 {
            let mut c = RandomCache::new(10, trial);
            for k in 0..10u32 {
                c.insert(k);
            }
            let v = c.insert(999).unwrap();
            *victim_counts.entry(v).or_insert(0usize) += 1;
        }
        for k in 0..10u32 {
            let share = victim_counts[&k] as f64 / 20_000.0;
            assert!((share - 0.1).abs() < 0.02, "key {k} share {share}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = RandomCache::new(4, seed);
            let mut evictions = Vec::new();
            for k in 0..50u32 {
                if let Some(v) = c.insert(k) {
                    evictions.push(v);
                }
            }
            evictions
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn swap_remove_keeps_index_map_consistent() {
        let mut c = RandomCache::new(5, 9);
        for k in 0..5u32 {
            c.insert(k);
        }
        assert!(c.remove(&0));
        // All remaining keys still reachable.
        for k in 1..5u32 {
            assert!(c.contains(&k), "lost key {k}");
            assert!(c.remove(&k));
        }
        assert!(c.is_empty());
    }
}
