//! Least-recently-used cache in O(1) per operation.
//!
//! An intrusive doubly-linked list over a slab (`Vec` of nodes with
//! index links) tracks recency; a `HashMap` gives O(1) key → node lookup.
//! No unsafe code, no pointer juggling — indices are the links.

use crate::{ByteCapacity, ChargeOutcome, ReplacementCache};
use core::hash::Hash;
use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Node<K> {
    key: K,
    bytes: f64,
    prev: usize,
    next: usize,
}

/// O(1) LRU cache.
pub struct LruCache<K> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize, // MRU
    tail: usize, // LRU
    capacity: usize,
    byte_capacity: f64,
    used_bytes: f64,
}

impl<K: Copy + Eq + Hash> LruCache<K> {
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_capacity(capacity, f64::INFINITY)
    }

    /// An LRU cache bounded by `capacity` entries **and** `byte_capacity`
    /// bytes: admissions via [`ByteCapacity::charge`] evict from the LRU
    /// end until both budgets hold.
    pub fn with_byte_capacity(capacity: usize, byte_capacity: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(byte_capacity > 0.0, "byte capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity + 1),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            byte_capacity,
            used_bytes: 0.0,
        }
    }

    /// Unlinks and frees the LRU entry, returning its key.
    fn evict_lru(&mut self) -> K {
        let victim_idx = self.tail;
        debug_assert!(victim_idx != NIL, "evict_lru on an empty cache");
        let victim = self.nodes[victim_idx].key;
        self.used_bytes -= self.nodes[victim_idx].bytes;
        self.unlink(victim_idx);
        self.map.remove(&victim);
        self.free.push(victim_idx);
        if self.map.is_empty() {
            // Kill accumulated f64 residue (a + b - b ≠ a): an empty cache
            // must charge exactly zero bytes, or the eviction loops could
            // keep "evicting" from nothing.
            self.used_bytes = 0.0;
        }
        victim
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn alloc(&mut self, key: K, bytes: f64) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node { key, bytes, prev: NIL, next: NIL };
            idx
        } else {
            self.nodes.push(Node { key, bytes, prev: NIL, next: NIL });
            self.nodes.len() - 1
        }
    }

    /// The key that would be evicted next (the LRU entry).
    pub fn peek_lru(&self) -> Option<K> {
        (self.tail != NIL).then(|| self.nodes[self.tail].key)
    }

    /// Keys from most- to least-recently used.
    pub fn keys_mru_first(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            out.push(self.nodes[idx].key);
            idx = self.nodes[idx].next;
        }
        out
    }
}

impl<K: Copy + Eq + Hash> ReplacementCache<K> for LruCache<K> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    fn touch(&mut self, k: K) -> bool {
        if let Some(&idx) = self.map.get(&k) {
            self.move_to_front(idx);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: K) -> Option<K> {
        if self.touch(k) {
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            evicted = Some(self.evict_lru());
        }
        let idx = self.alloc(k, 0.0);
        self.push_front(idx);
        self.map.insert(k, idx);
        evicted
    }

    fn remove(&mut self, k: &K) -> bool {
        if let Some(idx) = self.map.remove(k) {
            self.used_bytes -= self.nodes[idx].bytes;
            self.unlink(idx);
            self.free.push(idx);
            if self.map.is_empty() {
                self.used_bytes = 0.0; // see evict_lru on residue
            }
            true
        } else {
            false
        }
    }

    fn keys(&self) -> Vec<K> {
        self.keys_mru_first()
    }
}

impl<K: Copy + Eq + Hash> ByteCapacity<K> for LruCache<K> {
    fn byte_capacity(&self) -> f64 {
        self.byte_capacity
    }

    fn used_bytes(&self) -> f64 {
        self.used_bytes
    }

    fn entry_bytes(&self, k: &K) -> Option<f64> {
        self.map.get(k).map(|&idx| self.nodes[idx].bytes)
    }

    fn charge(&mut self, k: K, bytes: f64) -> ChargeOutcome<K> {
        assert!(bytes >= 0.0 && bytes.is_finite(), "bad entry size {bytes}");
        if bytes > self.byte_capacity {
            // The entry alone busts the byte budget: never admit it (and
            // drop any previously cached, smaller copy).
            let mut evicted = Vec::new();
            if self.remove(&k) {
                evicted.push(k);
            }
            return ChargeOutcome { admitted: false, evicted };
        }
        if let Some(&idx) = self.map.get(&k) {
            // Re-charge in place: refresh recency, swap the size.
            self.used_bytes += bytes - self.nodes[idx].bytes;
            self.nodes[idx].bytes = bytes;
            self.move_to_front(idx);
            let mut evicted = Vec::new();
            // `k` fits alone (checked above), so stop once it is the only
            // entry left — the guard also keeps f64 residue in the ledger
            // from "evicting" `k` itself.
            while self.used_bytes > self.byte_capacity && self.map.len() > 1 {
                evicted.push(self.evict_lru());
            }
            return ChargeOutcome { admitted: true, evicted };
        }
        let mut evicted = Vec::new();
        // The emptiness guard mirrors the FIFO twin: ledger residue must
        // not drive eviction of nothing.
        while !self.map.is_empty()
            && (self.map.len() == self.capacity || self.used_bytes + bytes > self.byte_capacity)
        {
            evicted.push(self.evict_lru());
        }
        let idx = self.alloc(k, bytes);
        self.push_front(idx);
        self.map.insert(k, idx);
        self.used_bytes += bytes;
        ChargeOutcome { admitted: true, evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(LruCache::new(3));
        conformance::reinsert_does_not_evict(LruCache::new(3));
        conformance::remove_frees_space(LruCache::new(3));
        conformance::touch_only_hits_present(LruCache::new(3));
        conformance::keys_are_consistent(LruCache::new(3));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        // Touch 1: order (MRU→LRU) is 1,3,2 → inserting 4 evicts 2.
        assert!(c.touch(1));
        assert_eq!(c.insert(4), Some(2));
        assert_eq!(c.keys_mru_first(), vec![4, 1, 3]);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        c.insert(1); // refresh
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn peek_lru_matches_eviction() {
        let mut c = LruCache::new(3);
        for k in [10, 20, 30] {
            c.insert(k);
        }
        c.touch(10);
        let predicted = c.peek_lru().unwrap();
        let evicted = c.insert(40).unwrap();
        assert_eq!(predicted, evicted);
        assert_eq!(evicted, 20);
    }

    #[test]
    fn remove_tail_and_head() {
        let mut c = LruCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        assert!(c.remove(&3)); // head
        assert!(c.remove(&1)); // tail
        assert_eq!(c.keys_mru_first(), vec![2]);
        c.insert(4);
        c.insert(5);
        assert_eq!(c.keys_mru_first(), vec![5, 4, 2]);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), Some(1));
        assert_eq!(c.insert(3), Some(2));
        assert_eq!(c.len(), 1);
    }

    /// Model-based test: LRU against a naive reference implementation.
    #[test]
    fn matches_reference_model_under_random_workload() {
        use simcore::rng::Rng;
        struct RefLru {
            cap: usize,
            order: Vec<u32>, // MRU-first
        }
        impl RefLru {
            fn touch(&mut self, k: u32) -> bool {
                if let Some(pos) = self.order.iter().position(|&x| x == k) {
                    self.order.remove(pos);
                    self.order.insert(0, k);
                    true
                } else {
                    false
                }
            }
            fn insert(&mut self, k: u32) -> Option<u32> {
                if self.touch(k) {
                    return None;
                }
                let mut evicted = None;
                if self.order.len() == self.cap {
                    evicted = self.order.pop();
                }
                self.order.insert(0, k);
                evicted
            }
        }

        let mut rng = Rng::new(99);
        let mut real = LruCache::new(16);
        let mut model = RefLru { cap: 16, order: Vec::new() };
        for _ in 0..20_000 {
            let k = rng.below(48) as u32;
            match rng.below(3) {
                0 => assert_eq!(real.touch(k), model.touch(k)),
                1 => assert_eq!(real.insert(k), model.insert(k)),
                _ => {
                    let r = real.remove(&k);
                    let m = model.order.iter().position(|&x| x == k).map(|p| {
                        model.order.remove(p);
                    });
                    assert_eq!(r, m.is_some());
                }
            }
            assert_eq!(real.keys_mru_first(), model.order);
        }
    }
}
