//! Value-aware (oracle) cache: evicts the entry with the smallest value
//! under a caller-maintained value function.
//!
//! This realises the paper's interaction models in simulation:
//!
//! * set every demand-cached entry's value to its true re-access
//!   probability and prefetch-insert with eviction of the **minimum**-value
//!   entry → model A when zero-value entries exist, model AB in general;
//! * combine with uniform values → model B.
//!
//! It also carries an optional byte budget ([`ByteCapacity`]), so the
//! delayed-hits engines can rank eviction by *aggregate delay* (value =
//! accumulated residual waits charged to the key) while keeping the
//! byte-denominated occupancy accounting of the size-aware caches.

use crate::{ByteCapacity, ChargeOutcome, ReplacementCache};
use core::hash::Hash;
use std::collections::{BTreeSet, HashMap};

/// Total-ordered f64 wrapper (keys in the eviction order set).
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Clone, Copy)]
struct Entry {
    value: OrdF64,
    seq: u64,
    bytes: f64,
}

/// Cache that evicts the minimum-value entry (ties: oldest).
pub struct ValueAwareCache<K> {
    map: HashMap<K, Entry>,
    order: BTreeSet<(OrdF64, u64, K)>,
    capacity: usize,
    byte_capacity: f64,
    used_bytes: f64,
    next_seq: u64,
}

impl<K: Copy + Eq + Hash + Ord> ValueAwareCache<K> {
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_capacity(capacity, f64::INFINITY)
    }

    /// A value-aware cache bounded by `capacity` entries **and**
    /// `byte_capacity` bytes: admissions via [`ByteCapacity::charge`]
    /// evict minimum-value entries until both budgets hold.
    pub fn with_byte_capacity(capacity: usize, byte_capacity: f64) -> Self {
        assert!(capacity > 0);
        assert!(byte_capacity > 0.0, "byte capacity must be positive");
        ValueAwareCache {
            map: HashMap::with_capacity(capacity + 1),
            order: BTreeSet::new(),
            capacity,
            byte_capacity,
            used_bytes: 0.0,
            next_seq: 0,
        }
    }

    /// Removes and returns the minimum-value entry's key.
    fn evict_min(&mut self) -> K {
        let victim = *self.order.iter().next().expect("evict_min on an empty cache");
        self.order.remove(&victim);
        let entry = self.map.remove(&victim.2).expect("order/map desync");
        self.used_bytes -= entry.bytes;
        if self.map.is_empty() {
            // Kill accumulated f64 residue (a + b - b ≠ a): an empty cache
            // must charge exactly zero bytes.
            self.used_bytes = 0.0;
        }
        victim.2
    }

    /// [`ValueAwareCache::evict_min`], skipping `keep` — the key being
    /// (re-)charged is not evictable during its own admission, mirroring
    /// the LRU twin where the charged key sits at the MRU end.
    fn evict_min_excluding(&mut self, keep: &K) -> Option<K> {
        let victim = *self.order.iter().find(|(_, _, key)| key != keep)?;
        self.order.remove(&victim);
        let entry = self.map.remove(&victim.2).expect("order/map desync");
        self.used_bytes -= entry.bytes;
        Some(victim.2)
    }

    fn admit(&mut self, k: K, v: f64, bytes: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(k, Entry { value: OrdF64(v), seq, bytes });
        self.order.insert((OrdF64(v), seq, k));
        self.used_bytes += bytes;
    }

    /// Inserts or updates `k` with value `v`; evicts the minimum-value
    /// entry if the insert overflows. Returns the evicted key. Entries
    /// admitted this way are charged zero bytes — byte-denominated
    /// simulations admit via [`ByteCapacity::charge`] and maintain values
    /// with [`ValueAwareCache::set_value`].
    pub fn insert_valued(&mut self, k: K, v: f64) -> Option<K> {
        assert!(!v.is_nan(), "value cannot be NaN");
        if self.map.contains_key(&k) {
            self.set_value(k, v);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            evicted = Some(self.evict_min());
        }
        self.admit(k, v, 0.0);
        evicted
    }

    /// Updates the value of a cached entry (no-op when absent).
    pub fn set_value(&mut self, k: K, v: f64) {
        assert!(!v.is_nan());
        if let Some(&Entry { value: old_v, seq, bytes }) = self.map.get(&k) {
            self.order.remove(&(old_v, seq, k));
            self.map.insert(k, Entry { value: OrdF64(v), seq, bytes });
            self.order.insert((OrdF64(v), seq, k));
        }
    }

    /// Current value of an entry.
    pub fn value(&self, k: &K) -> Option<f64> {
        self.map.get(k).map(|e| e.value.0)
    }

    /// The key that would be evicted next, with its value.
    pub fn peek_min(&self) -> Option<(K, f64)> {
        self.order.iter().next().map(|&(v, _, k)| (k, v.0))
    }
}

impl<K: Copy + Eq + Hash + Ord> ReplacementCache<K> for ValueAwareCache<K> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    fn touch(&mut self, k: K) -> bool {
        self.map.contains_key(&k)
    }

    /// Default insert uses value 0 (unknown = worthless) — callers that
    /// know values should use [`ValueAwareCache::insert_valued`].
    fn insert(&mut self, k: K) -> Option<K> {
        self.insert_valued(k, 0.0)
    }

    fn remove(&mut self, k: &K) -> bool {
        if let Some(Entry { value, seq, bytes }) = self.map.remove(k) {
            self.order.remove(&(value, seq, *k));
            self.used_bytes -= bytes;
            if self.map.is_empty() {
                self.used_bytes = 0.0; // see evict_min on residue
            }
            true
        } else {
            false
        }
    }

    fn keys(&self) -> Vec<K> {
        self.map.keys().copied().collect()
    }
}

impl<K: Copy + Eq + Hash + Ord> ByteCapacity<K> for ValueAwareCache<K> {
    fn byte_capacity(&self) -> f64 {
        self.byte_capacity
    }

    fn used_bytes(&self) -> f64 {
        self.used_bytes
    }

    fn entry_bytes(&self, k: &K) -> Option<f64> {
        self.map.get(k).map(|e| e.bytes)
    }

    fn charge(&mut self, k: K, bytes: f64) -> ChargeOutcome<K> {
        assert!(bytes >= 0.0 && bytes.is_finite(), "bad entry size {bytes}");
        if bytes > self.byte_capacity {
            // The entry alone busts the byte budget: never admit it (and
            // drop any previously cached, smaller copy).
            let mut evicted = Vec::new();
            if self.remove(&k) {
                evicted.push(k);
            }
            return ChargeOutcome { admitted: false, evicted };
        }
        if self.map.contains_key(&k) {
            // Re-charge in place, mirroring `insert` on a present key: the
            // value resets to 0 (callers restore it via `set_value`) and
            // the size is swapped.
            let old = self.map.get(&k).map(|e| e.bytes).unwrap_or(0.0);
            self.used_bytes += bytes - old;
            if let Some(e) = self.map.get_mut(&k) {
                e.bytes = bytes;
            }
            self.set_value(k, 0.0);
            let mut evicted = Vec::new();
            // `k` fits alone (checked above) and, having just been reset to
            // value 0, may itself be the minimum — evict around it.
            while self.used_bytes > self.byte_capacity && self.map.len() > 1 {
                match self.evict_min_excluding(&k) {
                    Some(v) => evicted.push(v),
                    None => break,
                }
            }
            return ChargeOutcome { admitted: true, evicted };
        }
        let mut evicted = Vec::new();
        // The emptiness guard mirrors the LRU twin: ledger residue must
        // not drive eviction of nothing.
        while !self.map.is_empty()
            && (self.map.len() == self.capacity || self.used_bytes + bytes > self.byte_capacity)
        {
            evicted.push(self.evict_min());
        }
        self.admit(k, 0.0, bytes);
        ChargeOutcome { admitted: true, evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(ValueAwareCache::new(3));
        conformance::reinsert_does_not_evict(ValueAwareCache::new(3));
        conformance::remove_frees_space(ValueAwareCache::new(3));
        conformance::touch_only_hits_present(ValueAwareCache::new(3));
        conformance::keys_are_consistent(ValueAwareCache::new(3));
    }

    #[test]
    fn evicts_minimum_value() {
        let mut c = ValueAwareCache::new(3);
        c.insert_valued(1, 0.9);
        c.insert_valued(2, 0.1);
        c.insert_valued(3, 0.5);
        assert_eq!(c.insert_valued(4, 0.7), Some(2));
        assert_eq!(c.peek_min(), Some((3, 0.5)));
    }

    #[test]
    fn value_update_changes_victim() {
        let mut c = ValueAwareCache::new(3);
        c.insert_valued(1, 0.9);
        c.insert_valued(2, 0.1);
        c.insert_valued(3, 0.5);
        c.set_value(2, 0.95);
        assert_eq!(c.insert_valued(4, 0.7), Some(3));
        assert!(c.contains(&2));
    }

    #[test]
    fn ties_evict_oldest() {
        let mut c = ValueAwareCache::new(3);
        c.insert_valued(10, 0.5);
        c.insert_valued(20, 0.5);
        c.insert_valued(30, 0.5);
        assert_eq!(c.insert_valued(40, 0.5), Some(10));
    }

    #[test]
    fn zero_value_entries_always_go_first_model_a_semantics() {
        // Model A: as long as a zero-value entry exists, prefetching evicts
        // only those — valuable entries are never harmed.
        let mut c = ValueAwareCache::new(4);
        c.insert_valued(1, 0.8); // valuable
        c.insert_valued(2, 0.0); // worthless
        c.insert_valued(3, 0.0);
        c.insert_valued(4, 0.6);
        let e1 = c.insert_valued(100, 0.5).unwrap();
        let e2 = c.insert_valued(101, 0.5).unwrap();
        assert!(e1 == 2 || e1 == 3);
        assert!(e2 == 2 || e2 == 3);
        assert!(c.contains(&1) && c.contains(&4));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = ValueAwareCache::new(2);
        c.insert_valued(1, 0.1);
        c.insert_valued(2, 0.2);
        assert_eq!(c.insert_valued(1, 0.9), None);
        assert_eq!(c.value(&1), Some(0.9));
        // Now 2 is the minimum.
        assert_eq!(c.insert_valued(3, 0.5), Some(2));
    }

    #[test]
    fn byte_budget_evicts_minimum_value_first() {
        let mut c = ValueAwareCache::with_byte_capacity(8, 10.0);
        c.charge(1, 4.0);
        c.set_value(1, 0.9);
        c.charge(2, 4.0);
        c.set_value(2, 0.1);
        // 4 + 4 + 4 > 10 → evicts the min-value entry (2), not the oldest.
        let out = c.charge(3, 4.0);
        assert!(out.admitted);
        assert_eq!(out.evicted, vec![2]);
        assert!(c.contains(&1));
        assert_eq!(c.used_bytes(), 8.0);
        assert_eq!(c.entry_bytes(&3), Some(4.0));
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let mut c = ValueAwareCache::with_byte_capacity(4, 10.0);
        c.charge(1, 4.0);
        let out = c.charge(2, 11.0);
        assert!(!out.admitted);
        assert!(out.evicted.is_empty());
        assert!(c.contains(&1));
    }

    #[test]
    fn unbounded_charge_matches_insert() {
        // Degenerate case: with an unbounded byte budget, charge admits and
        // evicts exactly like insert.
        let mut a = ValueAwareCache::new(3);
        let mut b = ValueAwareCache::new(3);
        for k in [5u32, 9, 5, 1, 7, 3] {
            let ia = a.insert(k);
            let ob = b.charge(k, 2.0);
            assert_eq!(ia.into_iter().collect::<Vec<_>>(), ob.evicted);
        }
        let mut ka = a.keys();
        let mut kb = b.keys();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb);
    }
}
