//! Value-aware (oracle) cache: evicts the entry with the smallest value
//! under a caller-maintained value function.
//!
//! This realises the paper's interaction models in simulation:
//!
//! * set every demand-cached entry's value to its true re-access
//!   probability and prefetch-insert with eviction of the **minimum**-value
//!   entry → model A when zero-value entries exist, model AB in general;
//! * combine with uniform values → model B.

use crate::ReplacementCache;
use core::hash::Hash;
use std::collections::{BTreeSet, HashMap};

/// Total-ordered f64 wrapper (keys in the eviction order set).
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Cache that evicts the minimum-value entry (ties: oldest).
pub struct ValueAwareCache<K> {
    map: HashMap<K, (OrdF64, u64)>,
    order: BTreeSet<(OrdF64, u64, K)>,
    capacity: usize,
    next_seq: u64,
}

impl<K: Copy + Eq + Hash + Ord> ValueAwareCache<K> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ValueAwareCache {
            map: HashMap::with_capacity(capacity + 1),
            order: BTreeSet::new(),
            capacity,
            next_seq: 0,
        }
    }

    /// Inserts or updates `k` with value `v`; evicts the minimum-value
    /// entry if the insert overflows. Returns the evicted key.
    pub fn insert_valued(&mut self, k: K, v: f64) -> Option<K> {
        assert!(!v.is_nan(), "value cannot be NaN");
        if self.map.contains_key(&k) {
            self.set_value(k, v);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let victim = *self.order.iter().next().expect("full cache");
            self.order.remove(&victim);
            self.map.remove(&victim.2);
            evicted = Some(victim.2);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(k, (OrdF64(v), seq));
        self.order.insert((OrdF64(v), seq, k));
        evicted
    }

    /// Updates the value of a cached entry (no-op when absent).
    pub fn set_value(&mut self, k: K, v: f64) {
        assert!(!v.is_nan());
        if let Some(&(old_v, seq)) = self.map.get(&k) {
            self.order.remove(&(old_v, seq, k));
            self.map.insert(k, (OrdF64(v), seq));
            self.order.insert((OrdF64(v), seq, k));
        }
    }

    /// Current value of an entry.
    pub fn value(&self, k: &K) -> Option<f64> {
        self.map.get(k).map(|&(v, _)| v.0)
    }

    /// The key that would be evicted next, with its value.
    pub fn peek_min(&self) -> Option<(K, f64)> {
        self.order.iter().next().map(|&(v, _, k)| (k, v.0))
    }
}

impl<K: Copy + Eq + Hash + Ord> ReplacementCache<K> for ValueAwareCache<K> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    fn touch(&mut self, k: K) -> bool {
        self.map.contains_key(&k)
    }

    /// Default insert uses value 0 (unknown = worthless) — callers that
    /// know values should use [`ValueAwareCache::insert_valued`].
    fn insert(&mut self, k: K) -> Option<K> {
        self.insert_valued(k, 0.0)
    }

    fn remove(&mut self, k: &K) -> bool {
        if let Some((v, seq)) = self.map.remove(k) {
            self.order.remove(&(v, seq, *k));
            true
        } else {
            false
        }
    }

    fn keys(&self) -> Vec<K> {
        self.map.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn conformance_suite() {
        conformance::basic_fill_and_evict(ValueAwareCache::new(3));
        conformance::reinsert_does_not_evict(ValueAwareCache::new(3));
        conformance::remove_frees_space(ValueAwareCache::new(3));
        conformance::touch_only_hits_present(ValueAwareCache::new(3));
        conformance::keys_are_consistent(ValueAwareCache::new(3));
    }

    #[test]
    fn evicts_minimum_value() {
        let mut c = ValueAwareCache::new(3);
        c.insert_valued(1, 0.9);
        c.insert_valued(2, 0.1);
        c.insert_valued(3, 0.5);
        assert_eq!(c.insert_valued(4, 0.7), Some(2));
        assert_eq!(c.peek_min(), Some((3, 0.5)));
    }

    #[test]
    fn value_update_changes_victim() {
        let mut c = ValueAwareCache::new(3);
        c.insert_valued(1, 0.9);
        c.insert_valued(2, 0.1);
        c.insert_valued(3, 0.5);
        c.set_value(2, 0.95);
        assert_eq!(c.insert_valued(4, 0.7), Some(3));
        assert!(c.contains(&2));
    }

    #[test]
    fn ties_evict_oldest() {
        let mut c = ValueAwareCache::new(3);
        c.insert_valued(10, 0.5);
        c.insert_valued(20, 0.5);
        c.insert_valued(30, 0.5);
        assert_eq!(c.insert_valued(40, 0.5), Some(10));
    }

    #[test]
    fn zero_value_entries_always_go_first_model_a_semantics() {
        // Model A: as long as a zero-value entry exists, prefetching evicts
        // only those — valuable entries are never harmed.
        let mut c = ValueAwareCache::new(4);
        c.insert_valued(1, 0.8); // valuable
        c.insert_valued(2, 0.0); // worthless
        c.insert_valued(3, 0.0);
        c.insert_valued(4, 0.6);
        let e1 = c.insert_valued(100, 0.5).unwrap();
        let e2 = c.insert_valued(101, 0.5).unwrap();
        assert!(e1 == 2 || e1 == 3);
        assert!(e2 == 2 || e2 == 3);
        assert!(c.contains(&1) && c.contains(&4));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = ValueAwareCache::new(2);
        c.insert_valued(1, 0.1);
        c.insert_valued(2, 0.2);
        assert_eq!(c.insert_valued(1, 0.9), None);
        assert_eq!(c.value(&1), Some(0.9));
        // Now 2 is the minimum.
        assert_eq!(c.insert_valued(3, 0.5), Some(2));
    }
}
