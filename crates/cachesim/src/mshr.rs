//! MSHR-style outstanding-fetch table: delayed hits as a first-class
//! concept.
//!
//! At backbone latencies a miss's fetch window spans many subsequent
//! requests, so a request for a key that is *already being fetched* is
//! neither a hit nor a miss: it queues on the outstanding fetch and pays
//! the residual latency (Atre et al., SIGCOMM 2020). Hardware caches
//! track this with Miss Status Holding Registers; [`Mshr`] lifts the same
//! structure to the simulation substrate:
//!
//! * one entry per in-flight key, recording the fetch **origin**
//!   (demand or prefetch), the **issue time**, and the bytes the origin
//!   fetch will move;
//! * a FIFO **waiter queue** per entry — later demand misses for the key
//!   coalesce onto the entry instead of fetching again, and are settled
//!   in arrival order when the fetch lands;
//! * a configurable **entry budget** with a deterministic full-table
//!   policy: a demand miss that cannot allocate an entry *bypasses* the
//!   table (the fetch proceeds, untracked, so later misses cannot
//!   coalesce onto it), and a prefetch reservation is dropped;
//! * a **coalescing switch** ([`MshrConfig::coalesce`]) whose off
//!   position reproduces the resolve-each-miss-independently flow —
//!   the baseline the delayed-hits experiments compare against.
//!
//! [`TaggedCache::probe_via`] is the integration point: a §4 probe that
//! consults the table before authorising any fetch.
//!
//! ```
//! use cachesim::{LruCache, Mshr, MshrAccess, TaggedCache, Waiter};
//!
//! let mut cache = TaggedCache::new(LruCache::new(8));
//! let mut mshr: Mshr<&str> = Mshr::unbounded();
//!
//! // First miss launches the origin fetch…
//! let first = cache.probe_via(&mut mshr, "page", 0.0, 1.0, Waiter::demand(0.0));
//! assert!(matches!(first, MshrAccess::Fetch { tracked: true }));
//! // …a second request for the same key coalesces instead of refetching.
//! let second = cache.probe_via(&mut mshr, "page", 0.4, 1.0, Waiter::demand(0.4));
//! assert!(matches!(second, MshrAccess::Coalesced));
//!
//! // When the fetch lands, the entry yields its waiters in FIFO order.
//! let entry = mshr.complete(&"page").unwrap();
//! assert_eq!(entry.waiters.len(), 1);
//! assert_eq!(mshr.origin_fetches(), 1); // the key was fetched once
//! ```

use crate::tagged::{AccessKind, TaggedCache};
use crate::ReplacementCache;
use core::hash::Hash;
use std::collections::HashMap;

/// Who launched the outstanding fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchOrigin {
    /// A demand miss.
    Demand,
    /// A speculative prefetch.
    Prefetch,
}

/// A request queued on an outstanding fetch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Waiter {
    /// Time the waiter joined the entry (its residual wait starts here).
    pub t: f64,
    /// Whether the request falls inside the measurement window.
    pub measured: bool,
    /// Trace id of the waiting request (0 when unsampled).
    pub trace: u64,
}

impl Waiter {
    /// A measured, untraced waiter — convenient for tests and doctests.
    pub fn demand(t: f64) -> Self {
        Waiter { t, measured: true, trace: 0 }
    }
}

/// Per-key state of an outstanding fetch.
#[derive(Clone, Debug)]
pub struct MshrEntry {
    /// Who launched the fetch.
    pub origin: FetchOrigin,
    /// When the fetch was issued.
    pub issued: f64,
    /// Bytes the origin fetch moves (charged once, however many waiters
    /// coalesce).
    pub bytes: f64,
    /// Requests queued on this fetch, in arrival (FIFO) order.
    pub waiters: Vec<Waiter>,
}

/// Configuration of an [`Mshr`] table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrConfig {
    /// Entry budget (`None` = unbounded). When the table is full, a new
    /// demand miss bypasses the table (fetches independently, untracked)
    /// and a prefetch reservation is dropped — both deterministic.
    pub entries: Option<usize>,
    /// Whether demand misses coalesce onto in-flight entries. `false`
    /// reproduces the independent-miss baseline: every miss fetches from
    /// the origin even when the key is already in flight.
    pub coalesce: bool,
}

impl Default for MshrConfig {
    fn default() -> Self {
        MshrConfig { entries: None, coalesce: true }
    }
}

/// What a demand miss should do, per the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchDecision {
    /// No entry existed and one was allocated: launch the origin fetch
    /// and [`Mshr::complete`] it when it lands.
    Launch,
    /// The key is already in flight; the request joined the entry's FIFO
    /// waiter queue and no fetch must be launched.
    Coalesced,
    /// Launch the fetch *untracked* (table full, or coalescing disabled).
    /// There is no entry to complete.
    Bypass,
}

/// Outcome of a [`TaggedCache::probe_via`] — a §4 probe that consults an
/// MSHR table before authorising a fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrAccess {
    /// Cache hit; no fetch involved.
    Hit(AccessKind),
    /// Miss on an in-flight key: coalesced onto the outstanding fetch.
    Coalesced,
    /// Miss: launch a fetch. `tracked` says whether an MSHR entry was
    /// allocated (false = bypass; do not [`Mshr::complete`] it).
    Fetch {
        /// Whether the fetch owns an MSHR entry.
        tracked: bool,
    },
}

/// The outstanding-fetch table.
pub struct Mshr<K> {
    config: MshrConfig,
    table: HashMap<K, MshrEntry>,
    demand_misses: u64,
    origin_fetches: u64,
    origin_bytes: f64,
    coalesced: u64,
    rejections: u64,
    settled_entries: u64,
    settled_waiters: u64,
    failed: u64,
}

impl<K: Copy + Eq + Hash> Mshr<K> {
    pub fn new(config: MshrConfig) -> Self {
        if let Some(n) = config.entries {
            assert!(n > 0, "MSHR entry budget must be positive");
        }
        Mshr {
            config,
            table: HashMap::new(),
            demand_misses: 0,
            origin_fetches: 0,
            origin_bytes: 0.0,
            coalesced: 0,
            rejections: 0,
            settled_entries: 0,
            settled_waiters: 0,
            failed: 0,
        }
    }

    /// An unbounded, coalescing table (the default configuration).
    pub fn unbounded() -> Self {
        Mshr::new(MshrConfig::default())
    }

    pub fn config(&self) -> MshrConfig {
        self.config
    }

    /// Whether demand misses coalesce onto in-flight entries.
    pub fn coalescing(&self) -> bool {
        self.config.coalesce
    }

    /// Whether `k` has an outstanding entry.
    pub fn contains(&self, k: &K) -> bool {
        self.table.contains_key(k)
    }

    /// Number of outstanding entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    fn has_room(&self) -> bool {
        match self.config.entries {
            Some(budget) => self.table.len() < budget,
            None => true,
        }
    }

    /// A demand miss for `k` at time `t`, moving `bytes` if it fetches.
    /// Coalesces onto an existing entry (recording `waiter`), allocates a
    /// new one, or bypasses the table — see [`FetchDecision`].
    pub fn on_demand_miss(&mut self, k: K, t: f64, bytes: f64, waiter: Waiter) -> FetchDecision {
        self.demand_misses += 1;
        if self.config.coalesce {
            if let Some(entry) = self.table.get_mut(&k) {
                entry.waiters.push(waiter);
                self.coalesced += 1;
                return FetchDecision::Coalesced;
            }
            if self.has_room() {
                self.table.insert(
                    k,
                    MshrEntry {
                        origin: FetchOrigin::Demand,
                        issued: t,
                        bytes,
                        waiters: Vec::new(),
                    },
                );
                self.origin_fetches += 1;
                self.origin_bytes += bytes;
                return FetchDecision::Launch;
            }
            self.rejections += 1;
        }
        self.origin_fetches += 1;
        self.origin_bytes += bytes;
        FetchDecision::Bypass
    }

    /// Reserves an entry for a speculative prefetch of `k`. Returns
    /// whether the prefetch should be issued: `false` when the key is
    /// already in flight (duplicate) or the table is full (the candidate
    /// is dropped — the deterministic full-table policy for speculation).
    pub fn reserve_prefetch(&mut self, k: K, t: f64, bytes: f64) -> bool {
        if self.table.contains_key(&k) {
            return false;
        }
        if !self.has_room() {
            self.rejections += 1;
            return false;
        }
        self.table.insert(
            k,
            MshrEntry { origin: FetchOrigin::Prefetch, issued: t, bytes, waiters: Vec::new() },
        );
        true
    }

    /// The fetch for `k` landed (or was cancelled): removes and returns
    /// its entry, waiters in FIFO order. `None` for untracked (bypassed)
    /// fetches, or when an earlier landing of the same key already
    /// settled the entry — any arrival of the key's data ends the wait.
    pub fn complete(&mut self, k: &K) -> Option<MshrEntry> {
        let entry = self.table.remove(k);
        if let Some(e) = &entry {
            self.settled_entries += 1;
            self.settled_waiters += e.waiters.len() as u64;
        }
        entry
    }

    /// The fetch for `k` was abandoned (timed out past its retry budget,
    /// or lost to a crash): removes and returns its entry so the caller
    /// can settle the queued waiters with a failure outcome — waiters
    /// never leak. A demand-origin entry is *reclassified*: it no longer
    /// counts as an origin fetch (the data never arrived) and instead
    /// counts toward [`Mshr::failed`], preserving the conservation law
    /// `origin_fetches + coalesced + failed == demand_misses`. Prefetch
    /// entries are simply dropped — speculative fetches were never part
    /// of the demand ledger. `None` for untracked or already-settled
    /// keys.
    /// The outstanding entry for `k`, if any — lets callers check the
    /// entry's origin and launch instant before deciding whether a
    /// pending failure settlement still refers to it (a crash may have
    /// drained the table, or a newer fetch generation may own the slot).
    pub fn entry(&self, k: &K) -> Option<&MshrEntry> {
        self.table.get(k)
    }

    pub fn fail(&mut self, k: &K) -> Option<MshrEntry> {
        let entry = self.table.remove(k)?;
        if entry.origin == FetchOrigin::Demand {
            self.failed += 1;
            self.origin_fetches -= 1;
            self.origin_bytes -= entry.bytes;
        }
        Some(entry)
    }

    /// An *untracked* (bypassed) demand fetch was abandoned: reclassify
    /// it from origin fetch to failure, refunding `bytes`, exactly as
    /// [`Mshr::fail`] does for tracked entries.
    pub fn fail_untracked(&mut self, bytes: f64) {
        self.failed += 1;
        self.origin_fetches -= 1;
        self.origin_bytes -= bytes;
    }

    /// Origin fetches authorised (tracked launches + bypasses): how many
    /// times key data was actually requested from upstream.
    pub fn origin_fetches(&self) -> u64 {
        self.origin_fetches
    }

    /// Bytes moved by the authorised origin fetches. Coalesced waiters
    /// charge nothing — an entry's bytes are fetched once regardless of
    /// waiter count.
    pub fn origin_bytes(&self) -> f64 {
        self.origin_bytes
    }

    /// Demand misses absorbed by coalescing (waiter joins).
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Allocations refused by the entry budget (demand bypasses that hit
    /// a full table, plus dropped prefetch reservations).
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Entries settled via [`Mshr::complete`].
    pub fn settled_entries(&self) -> u64 {
        self.settled_entries
    }

    /// Waiters released by settled entries.
    pub fn settled_waiters(&self) -> u64 {
        self.settled_waiters
    }

    /// Mean waiters per settled entry (the waiter-depth aggregate).
    pub fn waiter_depth_mean(&self) -> Option<f64> {
        (self.settled_entries > 0)
            .then(|| self.settled_waiters as f64 / self.settled_entries as f64)
    }

    /// Demand misses that ended in failure (see [`Mshr::fail`]).
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Demand misses presented to the table, whatever their outcome.
    pub fn demand_misses(&self) -> u64 {
        self.demand_misses
    }

    /// The extended conservation law: every demand miss either launched a
    /// fetch that (eventually) succeeds, coalesced onto one, or failed.
    pub fn conservation_ok(&self) -> bool {
        self.origin_fetches + self.coalesced + self.failed == self.demand_misses
    }
}

impl<K: Copy + Eq + Hash + Ord> Mshr<K> {
    /// Drains every outstanding entry — a node crash loses the table
    /// wholesale. Demand-origin entries reclassify as failures exactly as
    /// in [`Mshr::fail`]; the survivors' waiters are returned (sorted by
    /// key, so crash settlement order is deterministic) for the caller to
    /// settle with a failure outcome.
    pub fn drain_failed(&mut self) -> Vec<(K, MshrEntry)> {
        let mut drained: Vec<(K, MshrEntry)> = self.table.drain().collect();
        drained.sort_by_key(|(k, _)| *k);
        for (_, entry) in &drained {
            if entry.origin == FetchOrigin::Demand {
                self.failed += 1;
                self.origin_fetches -= 1;
                self.origin_bytes -= entry.bytes;
            }
        }
        drained
    }
}

impl<K: Copy + Eq + Hash, C: ReplacementCache<K>> TaggedCache<K, C> {
    /// A §4 probe that consults an MSHR outstanding-fetch table before
    /// authorising any fetch: hits behave exactly like
    /// [`TaggedCache::probe`]; a miss on an in-flight key joins the
    /// entry's FIFO waiter queue (recording `waiter`) instead of fetching
    /// again. Counter updates are identical to [`TaggedCache::probe`].
    pub fn probe_via(
        &mut self,
        mshr: &mut Mshr<K>,
        k: K,
        t: f64,
        bytes: f64,
        waiter: Waiter,
    ) -> MshrAccess {
        match self.probe(k) {
            AccessKind::Miss => match mshr.on_demand_miss(k, t, bytes, waiter) {
                FetchDecision::Launch => MshrAccess::Fetch { tracked: true },
                FetchDecision::Coalesced => MshrAccess::Coalesced,
                FetchDecision::Bypass => MshrAccess::Fetch { tracked: false },
            },
            kind => MshrAccess::Hit(kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiters_settle_in_fifo_order() {
        let mut m: Mshr<u32> = Mshr::unbounded();
        assert_eq!(m.on_demand_miss(7, 0.0, 2.0, Waiter::demand(0.0)), FetchDecision::Launch);
        for i in 1..=4 {
            let w = Waiter { t: i as f64, measured: i % 2 == 0, trace: i };
            assert_eq!(m.on_demand_miss(7, w.t, 2.0, w), FetchDecision::Coalesced);
        }
        let entry = m.complete(&7).unwrap();
        assert_eq!(entry.origin, FetchOrigin::Demand);
        let joined: Vec<u64> = entry.waiters.iter().map(|w| w.trace).collect();
        assert_eq!(joined, vec![1, 2, 3, 4]);
        assert_eq!(m.coalesced(), 4);
        assert_eq!(m.settled_waiters(), 4);
        assert_eq!(m.waiter_depth_mean(), Some(4.0));
    }

    #[test]
    fn origin_bytes_charged_once_per_entry() {
        let mut m: Mshr<u32> = Mshr::unbounded();
        m.on_demand_miss(1, 0.0, 10.0, Waiter::demand(0.0));
        for _ in 0..100 {
            m.on_demand_miss(1, 0.5, 10.0, Waiter::demand(0.5));
        }
        assert_eq!(m.origin_fetches(), 1);
        assert_eq!(m.origin_bytes(), 10.0);
    }

    #[test]
    fn full_table_bypasses_demand_and_drops_prefetch() {
        let mut m: Mshr<u32> = Mshr::new(MshrConfig { entries: Some(2), coalesce: true });
        assert_eq!(m.on_demand_miss(1, 0.0, 1.0, Waiter::demand(0.0)), FetchDecision::Launch);
        assert!(m.reserve_prefetch(2, 0.0, 1.0));
        // Table full: new keys bypass (demand) or are dropped (prefetch)…
        assert_eq!(m.on_demand_miss(3, 0.1, 1.0, Waiter::demand(0.1)), FetchDecision::Bypass);
        assert!(!m.reserve_prefetch(4, 0.1, 1.0));
        assert_eq!(m.rejections(), 2);
        // …while in-flight keys still coalesce.
        assert_eq!(m.on_demand_miss(1, 0.2, 1.0, Waiter::demand(0.2)), FetchDecision::Coalesced);
        // A bypassed fetch has no entry to complete.
        assert!(m.complete(&3).is_none());
        assert!(m.complete(&1).is_some());
        // Room again: allocation resumes deterministically.
        assert_eq!(m.on_demand_miss(3, 0.3, 1.0, Waiter::demand(0.3)), FetchDecision::Launch);
    }

    #[test]
    fn independent_mode_never_coalesces() {
        let mut m: Mshr<u32> = Mshr::new(MshrConfig { entries: None, coalesce: false });
        // Prefetch reservations are still tracked (dedupe)…
        assert!(m.reserve_prefetch(9, 0.0, 1.0));
        assert!(!m.reserve_prefetch(9, 0.1, 1.0));
        // …but demand misses always fetch, even for in-flight keys.
        assert_eq!(m.on_demand_miss(9, 0.2, 1.0, Waiter::demand(0.2)), FetchDecision::Bypass);
        assert_eq!(m.on_demand_miss(9, 0.3, 1.0, Waiter::demand(0.3)), FetchDecision::Bypass);
        assert_eq!(m.origin_fetches(), 2);
        assert_eq!(m.coalesced(), 0);
        assert!(m.complete(&9).unwrap().waiters.is_empty());
    }

    #[test]
    fn failed_fetch_settles_waiters_and_keeps_conservation() {
        let mut m: Mshr<u32> = Mshr::unbounded();
        m.on_demand_miss(7, 0.0, 4.0, Waiter::demand(0.0));
        m.on_demand_miss(7, 0.3, 4.0, Waiter::demand(0.3));
        m.on_demand_miss(8, 0.1, 2.0, Waiter::demand(0.1));
        assert!(m.conservation_ok());
        // Key 7's fetch exhausts its retry budget: the entry reclassifies
        // (no origin fetch happened) and its waiter comes back to settle.
        let entry = m.fail(&7).unwrap();
        assert_eq!(entry.origin, FetchOrigin::Demand);
        assert_eq!(entry.waiters.len(), 1);
        assert_eq!(m.failed(), 1);
        assert_eq!(m.origin_fetches(), 1);
        assert_eq!(m.origin_bytes(), 2.0);
        assert_eq!(m.demand_misses(), 3);
        assert!(m.conservation_ok());
        // Double-fail is inert, like a duplicate completion.
        assert!(m.fail(&7).is_none());
        assert!(m.complete(&8).is_some());
        assert!(m.conservation_ok());
    }

    #[test]
    fn failed_prefetch_drops_without_reclassification() {
        let mut m: Mshr<u32> = Mshr::unbounded();
        assert!(m.reserve_prefetch(5, 0.0, 3.0));
        m.on_demand_miss(5, 0.2, 3.0, Waiter::demand(0.2));
        let entry = m.fail(&5).unwrap();
        assert_eq!(entry.origin, FetchOrigin::Prefetch);
        assert_eq!(entry.waiters.len(), 1);
        // Prefetches never joined the demand ledger, so nothing moves —
        // but the coalesced waiter keeps the law balanced.
        assert_eq!(m.failed(), 0);
        assert_eq!(m.origin_fetches(), 0);
        assert!(m.conservation_ok());
    }

    #[test]
    fn untracked_failure_reclassifies_bypass() {
        let mut m: Mshr<u32> = Mshr::new(MshrConfig { entries: Some(1), coalesce: true });
        m.on_demand_miss(1, 0.0, 1.0, Waiter::demand(0.0));
        assert_eq!(m.on_demand_miss(2, 0.1, 5.0, Waiter::demand(0.1)), FetchDecision::Bypass);
        m.fail_untracked(5.0);
        assert_eq!(m.failed(), 1);
        assert_eq!(m.origin_fetches(), 1);
        assert_eq!(m.origin_bytes(), 1.0);
        assert!(m.conservation_ok());
    }

    #[test]
    fn crash_drain_is_sorted_and_reclassifies_demand_entries() {
        let mut m: Mshr<u32> = Mshr::unbounded();
        m.on_demand_miss(9, 0.0, 2.0, Waiter::demand(0.0));
        m.on_demand_miss(3, 0.1, 2.0, Waiter::demand(0.1));
        assert!(m.reserve_prefetch(6, 0.2, 1.0));
        let drained = m.drain_failed();
        let keys: Vec<u32> = drained.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 6, 9]);
        assert!(m.is_empty());
        assert_eq!(m.failed(), 2);
        assert_eq!(m.origin_fetches(), 0);
        assert_eq!(m.origin_bytes(), 0.0);
        assert!(m.conservation_ok());
    }

    #[test]
    fn duplicate_landing_settles_nothing() {
        let mut m: Mshr<u32> = Mshr::unbounded();
        m.on_demand_miss(5, 0.0, 1.0, Waiter::demand(0.0));
        assert!(m.complete(&5).is_some());
        assert!(m.complete(&5).is_none());
        assert_eq!(m.settled_entries(), 1);
    }
}
