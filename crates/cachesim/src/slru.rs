//! Segmented LRU (SLRU): a probationary segment and a protected segment.
//!
//! First touch admits to probation; a hit in probation promotes to the
//! protected segment (evicting the protected LRU back *into* probation).
//! SLRU resists one-touch scans — precisely the pollution speculative
//! prefetching causes when predictions miss, which makes it an interesting
//! replacement policy under the paper's workloads.

use crate::lru::LruCache;
use crate::ReplacementCache;
use core::hash::Hash;

/// Segmented LRU with `probation_cap` + `protected_cap` entries.
pub struct SlruCache<K> {
    probation: LruCache<K>,
    protected: LruCache<K>,
}

impl<K: Copy + Eq + Hash> SlruCache<K> {
    /// Splits `capacity` with the conventional 20/80 probation/protected
    /// ratio (at least one entry each).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "SLRU needs at least two entries");
        let probation_cap = (capacity / 5).max(1);
        SlruCache::with_segments(probation_cap, capacity - probation_cap)
    }

    /// Explicit segment sizes.
    pub fn with_segments(probation_cap: usize, protected_cap: usize) -> Self {
        assert!(probation_cap >= 1 && protected_cap >= 1);
        SlruCache {
            probation: LruCache::new(probation_cap),
            protected: LruCache::new(protected_cap),
        }
    }

    /// Whether a key currently sits in the protected segment.
    pub fn is_protected(&self, k: &K) -> bool {
        self.protected.contains(k)
    }

    fn promote(&mut self, k: K) {
        self.probation.remove(&k);
        if let Some(demoted) = self.protected.insert(k) {
            // Protected overflow falls back to probation (second chance).
            if let Some(evicted) = self.probation.insert(demoted) {
                // Probation overflow leaves the cache entirely; it is the
                // true victim of this promotion.
                debug_assert!(evicted != k);
            }
        }
    }
}

impl<K: Copy + Eq + Hash> ReplacementCache<K> for SlruCache<K> {
    fn capacity(&self) -> usize {
        self.probation.capacity() + self.protected.capacity()
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    fn contains(&self, k: &K) -> bool {
        self.probation.contains(k) || self.protected.contains(k)
    }

    fn touch(&mut self, k: K) -> bool {
        if self.protected.touch(k) {
            true
        } else if self.probation.contains(&k) {
            self.promote(k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: K) -> Option<K> {
        if self.touch(k) {
            return None;
        }
        self.probation.insert(k)
    }

    fn remove(&mut self, k: &K) -> bool {
        self.probation.remove(k) || self.protected.remove(k)
    }

    fn keys(&self) -> Vec<K> {
        let mut keys = self.probation.keys();
        keys.extend(self.protected.keys());
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_splits() {
        let c: SlruCache<u32> = SlruCache::new(10);
        assert_eq!(c.capacity(), 10);
        let c: SlruCache<u32> = SlruCache::with_segments(3, 7);
        assert_eq!(c.capacity(), 10);
    }

    #[test]
    fn first_touch_is_probationary_second_promotes() {
        let mut c = SlruCache::with_segments(2, 2);
        c.insert(1);
        assert!(!c.is_protected(&1));
        assert!(c.touch(1));
        assert!(c.is_protected(&1));
    }

    #[test]
    fn scan_resistance() {
        // A reused item survives a long one-touch scan.
        let mut c = SlruCache::with_segments(2, 2);
        c.insert(100);
        c.touch(100); // promoted
        for k in 0..50 {
            c.insert(k); // scan churns probation only
        }
        assert!(c.contains(&100), "protected item evicted by scan");
        // Plain LRU of the same total capacity would have lost it.
        let mut lru = LruCache::new(4);
        lru.insert(100);
        lru.touch(100);
        for k in 0..50 {
            lru.insert(k);
        }
        assert!(!lru.contains(&100));
    }

    #[test]
    fn protected_overflow_demotes_not_evicts() {
        let mut c = SlruCache::with_segments(2, 1);
        c.insert(1);
        c.touch(1); // 1 protected
        c.insert(2);
        c.touch(2); // 2 protected, 1 demoted to probation
        assert!(c.is_protected(&2));
        assert!(c.contains(&1));
        assert!(!c.is_protected(&1));
    }

    #[test]
    fn len_and_remove_across_segments() {
        let mut c = SlruCache::with_segments(2, 2);
        c.insert(1);
        c.insert(2);
        c.touch(1);
        assert_eq!(c.len(), 2);
        assert!(c.remove(&1)); // from protected
        assert!(c.remove(&2)); // from probation
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn insert_never_exceeds_capacity() {
        let mut c = SlruCache::with_segments(2, 3);
        for k in 0..100u32 {
            c.insert(k);
            if k % 3 == 0 {
                c.touch(k);
            }
            assert!(c.len() <= 5);
        }
    }
}
