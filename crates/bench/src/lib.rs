//! # bench — Criterion benchmarks
//!
//! Three benchmark suites (run `cargo bench --workspace`):
//!
//! * `figures` — one benchmark per paper figure (E1–E3): the cost of
//!   regenerating each panel's full data series from the closed forms, plus
//!   the Model-B analogues (E4) and the §6 comparison (E5).
//! * `components` — substrate throughput: the processor-sharing server,
//!   cache policies, predictors, samplers, and the §4 tagged estimator.
//! * `endtoend` — whole-simulator runs: the parametric validator (E7) and
//!   the trace-driven proxy (E8) at reduced scale.
//!
//! The library half provides shared setup helpers so the suites stay small.

use netsim::parametric::ParametricConfig;
use netsim::traced::{Policy, PredictorKind, TracedConfig};
use prefetch_core::SystemParams;
use workload::synth_web::SynthWebConfig;

/// The paper's Figure-2 parameters with the given panel `h′`.
pub fn fig2_params(h_prime: f64) -> SystemParams {
    SystemParams::paper_figure2(h_prime)
}

/// A reduced-scale parametric configuration for benchmarking.
pub fn small_parametric(size_dist: &dyn simcore::dist::Sample) -> ParametricConfig<'_> {
    ParametricConfig {
        params: fig2_params(0.0),
        n_f: 1.0,
        p: 0.9,
        size_dist,
        requests: 20_000,
        warmup: 2_000,
    }
}

/// A reduced-scale traced configuration for benchmarking.
pub fn small_traced(policy: Policy) -> TracedConfig {
    TracedConfig {
        web: SynthWebConfig {
            n_clients: 8,
            lambda: 30.0,
            n_items: 300,
            branching: 3,
            link_skew: 0.3,
            mean_size: 1.0,
            size_shape: 2.5,
        },
        cache_capacity: 32,
        bandwidth: 60.0,
        predictor: PredictorKind::Markov1,
        policy,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        requests: 15_000,
        warmup: 3_000,
    }
}
