//! # bench — Criterion benchmarks
//!
//! Four benchmark suites (run `cargo bench --workspace`):
//!
//! * `figures` — one benchmark per paper figure (E1–E3): the cost of
//!   regenerating each panel's full data series from the closed forms, plus
//!   the Model-B analogues (E4) and the §6 comparison (E5).
//! * `components` — substrate throughput: the processor-sharing server,
//!   cache policies, predictors, samplers, and the §4 tagged estimator.
//! * `endtoend` — whole-simulator runs: the parametric validator (E7) and
//!   the trace-driven proxy (E8) at reduced scale.
//! * `cluster` — the multi-node event loop (static, adaptive, and
//!   cooperative engines) and the `coop` digest/ring hot paths: the first
//!   perf baseline for the scaling trajectory.
//!
//! The library half provides shared setup helpers so the suites stay small.

use cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, CooperativeWorkload, DelayedHitsConfig,
    ProxyPolicy, StaticProxy, StaticWorkload, Topology, Workload,
};
use coop::CoopConfig;
use netsim::parametric::ParametricConfig;
use netsim::traced::{Policy, PredictorKind, TracedConfig};
use prefetch_core::SystemParams;
use simcore::dist::Sample;
use workload::synth_web::SynthWebConfig;

/// The paper's Figure-2 parameters with the given panel `h′`.
pub fn fig2_params(h_prime: f64) -> SystemParams {
    SystemParams::paper_figure2(h_prime)
}

/// A reduced-scale parametric configuration for benchmarking.
pub fn small_parametric(size_dist: &dyn simcore::dist::Sample) -> ParametricConfig<'_> {
    ParametricConfig {
        params: fig2_params(0.0),
        n_f: 1.0,
        p: 0.9,
        size_dist,
        requests: 20_000,
        warmup: 2_000,
    }
}

/// A reduced-scale open-loop cluster over a shared backbone.
pub fn small_static_cluster(n_proxies: usize, size_dist: &dyn Sample) -> ClusterConfig<'_> {
    ClusterConfig {
        topology: Topology::two_tier(n_proxies, 50.0, 40.0 * n_proxies as f64),
        workload: Workload::Static(StaticWorkload {
            proxies: (0..n_proxies)
                .map(|_| StaticProxy { lambda: 12.0, h_prime: 0.3, n_f: 0.5, p: 0.8 })
                .collect(),
            size_dist,
            catalog_items: None,
        }),
        requests_per_proxy: 10_000,
        warmup_per_proxy: 2_000,
    }
}

/// A reduced-scale closed-loop workload (identical item universe per
/// proxy so the cooperative variant has redundancy to remove).
pub fn small_closed_loop(n_proxies: usize) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: (0..n_proxies)
            .map(|_| SynthWebConfig { lambda: 14.0, link_skew: 0.3, ..SynthWebConfig::default() })
            .collect(),
        cache_capacity: 48,
        cache_bytes: None,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy: ProxyPolicy::Adaptive,
        predictor: CandidateSource::Oracle,
        shared_structure_seed: Some(5),
        delayed: Default::default(),
    }
}

/// A reduced-scale adaptive cluster configuration.
pub fn small_adaptive_cluster(n_proxies: usize) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh(n_proxies, 50.0, 70.0, 45.0),
        workload: Workload::Adaptive(small_closed_loop(n_proxies)),
        requests_per_proxy: 8_000,
        warmup_per_proxy: 1_600,
    }
}

/// A wide-fabric adaptive cluster (backbone scaled with the proxy count,
/// shallow per-proxy request streams): the 16+-proxy event-loop baseline
/// the indexed scheduler is measured on.
pub fn wide_adaptive_cluster(
    n_proxies: usize,
    requests_per_proxy: usize,
) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh(n_proxies, 50.0, 25.0 * n_proxies as f64, 45.0),
        workload: Workload::Adaptive(small_closed_loop(n_proxies)),
        requests_per_proxy,
        warmup_per_proxy: requests_per_proxy / 5,
    }
}

/// A reduced-scale cooperative cluster configuration.
pub fn small_coop_cluster(n_proxies: usize) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh(n_proxies, 50.0, 70.0, 45.0),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: small_closed_loop(n_proxies),
            coop: CoopConfig::default(),
        }),
        requests_per_proxy: 8_000,
        warmup_per_proxy: 1_600,
    }
}

/// A wide-fabric cooperative cluster pinned to one digest refresh
/// strategy — the engine-level `delta_refresh_*` vs `full_rebuild_*`
/// comparison rows. Byte-addressed caches sized so the per-epoch churn
/// sits in the regime the delta protocol targets.
pub fn wide_coop_cluster(
    n_proxies: usize,
    requests_per_proxy: usize,
    refresh: coop::RefreshStrategy,
) -> ClusterConfig<'static> {
    let mut base = small_closed_loop(n_proxies);
    base.cache_capacity = 192;
    base.cache_bytes = Some(160.0);
    ClusterConfig {
        topology: Topology::mesh(n_proxies, 50.0, 25.0 * n_proxies as f64, 45.0),
        workload: Workload::Cooperative(CooperativeWorkload {
            base,
            coop: CoopConfig {
                digest: coop::DigestConfig { epoch: 1.0, bits_per_entry: 10, hashes: 4 },
                refresh,
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy,
        warmup_per_proxy: requests_per_proxy / 5,
    }
}

/// The E17-shaped latency mesh: every link carries a propagation delay,
/// which is both the physically honest WAN model and the conservative
/// lookahead the sharded driver's windows run on. The strong-scaling
/// rows (`sharded_coop_mesh_*`) drive this config through
/// `ClusterSim::run_sharded` at 1 vs 8 shards; their ratio on a
/// multi-core host is the headline speedup, and on any host their
/// reports are bit-identical.
pub fn latency_coop_cluster(
    n_proxies: usize,
    requests_per_proxy: usize,
    latency: f64,
) -> ClusterConfig<'static> {
    ClusterConfig {
        topology: Topology::mesh_with_latency(
            n_proxies,
            50.0,
            25.0 * n_proxies as f64,
            45.0,
            latency,
        ),
        workload: Workload::Cooperative(CooperativeWorkload {
            base: small_closed_loop(n_proxies),
            coop: CoopConfig {
                digest: coop::DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy,
        warmup_per_proxy: requests_per_proxy / 5,
    }
}

/// The E20-shaped delayed-hits mesh: a slow, latency-bearing backbone
/// whose fetch windows span later requests, so the MSHR table actually
/// coalesces. Run with the coalescing table vs the independent-miss
/// baseline, adjacent rows price the table itself (entry bookkeeping,
/// waiter settlement) against the transfers it avoids.
pub fn delayed_adaptive_cluster(
    n_proxies: usize,
    requests_per_proxy: usize,
    delayed: DelayedHitsConfig,
) -> ClusterConfig<'static> {
    let mut base = small_closed_loop(n_proxies);
    base.cache_capacity = 24;
    base.delayed = delayed;
    for (i, p) in base.proxies.iter_mut().enumerate() {
        p.lambda = 24.0 + 4.0 * (i % 4) as f64;
        p.n_items = 160;
    }
    ClusterConfig {
        topology: Topology::mesh_with_latency(n_proxies, 60.0, 6.25 * n_proxies as f64, 45.0, 0.08),
        workload: Workload::Adaptive(base),
        requests_per_proxy,
        warmup_per_proxy: requests_per_proxy / 5,
    }
}

/// A reduced-scale traced configuration for benchmarking.
pub fn small_traced(policy: Policy) -> TracedConfig {
    TracedConfig {
        web: SynthWebConfig {
            n_clients: 8,
            lambda: 30.0,
            n_items: 300,
            branching: 3,
            link_skew: 0.3,
            mean_size: 1.0,
            size_shape: 2.5,
        },
        cache_capacity: 32,
        bandwidth: 60.0,
        predictor: PredictorKind::Markov1,
        policy,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        requests: 15_000,
        warmup: 3_000,
    }
}
