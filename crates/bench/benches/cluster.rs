//! Cluster-scale benchmarks: the multi-node event loop in all three
//! engines, and the `coop` digest/ring hot paths the cooperative mode
//! leans on. These numbers are the perf baseline every later scaling PR
//! (async runtime, sharding, batching) measures against.

use bench::{
    delayed_adaptive_cluster, latency_coop_cluster, small_adaptive_cluster, small_coop_cluster,
    small_static_cluster, wide_adaptive_cluster, wide_coop_cluster,
};
use cluster::{ClusterSim, DelayedHitsConfig};
use coop::{BloomFilter, CoopConfig, DeltaOp, HashRing, RefreshStrategy, Router};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simcore::dist::Exponential;
use simcore::faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan, RetryPolicy};

fn bench_cluster_event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_event_loop");
    let size = Exponential::with_mean(1.0);
    for &n in &[2usize, 4, 16] {
        let config = small_static_cluster(n, &size);
        g.throughput(Throughput::Elements((config.requests_per_proxy * n) as u64));
        g.bench_function(format!("static_two_tier_{n}proxies"), |b| {
            b.iter(|| black_box(ClusterSim::new(&config).run(1)));
        });
    }
    let adaptive = small_adaptive_cluster(3);
    g.throughput(Throughput::Elements((adaptive.requests_per_proxy * 3) as u64));
    g.bench_function("adaptive_mesh_3proxies", |b| {
        b.iter(|| black_box(ClusterSim::new(&adaptive).run(2)));
    });
    // Wide fabrics: where the old O(links + proxies) per-event scan hurt.
    // The `legacy_scan_*` rows drive the same engine core through the
    // retired scan driver, so the indexed-scheduler win reads directly
    // off adjacent lines.
    for &n in &[16usize, 64] {
        let wide = wide_adaptive_cluster(n, 2_000);
        g.throughput(Throughput::Elements((wide.requests_per_proxy * n) as u64));
        g.bench_function(format!("adaptive_mesh_{n}proxies"), |b| {
            b.iter(|| black_box(ClusterSim::new(&wide).run(2)));
        });
        g.bench_function(format!("legacy_scan_adaptive_mesh_{n}proxies"), |b| {
            b.iter(|| black_box(cluster::legacy::run(&wide, 2)));
        });
    }
    let coop = small_coop_cluster(3);
    g.throughput(Throughput::Elements((coop.requests_per_proxy * 3) as u64));
    g.bench_function("cooperative_mesh_3proxies", |b| {
        b.iter(|| black_box(ClusterSim::new(&coop).run(2)));
    });
    // Strong scaling: the 256-proxy cooperative latency mesh through the
    // sharded driver at 1 vs 8 shards. The reports are bit-identical
    // (pinned by `cluster/tests/shard_parity.rs`); the wall-clock ratio
    // of these two rows *is* the strong-scaling speedup, and it is a
    // property of the host's core count — on a single-core runner the
    // rows tie (the window protocol's overhead is noise-level), on an
    // 8-core host the 8-shard row is the one the ROADMAP's ≥3x target is
    // measured on.
    {
        let sharded = latency_coop_cluster(256, 200, 0.05);
        let reqs = (sharded.requests_per_proxy * 256) as u64;
        g.throughput(Throughput::Elements(reqs));
        for shards in [1usize, 8] {
            g.bench_function(format!("sharded_coop_mesh_256proxies_{shards}shards"), |b| {
                b.iter(|| black_box(ClusterSim::new(&sharded).run_sharded(2, shards)));
            });
        }
    }
    // Delayed hits: the coalescing MSHR table vs the independent-miss
    // baseline on the same 64-proxy latency mesh. The mshr row does
    // strictly less network work (each waiter join is a transfer avoided,
    // pinned by `cluster/tests/mshr_parity.rs`); these rows price the
    // table's bookkeeping against that saving at event-loop scope.
    for (label, delayed) in [
        ("mshr", DelayedHitsConfig::default()),
        ("independent", DelayedHitsConfig { coalesce: false, ..Default::default() }),
    ] {
        let config = delayed_adaptive_cluster(64, 1_000, delayed);
        g.throughput(Throughput::Elements((config.requests_per_proxy * 64) as u64));
        g.bench_function(format!("delayed_mesh_64proxies_{label}"), |b| {
            b.iter(|| black_box(ClusterSim::new(&config).run(2)));
        });
    }
    // Fault injection: the same 64-proxy cooperative latency mesh plain,
    // through the fault-aware paths with an empty plan, and under a
    // flapping plan. The first two rows are bit-identical simulations
    // (pinned by `cluster/tests/fault_parity.rs`) — their wall-clock gap
    // *is* the zero-fault overhead of threading `FaultConfig` through the
    // engines, and it should read ≈ 0 off adjacent lines.
    {
        let config = latency_coop_cluster(64, 1_000, 0.05);
        let reqs = (config.requests_per_proxy * 64) as u64;
        let empty = FaultConfig::default();
        let flapping = FaultConfig {
            plan: FaultPlan::new(vec![
                FaultEvent {
                    t: 2.0,
                    kind: FaultKind::LinkDegrade { link: 0, loss: 0.2, latency_factor: 1.5 },
                },
                FaultEvent { t: 4.0, kind: FaultKind::LinkDown { link: 1 } },
                FaultEvent { t: 6.0, kind: FaultKind::LinkUp { link: 1 } },
                FaultEvent { t: 8.0, kind: FaultKind::OriginBrownout { delay: 0.2 } },
                FaultEvent { t: 10.0, kind: FaultKind::ProxyCrash { proxy: 3 } },
                FaultEvent { t: 12.0, kind: FaultKind::LinkUp { link: 0 } },
                FaultEvent { t: 12.0, kind: FaultKind::OriginRestore },
            ]),
            retry: RetryPolicy::default(),
        };
        g.throughput(Throughput::Elements(reqs));
        g.bench_function("chaos_mesh_64proxies_baseline", |b| {
            b.iter(|| black_box(ClusterSim::new(&config).run_sharded(2, 1)));
        });
        g.bench_function("chaos_mesh_64proxies_nofaults", |b| {
            b.iter(|| black_box(ClusterSim::new(&config).run_faulted(2, 1, &empty)));
        });
        g.bench_function("chaos_mesh_64proxies_flapping", |b| {
            b.iter(|| black_box(ClusterSim::new(&config).run_faulted(2, 1, &flapping)));
        });
    }
    // Delta refresh vs the full-rebuild oracle, whole-engine: identical
    // simulations (pinned by the delta-parity suite) differing only in
    // how the epoch boundary regenerates the advertised digests.
    for &n in &[16usize, 64] {
        for (label, strategy) in [
            ("delta_refresh", RefreshStrategy::Deltas),
            ("full_rebuild", RefreshStrategy::FullRebuild),
        ] {
            let config = wide_coop_cluster(n, 1_000, strategy);
            g.throughput(Throughput::Elements((config.requests_per_proxy * n) as u64));
            g.bench_function(format!("{label}_coop_mesh_{n}proxies"), |b| {
                b.iter(|| black_box(ClusterSim::new(&config).run(2)));
            });
        }
    }
    g.finish();
}

fn bench_digest_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("coop_digest");
    let capacity = 1_024usize;
    let keys: Vec<u64> = (0..capacity as u64).map(|k| k * 2_654_435_761).collect();

    g.throughput(Throughput::Elements(capacity as u64));
    g.bench_function("bloom_refresh_1k", |b| {
        let mut filter = BloomFilter::for_capacity(capacity, 10, 4);
        b.iter(|| {
            filter.clear();
            for &k in &keys {
                filter.insert(k);
            }
            black_box(filter.inserted())
        });
    });

    let mut filter = BloomFilter::for_capacity(capacity, 10, 4);
    for &k in &keys {
        filter.insert(k);
    }
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("bloom_lookup_10k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for probe in 0..10_000u64 {
                if filter.contains(probe * 977) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });

    g.bench_function("router_resolve_10k", |b| {
        let mut router = Router::new(4, capacity, CoopConfig::default());
        router.refresh(1.0, |p| keys.iter().skip(p).step_by(4).copied().collect(), &[0.5; 4]);
        b.iter(|| {
            let mut peers = 0usize;
            for probe in 0..10_000u64 {
                if let coop::Resolution::Peer(_) = router.resolve(0, probe * 31) {
                    peers += 1;
                }
            }
            black_box(peers)
        });
    });

    g.bench_function("ring_owner_10k", |b| {
        let ring = HashRing::new(8, 64);
        b.iter(|| {
            let mut acc = 0usize;
            for key in 0..10_000u64 {
                acc = acc.wrapping_add(ring.owner(key));
            }
            black_box(acc)
        });
    });

    // The refresh paths head-to-head at wide fan-outs: a full rebuild
    // re-inserts every proxy's whole cache (O(proxies × capacity) per
    // boundary), the delta path applies only the churn (here 32 ops per
    // proxy per epoch against 1k-entry caches — the ~3% per-epoch turnover
    // real summary caches see). One iteration = one epoch boundary.
    let cache_capacity = 1_024usize;
    let churn = 32u64;
    for &n in &[64usize, 256] {
        let contents: Vec<Vec<u64>> = (0..n as u64)
            .map(|p| (0..cache_capacity as u64).map(|i| p * 1_000_003 + i * 97).collect())
            .collect();
        let loads = vec![0.5; n];
        g.throughput(Throughput::Elements(n as u64 * cache_capacity as u64));
        g.bench_function(format!("full_rebuild_refresh_{n}proxies"), |b| {
            let mut router = Router::new(n, cache_capacity, CoopConfig::default());
            let mut t = 0.0;
            b.iter(|| {
                t += 5.0;
                router.refresh(t, |p| contents[p].clone(), &loads);
                black_box(router.stats().digest_epochs)
            });
        });
        g.throughput(Throughput::Elements(n as u64 * churn));
        g.bench_function(format!("delta_refresh_{n}proxies"), |b| {
            let mut router = Router::new(n, cache_capacity, CoopConfig::default());
            // Seed the first churn window so every later epoch's evict ops
            // have matching inserts (the delta discipline).
            let key = |p: u64, round: u64, i: u64| p * 1_000_003 + (round * churn + i) % 4_096;
            let mut deltas: Vec<Vec<DeltaOp>> = (0..n as u64)
                .map(|p| (0..churn).map(|i| DeltaOp::Insert(key(p, 0, i))).collect())
                .collect();
            router.apply_deltas(5.0, &mut deltas, &loads);
            let mut round = 1u64;
            b.iter(|| {
                let t = (round + 1) as f64 * 5.0;
                let mut deltas: Vec<Vec<DeltaOp>> = (0..n as u64)
                    .map(|p| {
                        (0..churn)
                            .map(|i| DeltaOp::Insert(key(p, round, i)))
                            .chain((0..churn).map(|i| DeltaOp::Evict(key(p, round - 1, i))))
                            .collect()
                    })
                    .collect();
                router.apply_deltas(t, &mut deltas, &loads);
                round += 1;
                black_box(router.stats().delta_ops)
            });
        });
    }
    g.finish();
}

criterion_group!(cluster_suite, bench_cluster_event_loop, bench_digest_hot_path);
criterion_main!(cluster_suite);
