//! One benchmark per paper figure: regenerating the full data series.
//!
//! The absolute numbers are microseconds (closed forms), but the benches
//! pin the figure-generation pipeline and catch pathological regressions
//! in the model code (e.g. an accidental O(n²) in a sweep).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harness::experiments::{e1_fig1, e2_fig2, e3_fig3, e4_modelb, e5_compare};
use prefetch_core::SystemParams;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.bench_function("panel_h0", |b| {
        b.iter(|| black_box(e1_fig1::panel(0.0, 80)));
    });
    g.bench_function("panel_h03", |b| {
        b.iter(|| black_box(e1_fig1::panel(0.3, 80)));
    });
    g.bench_function("full_render", |b| {
        b.iter(|| black_box(e1_fig1::render()));
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.bench_function("panel_h0", |b| {
        b.iter(|| black_box(e2_fig2::panel(0.0, 80)));
    });
    g.bench_function("panel_h03", |b| {
        b.iter(|| black_box(e2_fig2::panel(0.3, 80)));
    });
    g.bench_function("full_render", |b| {
        b.iter(|| black_box(e2_fig2::render()));
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.bench_function("panel_h0", |b| {
        b.iter(|| black_box(e3_fig3::panel(0.0, 80)));
    });
    g.bench_function("full_render", |b| {
        b.iter(|| black_box(e3_fig3::render()));
    });
    g.finish();
}

fn bench_derived_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("derived");
    g.bench_function("e4_modelb_g_curve", |b| {
        b.iter(|| black_box(e4_modelb::g_curve(0.3, 0.8, 20.0, 80)));
    });
    g.bench_function("e5_convergence", |b| {
        let params = SystemParams::paper_figure2(0.3);
        b.iter(|| black_box(e5_compare::convergence(params, 1.0, 0.8)));
    });
    g.finish();
}

criterion_group!(figures, bench_fig1, bench_fig2, bench_fig3, bench_derived_figures);
criterion_main!(figures);
