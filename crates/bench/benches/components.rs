//! Substrate throughput benchmarks: the building blocks every experiment
//! leans on.

use cachesim::{LruCache, ReplacementCache, TaggedCache};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use predictor::{MarkovPredictor, Predictor};
use queueing::driver::poisson_arrivals;
use queueing::{drive, PsServer};
use simcore::dist::{Exponential, Sample, Zipf};
use simcore::rng::Rng;

fn bench_ps_server(c: &mut Criterion) {
    let mut g = c.benchmark_group("ps_server");
    for &n in &[1_000usize, 10_000] {
        let mut rng = Rng::new(1);
        let arrivals = poisson_arrivals(0.7, &Exponential::with_mean(1.0), n, &mut rng);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("drive_{n}_jobs"), |b| {
            b.iter(|| {
                let mut server = PsServer::new(1.0);
                black_box(drive(&mut server, &arrivals))
            });
        });
    }
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("caches");
    let mut rng = Rng::new(2);
    let zipf = Zipf::new(10_000, 0.9);
    let keys: Vec<u64> = (0..100_000).map(|_| zipf.sample_rank(&mut rng) as u64).collect();
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("lru_zipf_stream", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(1024);
            let mut hits = 0u64;
            for &k in &keys {
                if cache.touch(k) {
                    hits += 1;
                } else {
                    cache.insert(k);
                }
            }
            black_box(hits)
        });
    });
    g.bench_function("tagged_lru_zipf_stream", |b| {
        b.iter(|| {
            let mut cache = TaggedCache::new(LruCache::new(1024));
            for &k in &keys {
                cache.access(k);
            }
            black_box(cache.estimate_h_prime())
        });
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    let mut rng = Rng::new(3);
    let mut chain = workload::MarkovChain::random(500, 4, 0.5, &mut rng);
    let stream: Vec<workload::ItemId> =
        (0..50_000).map(|_| workload::RequestStream::next_item(&mut chain, &mut rng)).collect();
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("markov1_observe_predict", |b| {
        b.iter(|| {
            let mut p = MarkovPredictor::new(1);
            for &item in &stream {
                p.observe(item);
            }
            black_box(p.candidates(4))
        });
    });
    g.bench_function("lz78_observe_predict", |b| {
        b.iter(|| {
            let mut p = predictor::Lz78Predictor::new();
            for &item in &stream {
                p.observe(item);
            }
            black_box(p.candidates(4))
        });
    });
    g.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("samplers");
    let zipf = Zipf::new(100_000, 0.8);
    let exp = Exponential::with_mean(1.0);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("zipf_alias_10k", |b| {
        let mut rng = Rng::new(4);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(zipf.sample_rank(&mut rng));
            }
            black_box(acc)
        });
    });
    g.bench_function("exponential_10k", |b| {
        let mut rng = Rng::new(5);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += exp.sample(&mut rng);
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(components, bench_ps_server, bench_caches, bench_predictors, bench_samplers);
criterion_main!(components);
