//! Whole-simulator benchmarks: the parametric validator (E7's engine) and
//! the trace-driven proxy (E8's engine) at reduced scale.

use bench::{small_parametric, small_traced};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netsim::traced::Policy;
use simcore::dist::Exponential;

fn bench_parametric(c: &mut Criterion) {
    let mut g = c.benchmark_group("parametric_sim");
    g.sample_size(20);
    let size = Exponential::with_mean(1.0);
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("20k_requests_with_prefetch", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = small_parametric(&size);
            black_box(netsim::parametric::run(&config, seed))
        });
    });
    g.finish();
}

fn bench_traced(c: &mut Criterion) {
    let mut g = c.benchmark_group("traced_sim");
    g.sample_size(10);
    g.throughput(Throughput::Elements(15_000));
    for (label, policy) in [("no_prefetch", Policy::NoPrefetch), ("adaptive", Policy::Adaptive)] {
        g.bench_function(format!("15k_requests_{label}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let config = small_traced(policy);
                black_box(netsim::traced::run(&config, seed))
            });
        });
    }
    g.finish();
}

criterion_group!(endtoend, bench_parametric, bench_traced);
criterion_main!(endtoend);
