//! Trace scaling: superpose K time-dilated copies with disjoint key spaces.
//!
//! One recorded trace becomes a K×-heavier workload: copy `k` runs at a
//! slightly different clock rate (`1 / dilation(k)` speed), touches keys
//! offset by `k * key_stride`, and presents clients offset by
//! `k * client_stride`. Because the copies share no keys, the scaled trace
//! models K independent user populations hitting the same proxy fabric —
//! the standard way trace-driven cache studies synthesize
//! millions-of-users load from one capture.
//!
//! [`ScaledStream`] performs the superposition as a lazy K-way merge over
//! independent [`TraceStream`]s, so memory stays O(K × chunk);
//! [`TraceScaler::scale_records`] is the eager equivalent for small traces
//! and produces the identical ordering.

use crate::catalog::ItemId;
use crate::events::{TraceError, TraceSource, TraceStream};
use crate::trace::TraceRecord;
use std::io::Read;

/// Parameters of a K-copy superposition.
#[derive(Clone, Copy, Debug)]
pub struct TraceScaler {
    /// Number of time-dilated copies to superpose (≥ 1).
    pub copies: u32,
    /// Copy `k` has its times multiplied by `1 + k * dilation_step`, so
    /// copies drift apart instead of striking in lockstep.
    pub dilation_step: f64,
    /// Key offset between copies; must exceed the source's key range.
    pub key_stride: u64,
    /// Client-id offset between copies.
    pub client_stride: u32,
}

impl TraceScaler {
    /// Time-dilation factor applied to copy `copy`.
    pub fn dilation(&self, copy: u32) -> f64 {
        1.0 + f64::from(copy) * self.dilation_step
    }

    /// Maps a source record into copy `copy`'s time/key/client space.
    pub fn transform(&self, copy: u32, rec: TraceRecord) -> TraceRecord {
        let item = rec
            .item
            .0
            .checked_add(u64::from(copy) * self.key_stride)
            .expect("scaled key space overflows u64");
        let client = rec
            .client
            .checked_add(copy.checked_mul(self.client_stride).expect("client stride overflows u32"))
            .expect("scaled client space overflows u32");
        TraceRecord {
            time: rec.time * self.dilation(copy),
            client,
            item: ItemId(item),
            size: rec.size,
        }
    }

    /// Lazily superposes `copies` independent streams of the same source
    /// trace. The streams must all read identical records (e.g. come from
    /// the same [`TraceSource`]).
    pub fn superpose<R: Read>(self, streams: Vec<TraceStream<R>>) -> ScaledStream<R> {
        assert!(self.copies >= 1, "need at least one copy");
        assert_eq!(streams.len(), self.copies as usize, "one stream per copy");
        let heads = vec![None; streams.len()];
        ScaledStream { scaler: self, streams, heads, primed: false, failed: false }
    }

    /// Opens `copies` streams over `source` and superposes them; total
    /// resident memory is O(copies × chunk).
    pub fn scale(
        self,
        source: &TraceSource,
        chunk_records: usize,
    ) -> Result<ScaledStream<Box<dyn Read + Send>>, TraceError> {
        let streams =
            (0..self.copies).map(|_| source.open(chunk_records)).collect::<Result<Vec<_>, _>>()?;
        Ok(self.superpose(streams))
    }

    /// Eager equivalent of [`Self::scale`] for in-memory traces; the output
    /// ordering matches the lazy merge exactly (time, then copy index).
    pub fn scale_records(self, records: &[TraceRecord]) -> Vec<TraceRecord> {
        assert!(self.copies >= 1, "need at least one copy");
        let mut out: Vec<(u32, TraceRecord)> =
            Vec::with_capacity(records.len() * self.copies as usize);
        for copy in 0..self.copies {
            for rec in records {
                out.push((copy, self.transform(copy, *rec)));
            }
        }
        out.sort_by(|a, b| a.1.time.total_cmp(&b.1.time).then(a.0.cmp(&b.0)));
        out.into_iter().map(|(_, r)| r).collect()
    }
}

/// Lazy K-way merge of time-dilated trace copies, ordered by
/// `(time, copy index)`. Yields the first error from any underlying stream
/// and then fuses.
pub struct ScaledStream<R: Read> {
    scaler: TraceScaler,
    streams: Vec<TraceStream<R>>,
    heads: Vec<Option<TraceRecord>>,
    primed: bool,
    failed: bool,
}

impl<R: Read> ScaledStream<R> {
    /// Total records the merge will yield (sum of the copies' counts).
    pub fn count(&self) -> u64 {
        self.streams.iter().map(|s| s.count()).sum()
    }

    /// Sum of the underlying streams' resident high-water marks.
    pub fn peak_resident_bytes(&self) -> usize {
        self.streams.iter().map(|s| s.peak_resident_bytes()).sum()
    }

    fn pull(&mut self, copy: usize) -> Result<(), TraceError> {
        self.heads[copy] = match self.streams[copy].next() {
            Some(Ok(rec)) => Some(self.scaler.transform(copy as u32, rec)),
            Some(Err(e)) => return Err(e),
            None => None,
        };
        Ok(())
    }
}

impl<R: Read> Iterator for ScaledStream<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if !self.primed {
            self.primed = true;
            for copy in 0..self.streams.len() {
                if let Err(e) = self.pull(copy) {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        let mut best: Option<usize> = None;
        for (copy, head) in self.heads.iter().enumerate() {
            if let Some(rec) = head {
                let better = match best {
                    None => true,
                    Some(b) => {
                        let bt = self.heads[b].expect("best head present").time;
                        rec.time.total_cmp(&bt).is_lt()
                    }
                };
                if better {
                    best = Some(copy);
                }
            }
        }
        let copy = best?;
        let rec = self.heads[copy].take().expect("selected head present");
        if let Err(e) = self.pull(copy) {
            self.failed = true;
            return Some(Err(e));
        }
        Some(Ok(rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::encode_events;

    fn scaler(copies: u32) -> TraceScaler {
        TraceScaler { copies, dilation_step: 0.25, key_stride: 1000, client_stride: 100 }
    }

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(0.0, 0, ItemId(1), 1.0),
            TraceRecord::new(1.0, 1, ItemId(2), 2.0),
            TraceRecord::new(3.0, 0, ItemId(3), 0.5),
        ]
    }

    #[test]
    fn scale_multiplies_records_and_offsets_keys() {
        let recs = sample();
        let scaled = scaler(3).scale_records(&recs);
        assert_eq!(scaled.len(), 3 * recs.len());
        for copy in 0..3u64 {
            let lo = copy * 1000;
            let in_copy = scaled.iter().filter(|r| r.item.0 >= lo && r.item.0 < lo + 1000).count();
            assert_eq!(in_copy, recs.len(), "copy {copy} keeps its own key range");
        }
    }

    #[test]
    fn scaled_times_are_sorted() {
        let scaled = scaler(4).scale_records(&sample());
        for w in scaled.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn lazy_merge_matches_eager_scaling() {
        let recs = sample();
        let src = TraceSource::from_records(&recs).unwrap();
        let lazy: Vec<_> = scaler(3).scale(&src, 2).unwrap().map(Result::unwrap).collect();
        assert_eq!(lazy, scaler(3).scale_records(&recs));
    }

    #[test]
    fn scaled_stream_is_valid_events_input() {
        // The merged output must itself satisfy the .events invariants
        // (non-decreasing time), so it can be written back out.
        let recs = sample();
        let scaled = scaler(4).scale_records(&recs);
        assert!(encode_events(&scaled).is_ok());
    }

    #[test]
    fn single_copy_is_identity() {
        let recs = sample();
        assert_eq!(scaler(1).scale_records(&recs), recs);
    }

    #[test]
    fn merge_propagates_stream_errors() {
        let recs = sample();
        let mut bytes = encode_events(&recs).unwrap();
        let cut = bytes.len() - 3;
        bytes.truncate(cut);
        let streams =
            vec![TraceStream::open(&bytes[..]).unwrap(), TraceStream::open(&bytes[..]).unwrap()];
        let results: Vec<_> = scaler(2).superpose(streams).collect();
        assert!(results.iter().any(|r| matches!(r, Err(TraceError::Truncated { .. }))));
        assert!(results.last().unwrap().is_err(), "stream fuses after error");
    }
}
