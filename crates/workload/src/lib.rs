//! # workload — request streams for the prefetching simulators
//!
//! The paper's analysis is parametric: it only sees `(λ, s̄, h′, p, n̄(F))`.
//! To *validate* it against a running system we need request streams whose
//! parameters we control and whose structure predictors can learn:
//!
//! * [`catalog`] — item catalogs: identities, sizes, Zipf/uniform popularity.
//! * [`arrivals`] — arrival processes: Poisson, deterministic, MMPP
//!   (bursty), for the `λ` axis.
//! * [`markov`] — Markov-chain reference streams: the classic model under
//!   which speculative prediction is well-posed (Vitter & Krishnan's
//!   setting); also the ground truth against which predictors are scored.
//! * [`lru_stack`] — stack-distance streams with a *controllable* LRU hit
//!   ratio, giving direct command of the paper's `h′` knob.
//! * [`trace`] — serialisable trace records (JSON-lines and a compact
//!   binary format) so experiments can be replayed.
//! * [`events`] — the versioned `.events` binary trace format: a chunked
//!   [`TraceStream`] reader that validates records and never materializes
//!   the trace, plus the matching [`EventsWriter`].
//! * [`scale`] — [`TraceScaler`]: superpose K time-dilated copies of one
//!   trace with disjoint key spaces, to synthesize production-scale load.
//! * [`synth_web`] — a synthetic web-proxy workload combining all of the
//!   above (the substitution for the proprietary proxy logs of the era;
//!   see DESIGN.md §7).

pub mod arrivals;
pub mod catalog;
pub mod events;
pub mod lru_stack;
pub mod markov;
pub mod scale;
pub mod sessions;
pub mod synth_web;
pub mod trace;

pub use arrivals::{ArrivalProcess, Mmpp2, PoissonArrivals};
pub use catalog::{Catalog, ItemId};
pub use events::{EventsWriter, TraceError, TraceSource, TraceStream};
pub use lru_stack::LruStackStream;
pub use markov::MarkovChain;
pub use scale::{ScaledStream, TraceScaler};
pub use sessions::{SessionArrivals, SessionProfile};
pub use trace::{TraceReader, TraceRecord, TraceWriter};

use simcore::rng::Rng;

/// A source of item references (one per user request).
pub trait RequestStream {
    /// The next referenced item.
    fn next_item(&mut self, rng: &mut Rng) -> ItemId;
}

/// Independent reference model (IRM): IID draws from the catalog's
/// popularity distribution. The simplest stream under which hit ratios are
/// analytically predictable.
pub struct IrmStream<'a> {
    pub catalog: &'a Catalog,
}

impl RequestStream for IrmStream<'_> {
    fn next_item(&mut self, rng: &mut Rng) -> ItemId {
        self.catalog.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irm_stream_draws_from_catalog() {
        let mut rng = Rng::new(1);
        let catalog = Catalog::zipf(100, 0.8, 1.0, &mut rng);
        let mut stream = IrmStream { catalog: &catalog };
        for _ in 0..1000 {
            let id = stream.next_item(&mut rng);
            assert!(id.0 < 100);
        }
    }
}
