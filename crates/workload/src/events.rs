//! Versioned `.events` binary trace format with a streaming reader.
//!
//! The legacy [`crate::trace`] binary format is header-less: any byte blob
//! whose length is a multiple of 28 decodes "successfully". For multi-GB
//! recorded traces that is unacceptable, so this module defines the
//! production format:
//!
//! ```text
//! magic "PFEV" (4 B) | version u16 LE | reserved u16 LE (0) | count u64 LE
//! record * count, 28 B each: time f64 | client u32 | item u64 | size f64
//! ```
//!
//! and two ways to consume it:
//!
//! * [`TraceStream`] — chunked lazy iterator. Reads `chunk_records` records
//!   into an internal buffer at a time, so peak resident memory is
//!   O(chunk), never O(trace). Every record is validated (finite
//!   non-negative time and size, non-decreasing time) as it is yielded.
//! * [`read_events`] — convenience that materializes a whole (small) trace
//!   through the same validating stream.
//!
//! [`EventsWriter`] is the encoding half: it pins the declared record count
//! against what was actually written and refuses non-finite or
//! time-regressing records, so a file it produces always round-trips.

use crate::catalog::ItemId;
use crate::trace::TraceRecord;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic: "PFEV" (prefetch events).
pub const MAGIC: [u8; 4] = *b"PFEV";
/// Current format version.
pub const VERSION: u16 = 1;
/// Header size in bytes: magic + version + reserved + record count.
pub const HEADER_BYTES: usize = 16;
/// Record size in bytes (same layout as the legacy binary format).
pub const RECORD_BYTES: usize = 28;
/// Default chunk size for [`TraceStream`], in records (112 KiB resident).
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// Everything that can go wrong reading or writing an `.events` trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The first four bytes were not the `PFEV` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u16),
    /// Reserved header field was non-zero.
    BadReserved(u16),
    /// Input ended before the declared record count was read.
    Truncated {
        /// Bytes the header still promised.
        expected: u64,
        /// Bytes actually available.
        got: u64,
    },
    /// Bytes remain after the declared record count.
    TrailingBytes,
    /// A record failed validation.
    BadRecord {
        /// Zero-based record index.
        index: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Writer finished with fewer records than the header declared, or was
    /// handed more.
    CountMismatch {
        /// Count declared in the header.
        declared: u64,
        /// Records actually written.
        written: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => write!(f, "bad trace magic {m:?} (want {MAGIC:?})"),
            TraceError::BadVersion(v) => {
                write!(f, "unsupported trace version {v} (want {VERSION})")
            }
            TraceError::BadReserved(r) => write!(f, "reserved header field is {r}, must be 0"),
            TraceError::Truncated { expected, got } => {
                write!(f, "truncated trace: expected {expected} more byte(s), got {got}")
            }
            TraceError::TrailingBytes => write!(f, "trailing bytes after declared record count"),
            TraceError::BadRecord { index, reason } => {
                write!(f, "invalid record {index}: {reason}")
            }
            TraceError::CountMismatch { declared, written } => {
                write!(f, "record count mismatch: header declares {declared}, wrote {written}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Validates one record: finite non-negative time and size, and time not
/// before `prev_time`. Shared by the streaming reader, the writer, and the
/// legacy [`crate::trace::decode_binary`] path.
pub fn validate_record(rec: &TraceRecord, prev_time: Option<f64>) -> Result<(), String> {
    if !rec.time.is_finite() {
        return Err(format!("non-finite time {:?}", rec.time));
    }
    if rec.time < 0.0 {
        return Err(format!("negative time {:?}", rec.time));
    }
    if !rec.size.is_finite() {
        return Err(format!("non-finite size {:?}", rec.size));
    }
    if rec.size < 0.0 {
        return Err(format!("negative size {:?}", rec.size));
    }
    if let Some(prev) = prev_time {
        if rec.time < prev {
            return Err(format!("time {:?} decreases below {prev:?}", rec.time));
        }
    }
    Ok(())
}

fn decode_record(bytes: &[u8]) -> TraceRecord {
    let f64_at = |b: &[u8]| f64::from_le_bytes(b.try_into().expect("8-byte slice"));
    TraceRecord {
        time: f64_at(&bytes[0..8]),
        client: u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice")),
        item: ItemId(u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice"))),
        size: f64_at(&bytes[20..28]),
    }
}

fn encode_record(rec: &TraceRecord, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&rec.time.to_le_bytes());
    buf.extend_from_slice(&rec.client.to_le_bytes());
    buf.extend_from_slice(&rec.item.0.to_le_bytes());
    buf.extend_from_slice(&rec.size.to_le_bytes());
}

/// Chunked, validating reader over an `.events` input.
///
/// Iterates `Result<TraceRecord, TraceError>` lazily: at most
/// `chunk_records * 28` trace bytes are resident at any time
/// ([`Self::peak_resident_bytes`] reports the observed high-water mark).
/// After the first error the stream fuses and yields `None`.
pub struct TraceStream<R: Read> {
    input: R,
    version: u16,
    count: u64,
    yielded: u64,
    buf: Vec<u8>,
    pos: usize,
    last_time: Option<f64>,
    chunk_records: usize,
    peak_resident: usize,
    done: bool,
}

impl<R: Read> TraceStream<R> {
    /// Opens a stream with the default chunk size, parsing and checking the
    /// header immediately.
    pub fn open(input: R) -> Result<Self, TraceError> {
        Self::with_chunk(input, DEFAULT_CHUNK_RECORDS)
    }

    /// Opens a stream reading `chunk_records` records per refill.
    pub fn with_chunk(mut input: R, chunk_records: usize) -> Result<Self, TraceError> {
        assert!(chunk_records > 0, "chunk_records must be positive");
        let mut header = [0u8; HEADER_BYTES];
        let mut got = 0usize;
        while got < HEADER_BYTES {
            match input.read(&mut header[got..])? {
                0 => {
                    return Err(TraceError::Truncated {
                        expected: (HEADER_BYTES - got) as u64,
                        got: 0,
                    })
                }
                n => got += n,
            }
        }
        if header[0..4] != MAGIC {
            return Err(TraceError::BadMagic(header[0..4].try_into().expect("4-byte slice")));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let reserved = u16::from_le_bytes(header[6..8].try_into().expect("2-byte slice"));
        if reserved != 0 {
            return Err(TraceError::BadReserved(reserved));
        }
        let count = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
        Ok(TraceStream {
            input,
            version,
            count,
            yielded: 0,
            buf: Vec::new(),
            pos: 0,
            last_time: None,
            chunk_records,
            peak_resident: 0,
            done: false,
        })
    }

    /// Record count declared in the header.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Format version read from the header.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Largest trace buffer held at any point so far (bytes). Pinned at
    /// `chunk_records * RECORD_BYTES` regardless of trace length.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }

    fn refill(&mut self) -> Result<(), TraceError> {
        self.buf.clear();
        self.pos = 0;
        let remaining = (self.count - self.yielded).min(self.chunk_records as u64);
        let want = remaining as usize * RECORD_BYTES;
        let got = (&mut self.input).take(want as u64).read_to_end(&mut self.buf)?;
        if got < want {
            return Err(TraceError::Truncated { expected: (want - got) as u64, got: got as u64 });
        }
        self.peak_resident = self.peak_resident.max(self.buf.len());
        Ok(())
    }

    fn next_inner(&mut self) -> Option<Result<TraceRecord, TraceError>> {
        if self.done {
            return None;
        }
        if self.yielded == self.count {
            self.done = true;
            // Declared count exhausted: anything left in the input is junk.
            let mut probe = [0u8; 1];
            return match self.input.read(&mut probe) {
                Ok(0) => None,
                Ok(_) => Some(Err(TraceError::TrailingBytes)),
                Err(e) => Some(Err(TraceError::Io(e))),
            };
        }
        if self.pos == self.buf.len() {
            if let Err(e) = self.refill() {
                self.done = true;
                return Some(Err(e));
            }
        }
        let rec = decode_record(&self.buf[self.pos..self.pos + RECORD_BYTES]);
        if let Err(reason) = validate_record(&rec, self.last_time) {
            self.done = true;
            return Some(Err(TraceError::BadRecord { index: self.yielded, reason }));
        }
        self.pos += RECORD_BYTES;
        self.yielded += 1;
        self.last_time = Some(rec.time);
        Some(Ok(rec))
    }
}

impl<R: Read> Iterator for TraceStream<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_inner()
    }
}

/// Writes an `.events` stream, validating as it goes.
///
/// The header (including the declared record count) is written up front, so
/// the sink needs no `Seek`; [`Self::finish`] errors if the written count
/// does not match the declaration.
pub struct EventsWriter<W: Write> {
    out: W,
    declared: u64,
    written: u64,
    last_time: Option<f64>,
}

impl<W: Write> EventsWriter<W> {
    /// Starts a stream that will carry exactly `count` records.
    pub fn new(mut out: W, count: u64) -> Result<Self, TraceError> {
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?;
        out.write_all(&count.to_le_bytes())?;
        Ok(EventsWriter { out, declared: count, written: 0, last_time: None })
    }

    /// Appends one record; rejects over-count, non-finite, and
    /// time-regressing records.
    pub fn write(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        if self.written == self.declared {
            return Err(TraceError::CountMismatch {
                declared: self.declared,
                written: self.written + 1,
            });
        }
        if let Err(reason) = validate_record(rec, self.last_time) {
            return Err(TraceError::BadRecord { index: self.written, reason });
        }
        let mut buf = Vec::with_capacity(RECORD_BYTES);
        encode_record(rec, &mut buf);
        self.out.write_all(&buf)?;
        self.last_time = Some(rec.time);
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the sink; errors unless exactly the declared
    /// number of records was written.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.written != self.declared {
            return Err(TraceError::CountMismatch {
                declared: self.declared,
                written: self.written,
            });
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Encodes a full record slice into `.events` bytes (header + records).
pub fn encode_events(records: &[TraceRecord]) -> Result<Vec<u8>, TraceError> {
    let mut w = EventsWriter::new(Vec::new(), records.len() as u64)?;
    for r in records {
        w.write(r)?;
    }
    w.finish()
}

/// Decodes `.events` bytes fully, through the validating stream.
pub fn read_events(bytes: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
    TraceStream::open(bytes)?.collect()
}

/// Writes a record slice to `path` as an `.events` file.
pub fn write_events_file(path: &Path, records: &[TraceRecord]) -> Result<(), TraceError> {
    let mut w = EventsWriter::new(BufWriter::new(File::create(path)?), records.len() as u64)?;
    for r in records {
        w.write(r)?;
    }
    w.finish()?.flush()?;
    Ok(())
}

/// `Arc<Vec<u8>>` adapter so in-memory traces can back an `io::Cursor`
/// without cloning the bytes per reader.
#[derive(Clone, Debug)]
struct ArcBytes(Arc<Vec<u8>>);

impl AsRef<[u8]> for ArcBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Cheap, cloneable handle to an `.events` trace — either a file on disk or
/// shared in-memory bytes. Each [`Self::open`] call yields an independent
/// chunked [`TraceStream`], so many shards can replay the same trace
/// concurrently at O(chunk) memory each.
#[derive(Clone, Debug)]
pub enum TraceSource {
    /// Trace stored on disk.
    Path(PathBuf),
    /// Trace held in memory, shared between readers.
    Bytes(Arc<Vec<u8>>),
}

impl TraceSource {
    /// Builds an in-memory source by encoding `records`.
    pub fn from_records(records: &[TraceRecord]) -> Result<Self, TraceError> {
        Ok(TraceSource::Bytes(Arc::new(encode_events(records)?)))
    }

    /// Opens an independent validating stream over this source.
    pub fn open(
        &self,
        chunk_records: usize,
    ) -> Result<TraceStream<Box<dyn Read + Send>>, TraceError> {
        let reader: Box<dyn Read + Send> = match self {
            TraceSource::Path(p) => Box::new(File::open(p)?),
            TraceSource::Bytes(b) => Box::new(io::Cursor::new(ArcBytes(Arc::clone(b)))),
        };
        TraceStream::with_chunk(reader, chunk_records)
    }

    /// Record count declared in the source's header.
    pub fn count(&self) -> Result<u64, TraceError> {
        // Explicit form: `Iterator::count` would shadow the inherent
        // accessor on a by-value stream.
        let stream = self.open(1)?;
        Ok(TraceStream::count(&stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(0.0, 0, ItemId(1), 1.0),
            TraceRecord::new(0.5, 1, ItemId(2), 2.0),
            TraceRecord::new(0.5, 2, ItemId(3), 0.25),
            TraceRecord::new(3.0, 0, ItemId(1), 1.0),
        ]
    }

    #[test]
    fn events_roundtrip() {
        let recs = sample();
        let bytes = encode_events(&recs).unwrap();
        assert_eq!(bytes.len(), HEADER_BYTES + recs.len() * RECORD_BYTES);
        assert_eq!(read_events(&bytes).unwrap(), recs);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode_events(&[]).unwrap();
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(read_events(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn stream_chunks_and_pins_memory() {
        let recs: Vec<TraceRecord> =
            (0..1000).map(|i| TraceRecord::new(i as f64, 0, ItemId(i), 1.0)).collect();
        let bytes = encode_events(&recs).unwrap();
        let mut stream = TraceStream::with_chunk(&bytes[..], 8).unwrap();
        let mut n = 0u64;
        for r in &mut stream {
            r.unwrap();
            n += 1;
        }
        assert_eq!(n, 1000);
        assert_eq!(stream.peak_resident_bytes(), 8 * RECORD_BYTES);
    }

    #[test]
    fn bad_magic_errors() {
        let mut bytes = encode_events(&sample()).unwrap();
        bytes[0] = b'X';
        assert!(matches!(TraceStream::open(&bytes[..]), Err(TraceError::BadMagic(_))));
    }

    #[test]
    fn bad_version_errors() {
        let mut bytes = encode_events(&sample()).unwrap();
        bytes[4] = 99;
        assert!(matches!(TraceStream::open(&bytes[..]), Err(TraceError::BadVersion(99))));
    }

    #[test]
    fn bad_reserved_errors() {
        let mut bytes = encode_events(&sample()).unwrap();
        bytes[6] = 1;
        assert!(matches!(TraceStream::open(&bytes[..]), Err(TraceError::BadReserved(1))));
    }

    #[test]
    fn truncated_body_errors() {
        let bytes = encode_events(&sample()).unwrap();
        let cut = &bytes[..bytes.len() - 5];
        let last = TraceStream::open(cut).unwrap().last().unwrap();
        assert!(matches!(last, Err(TraceError::Truncated { .. })));
    }

    #[test]
    fn truncated_header_errors() {
        let bytes = encode_events(&sample()).unwrap();
        assert!(matches!(TraceStream::open(&bytes[..7]), Err(TraceError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = encode_events(&sample()).unwrap();
        bytes.push(0);
        let last = TraceStream::open(&bytes[..]).unwrap().last().unwrap();
        assert!(matches!(last, Err(TraceError::TrailingBytes)));
    }

    #[test]
    fn decreasing_time_rejected_by_reader() {
        let recs = vec![
            TraceRecord::new(2.0, 0, ItemId(1), 1.0),
            TraceRecord::new(1.0, 0, ItemId(2), 1.0),
        ];
        // Bypass the writer's validation by encoding by hand.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        for r in &recs {
            encode_record(r, &mut bytes);
        }
        let results: Vec<_> = TraceStream::open(&bytes[..]).unwrap().collect();
        assert!(results[0].is_ok());
        assert!(matches!(&results[1], Err(TraceError::BadRecord { index: 1, .. })));
        assert_eq!(results.len(), 2, "stream must fuse after the first error");
    }

    #[test]
    fn writer_rejects_non_finite_and_overcount() {
        let mut w = EventsWriter::new(Vec::new(), 1).unwrap();
        let bad = TraceRecord::new(f64::NAN, 0, ItemId(1), 1.0);
        assert!(matches!(w.write(&bad), Err(TraceError::BadRecord { .. })));
        w.write(&TraceRecord::new(1.0, 0, ItemId(1), 1.0)).unwrap();
        let extra = TraceRecord::new(2.0, 0, ItemId(2), 1.0);
        assert!(matches!(w.write(&extra), Err(TraceError::CountMismatch { .. })));
        w.finish().unwrap();
    }

    #[test]
    fn writer_undercount_errors_on_finish() {
        let w = EventsWriter::new(Vec::new(), 2).unwrap();
        assert!(matches!(w.finish(), Err(TraceError::CountMismatch { declared: 2, written: 0 })));
    }

    #[test]
    fn source_opens_independent_streams() {
        let recs = sample();
        let src = TraceSource::from_records(&recs).unwrap();
        assert_eq!(src.count().unwrap(), recs.len() as u64);
        let a: Vec<_> = src.open(2).unwrap().map(Result::unwrap).collect();
        let b: Vec<_> = src.open(64).unwrap().map(Result::unwrap).collect();
        assert_eq!(a, recs);
        assert_eq!(b, recs);
    }
}
