//! Synthetic web-proxy workload.
//!
//! The 2001 paper cites no public trace; the evaluation is purely
//! parametric. For the end-to-end experiments we substitute a synthetic
//! proxy workload with the empirically established shape of the era's web
//! traffic (see DESIGN.md §7): Zipf-popular items, heavy-tailed sizes, and
//! per-client Markov navigation (users follow links, so consecutive
//! requests are correlated — the structure predictors exploit).

use crate::arrivals::{ArrivalProcess, PoissonArrivals};
use crate::catalog::{Catalog, ItemId};
use crate::markov::MarkovChain;
use crate::trace::TraceRecord;
use crate::RequestStream;
use simcore::dist::BoundedPareto;
use simcore::rng::Rng;

/// Configuration of the synthetic proxy workload.
#[derive(Clone, Copy, Debug)]
pub struct SynthWebConfig {
    /// Number of clients behind the proxy.
    pub n_clients: usize,
    /// Aggregate request rate `λ` (requests/second across all clients).
    pub lambda: f64,
    /// Catalogue size (number of distinct pages).
    pub n_items: usize,
    /// Out-degree of the navigation graph (links per page).
    pub branching: usize,
    /// Geometric decay of link-follow probabilities (lower = more skewed =
    /// more predictable navigation).
    pub link_skew: f64,
    /// Mean item size `s̄` (size-units).
    pub mean_size: f64,
    /// Pareto tail exponent for sizes (must be > 1).
    pub size_shape: f64,
}

impl Default for SynthWebConfig {
    fn default() -> Self {
        SynthWebConfig {
            n_clients: 8,
            lambda: 30.0,
            n_items: 500,
            branching: 4,
            link_skew: 0.5,
            mean_size: 1.0,
            size_shape: 2.2,
        }
    }
}

/// Generator state: shared navigation graph, per-client positions.
pub struct SynthWeb {
    pub catalog: Catalog,
    pub chain: MarkovChain,
    arrivals: PoissonArrivals,
    client_states: Vec<ItemId>,
    now: f64,
    config: SynthWebConfig,
}

impl SynthWeb {
    pub fn new(config: SynthWebConfig, rng: &mut Rng) -> Self {
        assert!(config.n_clients > 0 && config.n_items >= 2);
        // Bounded Pareto sizes: cap at 50x the scale to keep the simulation's
        // worst case sane while preserving heavy-tail shape.
        let scale = config.mean_size * (config.size_shape - 1.0) / config.size_shape;
        let size_dist = BoundedPareto::new(config.size_shape, scale, scale * 50.0);
        let catalog = Catalog::with_sizes(config.n_items, 0.8, &size_dist, rng);
        let chain = MarkovChain::random(config.n_items, config.branching, config.link_skew, rng);
        let client_states =
            (0..config.n_clients).map(|_| ItemId(rng.below(config.n_items as u64))).collect();
        SynthWeb {
            catalog,
            chain,
            arrivals: PoissonArrivals::new(config.lambda),
            client_states,
            now: 0.0,
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SynthWebConfig {
        &self.config
    }

    /// Generates the next request.
    pub fn next_request(&mut self, rng: &mut Rng) -> TraceRecord {
        self.now += self.arrivals.next_gap(rng);
        let client = rng.index(self.client_states.len());
        // Advance this client's navigation.
        self.chain.set_state(self.client_states[client]);
        let item = self.chain.next_item(rng);
        self.client_states[client] = item;
        TraceRecord::new(self.now, client as u32, item, self.catalog.size(item))
    }

    /// Generates a trace of `n` requests.
    pub fn generate(&mut self, n: usize, rng: &mut Rng) -> Vec<TraceRecord> {
        (0..n).map(|_| self.next_request(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(rng: &mut Rng) -> SynthWeb {
        SynthWeb::new(SynthWebConfig::default(), rng)
    }

    #[test]
    fn trace_is_time_ordered_with_correct_rate() {
        let mut rng = Rng::new(1);
        let mut w = make(&mut rng);
        let trace = w.generate(50_000, &mut rng);
        for pair in trace.windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
        let span = trace.last().unwrap().time - trace[0].time;
        let rate = (trace.len() - 1) as f64 / span;
        assert!((rate - 30.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn all_clients_participate() {
        let mut rng = Rng::new(2);
        let mut w = make(&mut rng);
        let trace = w.generate(10_000, &mut rng);
        let mut seen = [false; 8];
        for r in &trace {
            seen[r.client as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sizes_match_catalog() {
        let mut rng = Rng::new(3);
        let mut w = make(&mut rng);
        let trace = w.generate(1_000, &mut rng);
        for r in &trace {
            assert_eq!(r.size, w.catalog.size(r.item));
        }
    }

    #[test]
    fn mean_size_near_configured() {
        let mut rng = Rng::new(4);
        let w = make(&mut rng);
        let m = w.catalog.mean_size();
        assert!((m - 1.0).abs() < 0.25, "mean size {m}");
    }

    #[test]
    fn per_client_streams_follow_the_chain() {
        // Every consecutive pair within one client must be a valid
        // transition of the navigation graph.
        let mut rng = Rng::new(5);
        let mut w = make(&mut rng);
        let trace = w.generate(20_000, &mut rng);
        let mut last: Vec<Option<ItemId>> = vec![None; 8];
        let mut checked = 0;
        for r in &trace {
            if let Some(prev) = last[r.client as usize] {
                assert!(
                    w.chain.prob(prev, r.item) > 0.0,
                    "client {} jumped {prev:?}→{:?} with zero probability",
                    r.client,
                    r.item
                );
                checked += 1;
            }
            last[r.client as usize] = Some(r.item);
        }
        assert!(checked > 10_000);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng1 = Rng::new(6);
        let mut w1 = make(&mut rng1);
        let t1 = w1.generate(100, &mut rng1);
        let mut rng2 = Rng::new(6);
        let mut w2 = make(&mut rng2);
        let t2 = w2.generate(100, &mut rng2);
        assert_eq!(t1, t2);
    }
}
