//! User-session arrival structure (ON/OFF sources).
//!
//! The paper's `λ` is an aggregate: really it is many users alternating
//! between *active* browsing (requests separated by think times) and *idle*
//! gaps. The session model generates exactly that — N independent ON/OFF
//! sources — and converges to the Poisson aggregate the analysis assumes
//! when N is large (a property the tests check, justifying the M in the
//! paper's M/G/1).

use crate::arrivals::ArrivalProcess;
use simcore::rng::Rng;

/// Parameters of one ON/OFF user.
#[derive(Clone, Copy, Debug)]
pub struct SessionProfile {
    /// Mean think time between requests within a session (seconds).
    pub think_mean: f64,
    /// Mean number of requests per session (geometric).
    pub session_len_mean: f64,
    /// Mean idle gap between sessions (seconds).
    pub idle_mean: f64,
}

impl SessionProfile {
    pub fn new(think_mean: f64, session_len_mean: f64, idle_mean: f64) -> Self {
        assert!(think_mean > 0.0 && session_len_mean >= 1.0 && idle_mean >= 0.0);
        SessionProfile { think_mean, session_len_mean, idle_mean }
    }

    /// Long-run request rate of one user with this profile: a session of
    /// `L` requests spans `L−1` think gaps plus one idle gap, so
    /// rate = L / ((L−1)·think + idle).
    pub fn rate_per_user(&self) -> f64 {
        let l = self.session_len_mean;
        l / ((l - 1.0) * self.think_mean + self.idle_mean)
    }
}

/// One ON/OFF user generating request instants.
struct UserSource {
    profile: SessionProfile,
    /// Requests remaining in the current session (0 = in idle gap).
    remaining: u64,
    next_time: f64,
}

impl UserSource {
    fn new(profile: SessionProfile, start: f64, rng: &mut Rng) -> Self {
        let mut s = UserSource { profile, remaining: 0, next_time: start };
        s.schedule_next(rng);
        s
    }

    fn draw_session_len(&self, rng: &mut Rng) -> u64 {
        // Geometric with the requested mean (≥ 1).
        let p = 1.0 / self.profile.session_len_mean;
        let mut n = 1;
        while !rng.chance(p) && n < 10_000 {
            n += 1;
        }
        n
    }

    fn schedule_next(&mut self, rng: &mut Rng) {
        if self.remaining == 0 {
            // Idle gap, then a new session.
            self.next_time += rng.exp(1.0 / self.profile.idle_mean.max(1e-9));
            self.remaining = self.draw_session_len(rng);
        } else {
            self.next_time += rng.exp(1.0 / self.profile.think_mean);
        }
    }

    /// Emits this user's next request instant.
    fn pop(&mut self, rng: &mut Rng) -> f64 {
        let t = self.next_time;
        self.remaining -= 1;
        self.schedule_next(rng);
        t
    }
}

/// Superposition of `n_users` ON/OFF sources, exposed as an
/// [`ArrivalProcess`] (merged in time order).
pub struct SessionArrivals {
    users: Vec<UserSource>,
    last_emit: f64,
    profile: SessionProfile,
}

impl SessionArrivals {
    pub fn new(n_users: usize, profile: SessionProfile, rng: &mut Rng) -> Self {
        assert!(n_users > 0);
        let users = (0..n_users)
            .map(|_| {
                // Random phase so sessions do not start in lockstep.
                let phase = rng.f64() * (profile.idle_mean + profile.think_mean);
                UserSource::new(profile, phase, rng)
            })
            .collect();
        SessionArrivals { users, last_emit: 0.0, profile }
    }

    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Which user produces the next request (index of min next_time).
    fn next_user(&self) -> usize {
        self.users
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.next_time.total_cmp(&b.1.next_time))
            .expect("at least one user")
            .0
    }

    /// Next request as `(gap_from_previous, user)`.
    pub fn next_request(&mut self, rng: &mut Rng) -> (f64, usize) {
        let u = self.next_user();
        let t = self.users[u].pop(rng);
        let gap = (t - self.last_emit).max(0.0);
        self.last_emit = t;
        (gap, u)
    }
}

impl ArrivalProcess for SessionArrivals {
    fn next_gap(&mut self, rng: &mut Rng) -> f64 {
        // ArrivalProcess requires strictly positive gaps; merging can give
        // zero when two users collide, so floor at a nanosecond.
        self.next_request(rng).0.max(1e-9)
    }

    fn mean_rate(&self) -> f64 {
        self.users.len() as f64 * self.profile.rate_per_user()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::arrival_times;

    fn profile() -> SessionProfile {
        SessionProfile::new(0.5, 10.0, 5.0)
    }

    #[test]
    fn per_user_rate_formula() {
        let p = profile();
        // 10 requests per 9·0.5 + 5 = 9.5 seconds → 10/9.5 req/s.
        assert!((p.rate_per_user() - 10.0 / 9.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_rate_matches() {
        let mut rng = Rng::new(1);
        let mut s = SessionArrivals::new(20, profile(), &mut rng);
        let times = arrival_times(&mut s, 100_000, &mut rng);
        let span = times.last().unwrap() - times[0];
        let rate = (times.len() - 1) as f64 / span;
        let expected = s.mean_rate();
        assert!((rate - expected).abs() / expected < 0.05, "rate {rate} vs {expected}");
    }

    #[test]
    fn arrivals_are_time_ordered() {
        let mut rng = Rng::new(2);
        let mut s = SessionArrivals::new(5, profile(), &mut rng);
        let times = arrival_times(&mut s, 10_000, &mut rng);
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn every_user_contributes() {
        let mut rng = Rng::new(3);
        let mut s = SessionArrivals::new(8, profile(), &mut rng);
        let mut seen = [false; 8];
        for _ in 0..5_000 {
            let (_, u) = s.next_request(&mut rng);
            seen[u] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn superposition_approaches_poisson() {
        // With many users, the aggregate gap CV² approaches 1 (Palm's
        // theorem) — justifying the paper's Poisson assumption.
        let cv2_of = |n_users: usize, seed: u64| {
            let mut rng = Rng::new(seed);
            let mut s = SessionArrivals::new(n_users, profile(), &mut rng);
            let mut gaps = Vec::with_capacity(60_000);
            // Skip warm-up phase alignment.
            for _ in 0..1_000 {
                s.next_gap(&mut rng);
            }
            for _ in 0..60_000 {
                gaps.push(s.next_gap(&mut rng));
            }
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let cv2_many = cv2_of(50, 5);
        assert!(
            (cv2_many - 1.0).abs() < 0.15,
            "50-user aggregate should look Poisson: CV² {cv2_many}"
        );
    }

    #[test]
    fn bursty_single_user() {
        // One user alone is bursty: within-session gaps (mean 0.5) vs idle
        // gaps (mean 5) → gap CV² well above 1.
        let mut rng = Rng::new(6);
        let mut s = SessionArrivals::new(1, profile(), &mut rng);
        let mut gaps = Vec::new();
        for _ in 0..40_000 {
            gaps.push(s.next_gap(&mut rng));
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.5, "single user CV² {cv2}");
    }
}
