//! Trace records and serialisation.
//!
//! Experiments can persist their request streams and replay them, so
//! analytic and simulated runs see byte-identical workloads. Two formats:
//!
//! * **JSON lines** — greppable, diffable, slow; the codec is hand-rolled
//!   (four flat numeric fields) so the workspace carries no JSON dependency;
//! * **binary** — 28 bytes/record little-endian, for long traces.

use crate::catalog::ItemId;
use std::io::{self, BufRead, Write};

/// One request in a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Request time (seconds).
    pub time: f64,
    /// Issuing client.
    pub client: u32,
    /// Referenced item.
    pub item: ItemId,
    /// Item size (size-units).
    pub size: f64,
}

impl TraceRecord {
    pub fn new(time: f64, client: u32, item: ItemId, size: f64) -> Self {
        TraceRecord { time, client, item, size }
    }

    /// Renders the record as one JSON object (field order fixed; floats in
    /// Rust `{:?}` form, which always carries a decimal point or exponent).
    fn to_json(self) -> String {
        format!(
            "{{\"time\":{:?},\"client\":{},\"item\":{},\"size\":{:?}}}",
            self.time, self.client, self.item.0, self.size
        )
    }

    /// Parses one JSON object with exactly the four record fields, in any
    /// order, with optional whitespace. Duplicate fields are rejected: a
    /// record like `{"time":1.0,"time":2.0,...}` is corrupt input, not a
    /// last-wins override.
    fn from_json(s: &str) -> Result<Self, String> {
        let body = s
            .trim()
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| format!("not a JSON object: {s:?}"))?;
        let (mut time, mut client, mut item, mut size) = (None, None, None, None);
        fn set<T>(slot: &mut Option<T>, value: T, key: &str) -> Result<(), String> {
            if slot.is_some() {
                return Err(format!("duplicate field {key:?}"));
            }
            *slot = Some(value);
            Ok(())
        }
        for field in body.split(',') {
            let (key, value) =
                field.split_once(':').ok_or_else(|| format!("malformed field: {field:?}"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("malformed key: {key:?}"))?;
            let value = value.trim();
            match key {
                "time" => set(&mut time, value.parse::<f64>().map_err(|e| e.to_string())?, key)?,
                "client" => {
                    set(&mut client, value.parse::<u32>().map_err(|e| e.to_string())?, key)?
                }
                "item" => set(&mut item, value.parse::<u64>().map_err(|e| e.to_string())?, key)?,
                "size" => set(&mut size, value.parse::<f64>().map_err(|e| e.to_string())?, key)?,
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        Ok(TraceRecord {
            time: time.ok_or("missing field \"time\"")?,
            client: client.ok_or("missing field \"client\"")?,
            item: ItemId(item.ok_or("missing field \"item\"")?),
            size: size.ok_or("missing field \"size\"")?,
        })
    }
}

/// Streams records as JSON lines.
pub struct TraceWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> TraceWriter<W> {
    pub fn new(out: W) -> Self {
        TraceWriter { out, written: 0 }
    }

    /// Writes one record as a JSON line. Non-finite time or size is an
    /// error: `{:?}` would render `inf`/`NaN`, which is not JSON (and
    /// diverges from `simcore::json::render`, which nulls non-finite).
    pub fn write(&mut self, rec: &TraceRecord) -> io::Result<()> {
        if !rec.time.is_finite() {
            return Err(io::Error::other(format!("non-finite time {:?}", rec.time)));
        }
        if !rec.size.is_finite() {
            return Err(io::Error::other(format!("non-finite size {:?}", rec.size)));
        }
        self.out.write_all(rec.to_json().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    pub fn written(&self) -> usize {
        self.written
    }

    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Reads JSON-lines records.
pub struct TraceReader<R: BufRead> {
    input: R,
    line: String,
}

impl<R: BufRead> TraceReader<R> {
    pub fn new(input: R) -> Self {
        TraceReader { input, line: String::new() }
    }

    /// Next record; `Ok(None)` at end of input.
    pub fn read(&mut self) -> io::Result<Option<TraceRecord>> {
        loop {
            self.line.clear();
            if self.input.read_line(&mut self.line)? == 0 {
                return Ok(None);
            }
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return TraceRecord::from_json(trimmed).map(Some).map_err(io::Error::other);
        }
    }

    /// Reads all remaining records.
    pub fn read_all(&mut self) -> io::Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.read()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Encodes records into the compact binary format:
/// `time:f64 | client:u32 | item:u64 | size:f64`, little-endian.
pub fn encode_binary(records: &[TraceRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 28);
    for r in records {
        buf.extend_from_slice(&r.time.to_le_bytes());
        buf.extend_from_slice(&r.client.to_le_bytes());
        buf.extend_from_slice(&r.item.0.to_le_bytes());
        buf.extend_from_slice(&r.size.to_le_bytes());
    }
    buf
}

/// Decodes the binary format with the same per-record validation the
/// `.events` streaming reader applies (finite non-negative time and size,
/// non-decreasing time). Errors on trailing garbage. For old fixtures that
/// predate validation, use [`decode_binary_unchecked`].
pub fn decode_binary(buf: &[u8]) -> Result<Vec<TraceRecord>, String> {
    let out = decode_binary_unchecked(buf)?;
    let mut prev = None;
    for (index, rec) in out.iter().enumerate() {
        crate::events::validate_record(rec, prev)
            .map_err(|reason| format!("record {index}: {reason}"))?;
        prev = Some(rec.time);
    }
    Ok(out)
}

/// Decodes the binary format without record validation — the legacy
/// behaviour, which accepts any 28-byte-multiple blob. Only length and
/// alignment are checked.
pub fn decode_binary_unchecked(buf: &[u8]) -> Result<Vec<TraceRecord>, String> {
    const REC: usize = 8 + 4 + 8 + 8;
    if !buf.len().is_multiple_of(REC) {
        return Err(format!("trace length {} is not a multiple of {REC}", buf.len()));
    }
    let f64_at = |b: &[u8]| f64::from_le_bytes(b.try_into().expect("8-byte slice"));
    let mut out = Vec::with_capacity(buf.len() / REC);
    for rec in buf.chunks_exact(REC) {
        out.push(TraceRecord {
            time: f64_at(&rec[0..8]),
            client: u32::from_le_bytes(rec[8..12].try_into().expect("4-byte slice")),
            item: ItemId(u64::from_le_bytes(rec[12..20].try_into().expect("8-byte slice"))),
            size: f64_at(&rec[20..28]),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(0.5, 0, ItemId(10), 1.5),
            TraceRecord::new(1.25, 3, ItemId(7), 0.25),
            TraceRecord::new(2.0, 1, ItemId(u64::MAX), 100.0),
        ]
    }

    #[test]
    fn json_roundtrip() {
        let records = sample_records();
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.write(r).unwrap();
        }
        assert_eq!(writer.written(), 3);
        let bytes = writer.into_inner();
        let mut reader = TraceReader::new(&bytes[..]);
        let back = reader.read_all().unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn json_skips_blank_lines() {
        let text = "\n{\"time\":1.0,\"client\":2,\"item\":3,\"size\":4.0}\n\n";
        let mut reader = TraceReader::new(text.as_bytes());
        let recs = reader.read_all().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].item, ItemId(3));
    }

    #[test]
    fn json_accepts_reordered_fields_and_whitespace() {
        let text = "{ \"size\": 4.0, \"item\": 3, \"client\": 2, \"time\": 1.0 }\n";
        let mut reader = TraceReader::new(text.as_bytes());
        let recs = reader.read_all().unwrap();
        assert_eq!(recs, vec![TraceRecord::new(1.0, 2, ItemId(3), 4.0)]);
    }

    #[test]
    fn json_rejects_garbage() {
        let mut reader = TraceReader::new("not json\n".as_bytes());
        assert!(reader.read().is_err());
        let mut reader = TraceReader::new("{\"time\":1.0}\n".as_bytes());
        assert!(reader.read().is_err(), "missing fields must error");
    }

    #[test]
    fn binary_roundtrip() {
        let records = sample_records();
        let buf = encode_binary(&records);
        assert_eq!(buf.len(), 3 * 28);
        let back = decode_binary(&buf).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn binary_rejects_truncated() {
        let buf = encode_binary(&sample_records());
        assert!(decode_binary(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn binary_empty_is_ok() {
        assert_eq!(decode_binary(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn json_write_rejects_non_finite_time() {
        let mut writer = TraceWriter::new(Vec::new());
        let rec = TraceRecord::new(f64::INFINITY, 0, ItemId(1), 1.0);
        let err = writer.write(&rec).unwrap_err();
        assert!(err.to_string().contains("non-finite time"), "{err}");
        assert_eq!(writer.written(), 0);
        assert!(writer.into_inner().is_empty(), "nothing may reach the sink");
    }

    #[test]
    fn json_write_rejects_nan_size() {
        let mut writer = TraceWriter::new(Vec::new());
        let rec = TraceRecord::new(1.0, 0, ItemId(1), f64::NAN);
        let err = writer.write(&rec).unwrap_err();
        assert!(err.to_string().contains("non-finite size"), "{err}");
        assert_eq!(writer.written(), 0);
    }

    #[test]
    fn json_rejects_duplicate_fields() {
        let text = "{\"time\":1.0,\"time\":2.0,\"client\":2,\"item\":3,\"size\":4.0}\n";
        let mut reader = TraceReader::new(text.as_bytes());
        let err = reader.read().unwrap_err();
        assert!(err.to_string().contains("duplicate field \"time\""), "{err}");
        let text = "{\"time\":1.0,\"client\":2,\"item\":3,\"size\":4.0,\"size\":4.0}\n";
        let mut reader = TraceReader::new(text.as_bytes());
        let err = reader.read().unwrap_err();
        assert!(err.to_string().contains("duplicate field \"size\""), "{err}");
    }

    #[test]
    fn binary_rejects_invalid_records() {
        let negative_time = vec![TraceRecord::new(-1.0, 0, ItemId(1), 1.0)];
        let err = decode_binary(&encode_binary(&negative_time)).unwrap_err();
        assert!(err.contains("negative time"), "{err}");

        let nan_size = vec![TraceRecord::new(1.0, 0, ItemId(1), f64::NAN)];
        let err = decode_binary(&encode_binary(&nan_size)).unwrap_err();
        assert!(err.contains("non-finite size"), "{err}");

        let decreasing = vec![
            TraceRecord::new(2.0, 0, ItemId(1), 1.0),
            TraceRecord::new(1.0, 0, ItemId(2), 1.0),
        ];
        let err = decode_binary(&encode_binary(&decreasing)).unwrap_err();
        assert!(err.starts_with("record 1:"), "{err}");
    }

    #[test]
    fn binary_unchecked_keeps_legacy_behaviour() {
        let soup = vec![
            TraceRecord::new(f64::NAN, 7, ItemId(9), -3.0),
            TraceRecord::new(-5.0, 1, ItemId(2), f64::INFINITY),
        ];
        let buf = encode_binary(&soup);
        let back = decode_binary_unchecked(&buf).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back[0].time.is_nan());
        assert_eq!(back[1].size, f64::INFINITY);
        assert!(decode_binary(&buf).is_err(), "checked path must reject the same bytes");
    }
}
