//! Trace records and serialisation.
//!
//! Experiments can persist their request streams and replay them, so
//! analytic and simulated runs see byte-identical workloads. Two formats:
//!
//! * **JSON lines** (via `serde_json`) — greppable, diffable, slow;
//! * **binary** (via `bytes`) — 28 bytes/record, for long traces.

use crate::catalog::ItemId;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// One request in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Request time (seconds).
    pub time: f64,
    /// Issuing client.
    pub client: u32,
    /// Referenced item.
    pub item: ItemId,
    /// Item size (size-units).
    pub size: f64,
}

impl TraceRecord {
    pub fn new(time: f64, client: u32, item: ItemId, size: f64) -> Self {
        TraceRecord { time, client, item, size }
    }
}

/// Streams records as JSON lines.
pub struct TraceWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> TraceWriter<W> {
    pub fn new(out: W) -> Self {
        TraceWriter { out, written: 0 }
    }

    pub fn write(&mut self, rec: &TraceRecord) -> io::Result<()> {
        let line = serde_json::to_string(rec).map_err(io::Error::other)?;
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    pub fn written(&self) -> usize {
        self.written
    }

    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Reads JSON-lines records.
pub struct TraceReader<R: BufRead> {
    input: R,
    line: String,
}

impl<R: BufRead> TraceReader<R> {
    pub fn new(input: R) -> Self {
        TraceReader { input, line: String::new() }
    }

    /// Next record; `Ok(None)` at end of input.
    pub fn read(&mut self) -> io::Result<Option<TraceRecord>> {
        loop {
            self.line.clear();
            if self.input.read_line(&mut self.line)? == 0 {
                return Ok(None);
            }
            let trimmed = self.line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return serde_json::from_str(trimmed)
                .map(Some)
                .map_err(io::Error::other);
        }
    }

    /// Reads all remaining records.
    pub fn read_all(&mut self) -> io::Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.read()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Encodes records into the compact binary format:
/// `time:f64 | client:u32 | item:u64 | size:f64`, little-endian.
pub fn encode_binary(records: &[TraceRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 28);
    for r in records {
        buf.put_f64_le(r.time);
        buf.put_u32_le(r.client);
        buf.put_u64_le(r.item.0);
        buf.put_f64_le(r.size);
    }
    buf
}

/// Decodes the binary format. Errors on trailing garbage.
pub fn decode_binary(mut buf: &[u8]) -> Result<Vec<TraceRecord>, String> {
    const REC: usize = 8 + 4 + 8 + 8;
    if buf.len() % REC != 0 {
        return Err(format!("trace length {} is not a multiple of {REC}", buf.len()));
    }
    let mut out = Vec::with_capacity(buf.len() / REC);
    while buf.has_remaining() {
        let time = buf.get_f64_le();
        let client = buf.get_u32_le();
        let item = ItemId(buf.get_u64_le());
        let size = buf.get_f64_le();
        out.push(TraceRecord { time, client, item, size });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(0.5, 0, ItemId(10), 1.5),
            TraceRecord::new(1.25, 3, ItemId(7), 0.25),
            TraceRecord::new(2.0, 1, ItemId(u64::MAX), 100.0),
        ]
    }

    #[test]
    fn json_roundtrip() {
        let records = sample_records();
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.write(r).unwrap();
        }
        assert_eq!(writer.written(), 3);
        let bytes = writer.into_inner();
        let mut reader = TraceReader::new(&bytes[..]);
        let back = reader.read_all().unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn json_skips_blank_lines() {
        let text = "\n{\"time\":1.0,\"client\":2,\"item\":3,\"size\":4.0}\n\n";
        let mut reader = TraceReader::new(text.as_bytes());
        let recs = reader.read_all().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].item, ItemId(3));
    }

    #[test]
    fn json_rejects_garbage() {
        let mut reader = TraceReader::new("not json\n".as_bytes());
        assert!(reader.read().is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let records = sample_records();
        let buf = encode_binary(&records);
        assert_eq!(buf.len(), 3 * 28);
        let back = decode_binary(&buf).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn binary_rejects_truncated() {
        let buf = encode_binary(&sample_records());
        assert!(decode_binary(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn binary_empty_is_ok() {
        assert_eq!(decode_binary(&[]).unwrap(), Vec::new());
    }
}
