//! Item catalogs: identity, size, and popularity.

use serde::{Deserialize, Serialize};
use simcore::dist::{Sample, Zipf};
use simcore::rng::Rng;

/// Identity of a cacheable item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ItemId(pub u64);

impl core::fmt::Display for ItemId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "item{}", self.0)
    }
}

/// A fixed universe of items with per-item sizes and a popularity law.
///
/// Sizes are drawn once at construction (an item's size is a property of
/// the item, not of the request), so repeated fetches of the same item move
/// the same number of bytes — a detail that matters for byte-weighted
/// utilisation.
pub struct Catalog {
    sizes: Vec<f64>,
    popularity: Zipf,
    mean_size: f64,
}

impl Catalog {
    /// `n` items, Zipf(`exponent`) popularity, IID sizes from `size_dist`.
    pub fn with_sizes(n: usize, exponent: f64, size_dist: &dyn Sample, rng: &mut Rng) -> Self {
        assert!(n > 0);
        let sizes: Vec<f64> = (0..n).map(|_| size_dist.sample(rng)).collect();
        let mean_size = sizes.iter().sum::<f64>() / n as f64;
        Catalog { sizes, popularity: Zipf::new(n, exponent), mean_size }
    }

    /// `n` items, Zipf popularity, all sizes equal to `size`.
    pub fn zipf(n: usize, exponent: f64, size: f64, _rng: &mut Rng) -> Self {
        assert!(n > 0 && size > 0.0);
        Catalog { sizes: vec![size; n], popularity: Zipf::new(n, exponent), mean_size: size }
    }

    /// Uniform popularity (Zipf exponent 0).
    pub fn uniform(n: usize, size: f64) -> Self {
        assert!(n > 0 && size > 0.0);
        Catalog { sizes: vec![size; n], popularity: Zipf::new(n, 0.0), mean_size: size }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size of an item.
    pub fn size(&self, id: ItemId) -> f64 {
        self.sizes[id.0 as usize]
    }

    /// Arithmetic mean item size (unweighted by popularity).
    pub fn mean_size(&self) -> f64 {
        self.mean_size
    }

    /// Popularity-weighted mean size — the `s̄` a request stream actually
    /// experiences under the IRM.
    pub fn request_weighted_mean_size(&self) -> f64 {
        (0..self.sizes.len()).map(|i| self.popularity.prob(i) * self.sizes[i]).sum()
    }

    /// Request probability of an item under the popularity law.
    pub fn popularity(&self, id: ItemId) -> f64 {
        self.popularity.prob(id.0 as usize)
    }

    /// Draws an item according to popularity.
    pub fn sample(&self, rng: &mut Rng) -> ItemId {
        ItemId(self.popularity.sample_rank(rng) as u64)
    }

    /// Items sorted by descending popularity (identity order for Zipf).
    pub fn by_popularity(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.sizes.len() as u64).map(ItemId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::Pareto;

    #[test]
    fn zipf_catalog_basics() {
        let mut rng = Rng::new(1);
        let c = Catalog::zipf(1000, 0.8, 2.0, &mut rng);
        assert_eq!(c.len(), 1000);
        assert_eq!(c.size(ItemId(5)), 2.0);
        assert_eq!(c.mean_size(), 2.0);
        assert!((c.request_weighted_mean_size() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn popularity_is_monotone_decreasing() {
        let mut rng = Rng::new(2);
        let c = Catalog::zipf(100, 1.0, 1.0, &mut rng);
        for i in 1..100 {
            assert!(c.popularity(ItemId(i - 1)) > c.popularity(ItemId(i)));
        }
    }

    #[test]
    fn uniform_catalog_equal_probabilities() {
        let c = Catalog::uniform(50, 1.0);
        for i in 0..50 {
            assert!((c.popularity(ItemId(i)) - 0.02).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_respects_popularity() {
        let mut rng = Rng::new(3);
        let c = Catalog::zipf(10, 1.0, 1.0, &mut rng);
        let mut counts = [0usize; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[c.sample(&mut rng).0 as usize] += 1;
        }
        let p0 = counts[0] as f64 / n as f64;
        assert!((p0 - c.popularity(ItemId(0))).abs() < 0.01);
    }

    #[test]
    fn heterogeneous_sizes_weighted_mean() {
        let mut rng = Rng::new(4);
        let c = Catalog::with_sizes(5000, 0.0, &Pareto::with_mean(3.0, 2.5), &mut rng);
        // Uniform popularity: weighted mean = arithmetic mean.
        assert!((c.request_weighted_mean_size() - c.mean_size()).abs() < 1e-9);
        assert!((c.mean_size() - 3.0).abs() < 0.3);
    }

    #[test]
    fn weighted_mean_differs_with_skew() {
        // Make item 0 huge: under Zipf the weighted mean exceeds the
        // arithmetic mean noticeably.
        let mut rng = Rng::new(5);
        let mut c = Catalog::zipf(100, 1.2, 1.0, &mut rng);
        c.sizes[0] = 100.0;
        c.mean_size = c.sizes.iter().sum::<f64>() / 100.0;
        assert!(c.request_weighted_mean_size() > c.mean_size());
    }
}
