//! First-order Markov reference streams.
//!
//! A Markov chain over items is the canonical workload under which
//! speculative prefetching is analysable: after observing a request for item
//! `i`, the *true* probability that the next request is `j` is `P[i][j]` —
//! exactly the `p` in the paper's model. The chain doubles as ground truth
//! for scoring the `predictor` crate.

use crate::catalog::ItemId;
use crate::RequestStream;
use simcore::dist::Discrete;
use simcore::rng::Rng;

/// A first-order Markov chain over `n` items.
///
/// ```
/// use simcore::rng::Rng;
/// use workload::{ItemId, MarkovChain, RequestStream};
///
/// let mut rng = Rng::new(7);
/// let mut chain = MarkovChain::noisy_cycle(5, 0.1, &mut rng);
/// // The top successor of state 0 is state 1, with probability 0.9 + 0.02.
/// let succ = chain.successors(ItemId(0));
/// assert_eq!(succ[0].0, ItemId(1));
/// assert!((succ[0].1 - 0.92).abs() < 1e-12);
/// // Streaming requests walk the chain.
/// let next = chain.next_item(&mut rng);
/// assert!(next.0 < 5);
/// ```
pub struct MarkovChain {
    /// Row-stochastic transition matrix, dense.
    rows: Vec<Vec<f64>>,
    /// Alias samplers per row.
    samplers: Vec<Discrete>,
    state: usize,
}

impl MarkovChain {
    /// Builds a chain from a dense transition matrix (each row must be a
    /// probability vector).
    pub fn new(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        assert!(n > 0, "empty chain");
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!(row.iter().all(|&p| p >= 0.0), "row {i} has negative entries");
        }
        let samplers = rows.iter().map(|r| Discrete::new(r)).collect();
        MarkovChain { rows, samplers, state: 0 }
    }

    /// A random sparse chain: from each state, `branching` successors with
    /// geometrically decaying probabilities (decay factor `skew` in (0,1];
    /// `skew = 1` gives equal successors). Successors are chosen uniformly
    /// at random. Higher `skew` → more deterministic → more predictable.
    pub fn random(n: usize, branching: usize, skew: f64, rng: &mut Rng) -> Self {
        assert!(n >= 2 && branching >= 1 && branching <= n);
        assert!(skew > 0.0 && skew <= 1.0);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = vec![0.0; n];
            // Pick `branching` distinct successors.
            let mut successors = Vec::with_capacity(branching);
            while successors.len() < branching {
                let s = rng.index(n);
                if !successors.contains(&s) {
                    successors.push(s);
                }
            }
            // Geometric weights: skew^0, skew^1, ... normalised.
            let mut w = 1.0;
            let mut total = 0.0;
            let mut weights = Vec::with_capacity(branching);
            for _ in 0..branching {
                weights.push(w);
                total += w;
                w *= skew;
            }
            for (s, wt) in successors.iter().zip(&weights) {
                row[*s] = wt / total;
            }
            rows.push(row);
        }
        MarkovChain::new(rows)
    }

    /// A noisy cycle: state `i` goes to `i+1 (mod n)` with probability
    /// `1 − noise`, else to a uniformly random state. `noise = 0` is fully
    /// deterministic (every access perfectly predictable).
    pub fn noisy_cycle(n: usize, noise: f64, _rng: &mut Rng) -> Self {
        assert!(n >= 2 && (0.0..=1.0).contains(&noise));
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = vec![noise / n as f64; n];
            row[(i + 1) % n] += 1.0 - noise;
            rows.push(row);
        }
        MarkovChain::new(rows)
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True transition probability `P[from][to]`.
    pub fn prob(&self, from: ItemId, to: ItemId) -> f64 {
        self.rows[from.0 as usize][to.0 as usize]
    }

    /// The successors of `from` with non-zero probability, sorted by
    /// descending probability — the oracle candidate list.
    pub fn successors(&self, from: ItemId) -> Vec<(ItemId, f64)> {
        let mut out: Vec<(ItemId, f64)> = self.rows[from.0 as usize]
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(j, &p)| (ItemId(j as u64), p))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Current state.
    pub fn state(&self) -> ItemId {
        ItemId(self.state as u64)
    }

    /// Jumps to a specific state.
    pub fn set_state(&mut self, s: ItemId) {
        assert!((s.0 as usize) < self.rows.len());
        self.state = s.0 as usize;
    }

    /// Stationary distribution by power iteration (for tests/analysis).
    pub fn stationary(&self, iterations: usize) -> Vec<f64> {
        let n = self.rows.len();
        let mut pi = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        for _ in 0..iterations {
            next.iter_mut().for_each(|x| *x = 0.0);
            for (i, &pi_i) in pi.iter().enumerate() {
                if pi_i == 0.0 {
                    continue;
                }
                for (j, &p) in self.rows[i].iter().enumerate() {
                    if p > 0.0 {
                        next[j] += pi_i * p;
                    }
                }
            }
            core::mem::swap(&mut pi, &mut next);
        }
        pi
    }

    /// Entropy rate (bits/request) under the stationary distribution —
    /// the information-theoretic predictability of the stream.
    pub fn entropy_rate(&self, iterations: usize) -> f64 {
        let pi = self.stationary(iterations);
        let mut h = 0.0;
        for (i, row) in self.rows.iter().enumerate() {
            let mut hi = 0.0;
            for &p in row {
                if p > 0.0 {
                    hi -= p * p.log2();
                }
            }
            h += pi[i] * hi;
        }
        h
    }
}

impl RequestStream for MarkovChain {
    fn next_item(&mut self, rng: &mut Rng) -> ItemId {
        self.state = self.samplers[self.state].sample_index(rng);
        ItemId(self.state as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_frequencies_match_matrix() {
        let mut rng = Rng::new(1);
        let mut chain =
            MarkovChain::new(vec![vec![0.1, 0.9, 0.0], vec![0.0, 0.2, 0.8], vec![0.5, 0.0, 0.5]]);
        let mut counts = [[0usize; 3]; 3];
        let mut prev = chain.state().0 as usize;
        let n = 300_000;
        for _ in 0..n {
            let next = chain.next_item(&mut rng).0 as usize;
            counts[prev][next] += 1;
            prev = next;
        }
        for (i, row) in counts.iter().enumerate() {
            let row_total: usize = row.iter().sum();
            for (j, &count) in row.iter().enumerate() {
                let emp = count as f64 / row_total as f64;
                let truth = chain.prob(ItemId(i as u64), ItemId(j as u64));
                assert!((emp - truth).abs() < 0.01, "P[{i}][{j}] emp {emp} vs {truth}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_non_stochastic_rows() {
        let _ = MarkovChain::new(vec![vec![0.5, 0.6], vec![0.5, 0.5]]);
    }

    #[test]
    fn random_chain_rows_are_stochastic() {
        let mut rng = Rng::new(2);
        let chain = MarkovChain::random(50, 4, 0.5, &mut rng);
        for i in 0..50 {
            let succ = chain.successors(ItemId(i));
            assert_eq!(succ.len(), 4);
            let total: f64 = succ.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9);
            // Geometric decay with ratio 0.5: top successor has p = 8/15.
            assert!((succ[0].1 - 8.0 / 15.0).abs() < 1e-9);
        }
    }

    #[test]
    fn noisy_cycle_probabilities() {
        let mut rng = Rng::new(3);
        let chain = MarkovChain::noisy_cycle(10, 0.2, &mut rng);
        let succ = chain.successors(ItemId(0));
        // Successor 1 has 0.8 + 0.02; all others 0.02.
        assert_eq!(succ[0].0, ItemId(1));
        assert!((succ[0].1 - 0.82).abs() < 1e-12);
        assert_eq!(succ.len(), 10);
    }

    #[test]
    fn deterministic_cycle_entropy_zero() {
        let mut rng = Rng::new(4);
        let chain = MarkovChain::noisy_cycle(8, 0.0, &mut rng);
        assert!(chain.entropy_rate(200) < 1e-9);
        // And noise raises entropy.
        let noisy = MarkovChain::noisy_cycle(8, 0.5, &mut rng);
        assert!(noisy.entropy_rate(200) > 1.0);
    }

    #[test]
    fn stationary_distribution_of_doubly_stochastic_is_uniform() {
        let mut rng = Rng::new(5);
        // noisy_cycle rows are doubly stochastic (column sums = 1 too).
        let chain = MarkovChain::noisy_cycle(6, 0.3, &mut rng);
        let pi = chain.stationary(500);
        for &p in &pi {
            assert!((p - 1.0 / 6.0).abs() < 1e-9, "pi {pi:?}");
        }
    }

    #[test]
    fn stationary_matches_empirical_visits() {
        let mut rng = Rng::new(6);
        let mut chain = MarkovChain::random(20, 3, 0.4, &mut rng);
        let pi = chain.stationary(1000);
        let mut counts = [0usize; 20];
        let n = 400_000;
        for _ in 0..n {
            counts[chain.next_item(&mut rng).0 as usize] += 1;
        }
        for i in 0..20 {
            let emp = counts[i] as f64 / n as f64;
            assert!((emp - pi[i]).abs() < 0.01, "state {i}: {emp} vs {}", pi[i]);
        }
    }

    #[test]
    fn successors_sorted_descending() {
        let mut rng = Rng::new(7);
        let chain = MarkovChain::random(30, 5, 0.6, &mut rng);
        for i in 0..30 {
            let s = chain.successors(ItemId(i));
            for w in s.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
