//! Arrival processes — the `λ` axis of the model.
//!
//! The paper assumes Poisson arrivals (the M in M/G/1). The MMPP variant
//! exists to probe robustness: the threshold formula only knows the *mean*
//! rate, so bursty arrivals stress the adaptive controller (experiment E8
//! sensitivity runs).

use simcore::rng::Rng;

/// Generates inter-arrival gaps.
pub trait ArrivalProcess {
    /// Time until the next arrival (strictly positive).
    fn next_gap(&mut self, rng: &mut Rng) -> f64;

    /// Long-run mean arrival rate.
    fn mean_rate(&self) -> f64;
}

/// Poisson process: exponential gaps at rate `lambda`.
#[derive(Clone, Copy, Debug)]
pub struct PoissonArrivals {
    pub lambda: f64,
}

impl PoissonArrivals {
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0);
        PoissonArrivals { lambda }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut Rng) -> f64 {
        rng.exp(self.lambda)
    }
    fn mean_rate(&self) -> f64 {
        self.lambda
    }
}

/// Deterministic arrivals: constant gap `1/rate`.
#[derive(Clone, Copy, Debug)]
pub struct DeterministicArrivals {
    pub rate: f64,
}

impl DeterministicArrivals {
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0);
        DeterministicArrivals { rate }
    }
}

impl ArrivalProcess for DeterministicArrivals {
    fn next_gap(&mut self, _rng: &mut Rng) -> f64 {
        1.0 / self.rate
    }
    fn mean_rate(&self) -> f64 {
        self.rate
    }
}

/// Two-state Markov-modulated Poisson process: alternates between a quiet
/// state (rate `rate0`) and a bursty state (rate `rate1`), with exponential
/// sojourn times of means `1/switch0` and `1/switch1`.
#[derive(Clone, Copy, Debug)]
pub struct Mmpp2 {
    pub rate0: f64,
    pub rate1: f64,
    pub switch0: f64,
    pub switch1: f64,
    state: bool,
    /// Time left in the current state.
    residual: f64,
}

impl Mmpp2 {
    pub fn new(rate0: f64, rate1: f64, switch0: f64, switch1: f64) -> Self {
        assert!(rate0 > 0.0 && rate1 > 0.0 && switch0 > 0.0 && switch1 > 0.0);
        Mmpp2 { rate0, rate1, switch0, switch1, state: false, residual: 0.0 }
    }

    fn current_rate(&self) -> f64 {
        if self.state {
            self.rate1
        } else {
            self.rate0
        }
    }
}

impl ArrivalProcess for Mmpp2 {
    fn next_gap(&mut self, rng: &mut Rng) -> f64 {
        let mut gap = 0.0;
        loop {
            if self.residual <= 0.0 {
                let switch = if self.state { self.switch1 } else { self.switch0 };
                self.residual = rng.exp(switch);
            }
            let candidate = rng.exp(self.current_rate());
            if candidate <= self.residual {
                self.residual -= candidate;
                return gap + candidate;
            }
            // No arrival before the state switch: consume the sojourn and flip.
            gap += self.residual;
            self.residual = 0.0;
            self.state = !self.state;
        }
    }

    fn mean_rate(&self) -> f64 {
        // Stationary state probabilities ∝ mean sojourn times.
        let m0 = 1.0 / self.switch0;
        let m1 = 1.0 / self.switch1;
        (self.rate0 * m0 + self.rate1 * m1) / (m0 + m1)
    }
}

/// Materialises the first `n` arrival instants of a process.
pub fn arrival_times(process: &mut dyn ArrivalProcess, n: usize, rng: &mut Rng) -> Vec<f64> {
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += process.next_gap(rng);
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_rate(p: &mut dyn ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        let times = arrival_times(p, n, &mut rng);
        (n - 1) as f64 / (times[n - 1] - times[0])
    }

    #[test]
    fn poisson_rate() {
        let mut p = PoissonArrivals::new(30.0);
        let r = empirical_rate(&mut p, 100_000, 1);
        assert!((r - 30.0).abs() < 0.5, "rate {r}");
        assert_eq!(p.mean_rate(), 30.0);
    }

    #[test]
    fn poisson_gap_cv_is_one() {
        let mut rng = Rng::new(2);
        let mut p = PoissonArrivals::new(10.0);
        let gaps: Vec<f64> = (0..100_000).map(|_| p.next_gap(&mut rng)).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!((cv2 - 1.0).abs() < 0.05, "cv² {cv2}");
    }

    #[test]
    fn deterministic_gaps() {
        let mut rng = Rng::new(3);
        let mut p = DeterministicArrivals::new(4.0);
        for _ in 0..10 {
            assert_eq!(p.next_gap(&mut rng), 0.25);
        }
    }

    #[test]
    fn mmpp_mean_rate_formula() {
        // Equal sojourns: mean rate is the average of the two rates.
        let p = Mmpp2::new(10.0, 50.0, 1.0, 1.0);
        assert!((p.mean_rate() - 30.0).abs() < 1e-12);
        // Spends 3x longer in quiet state.
        let p = Mmpp2::new(10.0, 50.0, 1.0, 3.0);
        let expect = (10.0 * 1.0 + 50.0 * (1.0 / 3.0)) / (1.0 + 1.0 / 3.0);
        assert!((p.mean_rate() - expect).abs() < 1e-12);
    }

    #[test]
    fn mmpp_empirical_rate_matches() {
        let mut p = Mmpp2::new(10.0, 50.0, 0.5, 0.5);
        let r = empirical_rate(&mut p, 200_000, 4);
        assert!((r - p.mean_rate()).abs() / p.mean_rate() < 0.05, "rate {r}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Index of dispersion of counts > 1 for MMPP: approximate via gap CV².
        let mut rng = Rng::new(5);
        let mut p = Mmpp2::new(5.0, 100.0, 2.0, 2.0);
        let gaps: Vec<f64> = (0..200_000).map(|_| p.next_gap(&mut rng)).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.3, "cv² {cv2} should exceed Poisson's 1");
    }

    #[test]
    fn arrival_times_are_increasing() {
        let mut rng = Rng::new(6);
        let mut p = PoissonArrivals::new(100.0);
        let times = arrival_times(&mut p, 1000, &mut rng);
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
