//! Stack-distance streams with a controllable LRU hit ratio.
//!
//! The paper's model takes `h′` — the no-prefetch hit ratio — as an input
//! parameter. To *sweep* `h′` in an end-to-end simulation we need request
//! streams that produce a prescribed LRU hit ratio by construction. The
//! classic tool is the LRU stack model (Mattson et al.): a request at stack
//! distance `d` hits every LRU cache of capacity `> d`.
//!
//! [`LruStackStream`] emits, with probability `target_hit`, a reference to
//! an item within the top `reuse_depth` stack positions (a guaranteed hit
//! for any LRU cache of at least that capacity), and otherwise a
//! never-seen-before item (a guaranteed miss in any cache). After warm-up
//! the measured hit ratio of an LRU(`≥ reuse_depth`) cache equals
//! `target_hit` exactly in expectation.

use crate::catalog::ItemId;
use crate::RequestStream;
use simcore::rng::Rng;

/// Stream with a designed-in LRU hit ratio.
pub struct LruStackStream {
    /// Most-recent-first stack of live items; kept at `reuse_depth` entries.
    stack: Vec<ItemId>,
    target_hit: f64,
    reuse_depth: usize,
    next_id: u64,
}

impl LruStackStream {
    /// `target_hit ∈ [0, 1)`; `reuse_depth ≥ 1` is the cache capacity the
    /// stream is calibrated for.
    pub fn new(target_hit: f64, reuse_depth: usize) -> Self {
        assert!((0.0..1.0).contains(&target_hit), "target_hit must be in [0,1)");
        assert!(reuse_depth >= 1);
        LruStackStream {
            stack: Vec::with_capacity(reuse_depth + 1),
            target_hit,
            reuse_depth,
            next_id: 0,
        }
    }

    /// The hit ratio the stream is designed to produce.
    pub fn target_hit(&self) -> f64 {
        self.target_hit
    }

    /// The LRU capacity the stream is calibrated for.
    pub fn reuse_depth(&self) -> usize {
        self.reuse_depth
    }

    fn fresh_item(&mut self) -> ItemId {
        let id = ItemId(self.next_id);
        self.next_id += 1;
        id
    }

    fn push_mru(&mut self, id: ItemId) {
        self.stack.insert(0, id);
        self.stack.truncate(self.reuse_depth);
    }
}

impl RequestStream for LruStackStream {
    fn next_item(&mut self, rng: &mut Rng) -> ItemId {
        let reuse = self.stack.len() >= self.reuse_depth && rng.chance(self.target_hit);
        if reuse {
            // Uniform over the top `reuse_depth` stack positions: stack
            // distance < reuse_depth → a hit in any LRU(≥reuse_depth).
            let idx = rng.index(self.reuse_depth);
            let id = self.stack.remove(idx);
            self.push_mru(id);
            id
        } else {
            let id = self.fresh_item();
            self.push_mru(id);
            id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Minimal LRU used only to validate the stream (the real cache lives in
    /// the `cachesim` crate, which depends on this one).
    struct MiniLru {
        cap: usize,
        order: Vec<ItemId>, // MRU-first
        set: HashSet<ItemId>,
    }

    impl MiniLru {
        fn new(cap: usize) -> Self {
            MiniLru { cap, order: Vec::new(), set: HashSet::new() }
        }
        /// Returns true on hit.
        fn access(&mut self, id: ItemId) -> bool {
            let hit = self.set.contains(&id);
            if hit {
                let pos = self.order.iter().position(|&x| x == id).unwrap();
                self.order.remove(pos);
            }
            self.order.insert(0, id);
            self.set.insert(id);
            if self.order.len() > self.cap {
                let evicted = self.order.pop().unwrap();
                self.set.remove(&evicted);
            }
            hit
        }
    }

    fn measure_hit_ratio(target: f64, depth: usize, cache_cap: usize, seed: u64) -> f64 {
        let mut rng = Rng::new(seed);
        let mut stream = LruStackStream::new(target, depth);
        let mut lru = MiniLru::new(cache_cap);
        let warmup = 2_000;
        let n = 40_000;
        let mut hits = 0usize;
        for i in 0..warmup + n {
            let id = stream.next_item(&mut rng);
            let hit = lru.access(id);
            if i >= warmup && hit {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }

    #[test]
    fn achieves_target_hit_ratio() {
        for &target in &[0.0, 0.3, 0.6, 0.9] {
            let h = measure_hit_ratio(target, 32, 32, 42);
            assert!((h - target).abs() < 0.02, "target {target}: measured {h}");
        }
    }

    #[test]
    fn bigger_cache_does_not_raise_hit_ratio() {
        // All reuses are within depth 32; extra capacity finds nothing more.
        let h32 = measure_hit_ratio(0.5, 32, 32, 7);
        let h256 = measure_hit_ratio(0.5, 32, 256, 7);
        assert!((h32 - h256).abs() < 0.02, "h32 {h32} vs h256 {h256}");
    }

    #[test]
    fn smaller_cache_lowers_hit_ratio() {
        let full = measure_hit_ratio(0.6, 64, 64, 9);
        let half = measure_hit_ratio(0.6, 64, 16, 9);
        assert!(half < full - 0.1, "full {full} vs half-capacity {half}");
    }

    #[test]
    fn zero_target_never_repeats() {
        let mut rng = Rng::new(3);
        let mut stream = LruStackStream::new(0.0, 8);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let id = stream.next_item(&mut rng);
            assert!(seen.insert(id), "item repeated under target 0");
        }
    }

    #[test]
    fn stack_stays_bounded() {
        let mut rng = Rng::new(4);
        let mut stream = LruStackStream::new(0.5, 16);
        for _ in 0..10_000 {
            stream.next_item(&mut rng);
        }
        assert!(stream.stack.len() <= 16);
    }
}
