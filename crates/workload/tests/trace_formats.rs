//! Property tests for the trace codecs and the scaler.
//!
//! * **Round-trips** — arbitrary finite, time-ordered records survive the
//!   JSON-lines codec, the legacy binary codec, and the versioned
//!   `.events` streaming codec exactly (f64 `{:?}` rendering and the LE
//!   byte layout are both lossless), at every chunk size.
//! * **Corruption** — truncations, header bit-flips, and wrong versions
//!   are *errors*, never panics, and never yield phantom records.
//! * **Scaling** — a K-copy superposition has exactly K× the records,
//!   disjoint per-copy key ranges, and preserves every copy's
//!   inter-arrival structure to 1e-9 relative; the lazy merge equals the
//!   eager one.

use proptest::prelude::*;
use std::io::BufReader;
use workload::events::{encode_events, RECORD_BYTES};
use workload::trace::{decode_binary, encode_binary};
use workload::{ItemId, TraceRecord, TraceScaler, TraceSource, TraceStream, TraceWriter};

/// Finite records with non-decreasing times — what every recorder
/// produces and every validated decoder demands. Items stay below 2^20
/// so a 2^32 key stride always gives disjoint copies, and clients below
/// 2^16 (the folded ids recorders emit) so client offsets cannot wrap.
fn records_strategy(max_len: usize) -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(
        (0.0f64..8.0, 0u32..(1 << 16), 0u64..(1 << 20), 0.0f64..2.0e4),
        0..max_len,
    )
    .prop_map(|raw| {
        let mut t = 0.0;
        raw.into_iter()
            .map(|(dt, client, item, size)| {
                t += dt;
                TraceRecord::new(t, client, ItemId(item), size)
            })
            .collect()
    })
}

proptest! {
    /// `.events` identity: encode, then stream-decode at an arbitrary
    /// chunk size — the records come back exactly, and the stream never
    /// holds more than one chunk resident.
    #[test]
    fn events_roundtrip_is_identity(
        records in records_strategy(120),
        chunk in 1usize..64,
    ) {
        let bytes = encode_events(&records).expect("finite ordered records encode");
        let mut stream = TraceStream::with_chunk(&bytes[..], chunk)
            .expect("header parses");
        // Explicit form: `Iterator::count` would shadow the inherent accessor.
        prop_assert_eq!(TraceStream::count(&stream), records.len() as u64);
        let mut decoded = Vec::new();
        for rec in &mut stream {
            decoded.push(rec.expect("valid records decode"));
        }
        prop_assert_eq!(decoded, records);
        prop_assert!(
            stream.peak_resident_bytes() <= chunk * RECORD_BYTES,
            "resident {} bytes exceeds one {}-record chunk",
            stream.peak_resident_bytes(), chunk
        );
    }

    /// JSON-lines identity: `{:?}` float rendering round-trips f64
    /// exactly, so the decoded records equal the originals bit-for-bit.
    #[test]
    fn json_roundtrip_is_identity(records in records_strategy(80)) {
        let mut w = TraceWriter::new(Vec::new());
        for rec in &records {
            w.write(rec).expect("finite records serialise");
        }
        let bytes = w.into_inner();
        let decoded = workload::TraceReader::new(BufReader::new(&bytes[..]))
            .read_all()
            .expect("own output parses");
        prop_assert_eq!(decoded, records);
    }

    /// Legacy-binary identity through the *validated* decoder.
    #[test]
    fn binary_roundtrip_is_identity(records in records_strategy(120)) {
        let decoded = decode_binary(&encode_binary(&records))
            .expect("ordered finite records validate");
        prop_assert_eq!(decoded, records);
    }

    /// Any strict prefix of an `.events` encoding is an error — in the
    /// header (open fails) or the body (a record comes back `Err`) — and
    /// decoding never panics or invents records.
    #[test]
    fn truncated_events_error_never_panic(
        records in records_strategy(60),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_events(&records).expect("encode");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        let outcome = TraceStream::open(&bytes[..cut])
            .and_then(|s| s.collect::<Result<Vec<_>, _>>());
        match outcome {
            Err(_) => {}
            Ok(decoded) => {
                return Err(TestCaseError::Fail(format!(
                    "truncation at {cut}/{} decoded {} records without error",
                    bytes.len(), decoded.len()
                )));
            }
        }
    }

    /// Flipping any bit of the magic/version/reserved header words is
    /// rejected at `open` — a reader can never silently misread a file
    /// from the wrong format or a future version.
    #[test]
    fn corrupted_header_is_rejected(
        records in records_strategy(40),
        byte in 0usize..8,
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_events(&records).expect("encode");
        bytes[byte] ^= flip;
        prop_assert!(
            TraceStream::open(&bytes[..]).is_err(),
            "corrupted header byte {} accepted", byte
        );
    }

    /// The scaler contract: K× the records, per-copy key ranges disjoint
    /// by construction, clients offset per copy, and each copy's
    /// inter-arrival times dilated by exactly its factor (to 1e-9
    /// relative). The lazy merge and the eager sort agree exactly.
    #[test]
    fn scaler_preserves_structure(
        records in records_strategy(60),
        copies in 2u32..6,
        dilation_step in 0.0f64..0.5,
    ) {
        let stride = 1u64 << 32;
        let scaler = TraceScaler {
            copies,
            dilation_step,
            key_stride: stride,
            client_stride: 1 << 16,
        };
        let scaled = scaler.scale_records(&records);
        prop_assert_eq!(scaled.len(), records.len() * copies as usize);

        for copy in 0..copies {
            let (lo, hi) = (u64::from(copy) * stride, (u64::from(copy) + 1) * stride);
            let lane: Vec<&TraceRecord> =
                scaled.iter().filter(|r| (lo..hi).contains(&r.item.0)).collect();
            prop_assert_eq!(lane.len(), records.len(), "copy {} lost records", copy);
            let d = scaler.dilation(copy);
            for (orig, got) in records.iter().zip(&lane) {
                prop_assert_eq!(got.item.0 - lo, orig.item.0);
                prop_assert_eq!(got.client - copy * (1 << 16), orig.client);
                prop_assert_eq!(got.size, orig.size);
            }
            for i in 1..lane.len() {
                let want = d * (records[i].time - records[i - 1].time);
                let got = lane[i].time - lane[i - 1].time;
                prop_assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "copy {} inter-arrival {} drifted from {}", copy, got, want
                );
            }
        }

        // Lazy K-way merge over the source equals the eager sort exactly.
        if !records.is_empty() {
            let source = TraceSource::from_records(&records).expect("encode");
            let lazy: Vec<TraceRecord> = scaler
                .scale(&source, 16)
                .expect("streams open")
                .collect::<Result<_, _>>()
                .expect("valid records merge");
            prop_assert_eq!(lazy, scaled);
        }
    }
}
