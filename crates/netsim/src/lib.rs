//! # netsim — the end-to-end distributed system the paper reasons about
//!
//! Multiple clients behind a proxy share one network path (a
//! processor-sharing server). Requests hit local caches or fetch over the
//! shared path; speculative prefetch agents inject extra load. This crate
//! assembles the substrates (`queueing`, `cachesim`, `predictor`,
//! `workload`) into two simulators:
//!
//! * [`parametric`] — realises the paper's abstraction *exactly*: hits
//!   occur with the modelled probability `h`, prefetch volume is a
//!   parameter. Used to validate every closed form in `prefetch-core`
//!   (experiment E7): measured `t̄`, `ρ`, `G`, `C` vs equations
//!   (5), (8), (10), (11), (27).
//! * [`traced`] — the full pipeline: real LRU caches with tagged-entry
//!   instrumentation, learned (or oracle) predictors, the adaptive
//!   threshold controller, and a twin no-prefetch cache providing the
//!   ground-truth `h′` (experiments E6, E8, E9).
//!
//! Both simulators are deterministic given a seed.

pub mod parametric;
pub mod traced;

pub use parametric::{ParametricConfig, ParametricReport};
pub use traced::{Policy, PredictorKind, TracedConfig, TracedReport};
