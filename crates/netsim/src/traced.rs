//! Trace-driven end-to-end simulator: the full prefetching pipeline.
//!
//! N clients navigate a shared link graph (the `workload::SynthWeb`
//! workload). Each client has an LRU cache with the paper's tagged-entry
//! instrumentation, a per-client access predictor, and a **twin cache** —
//! an identical LRU fed the same request stream but never prefetched into —
//! providing the ground-truth counterfactual `h′` that the §4 estimator is
//! trying to recover. All fetches (demand and prefetch) share one
//! processor-sharing link.
//!
//! The policies under comparison (experiment E8):
//!
//! * [`Policy::NoPrefetch`] — baseline `t̄′`;
//! * [`Policy::PrefetchAll`] — prefetch every candidate the predictor
//!   offers (the naive heuristic the paper warns about);
//! * [`Policy::FixedThreshold`] — prefetch above a constant probability;
//! * [`Policy::Adaptive`] — the paper's headline policy with `p̂_th = ρ̂′`
//!   from the online estimators.

use cachesim::{AccessKind, LruCache, ReplacementCache, TaggedCache};
use predictor::{
    DependencyGraph, Ensemble, Lz78Predictor, MarkovPredictor, OraclePredictor, PpmPredictor,
    Predictor,
};
use prefetch_core::controller::{AdaptiveController, ControllerConfig};
use prefetch_core::estimator::EntryStatus;
use queueing::{PsServer, Server};
use simcore::rng::Rng;
use simcore::stats::BatchMeans;
use std::collections::HashSet;
use workload::synth_web::{SynthWeb, SynthWebConfig};
use workload::ItemId;

/// Which access model feeds the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictorKind {
    /// Ground-truth probabilities from the generating chain.
    Oracle,
    /// Learned order-1 Markov.
    Markov1,
    /// Learned order-2 Markov.
    Markov2,
    /// PPM blend up to order 2.
    Ppm2,
    /// LZ78 parse tree.
    Lz78,
    /// Dependency graph with the given lookahead window.
    DepGraph(usize),
    /// Accuracy-weighted ensemble of Markov-1 and LZ78.
    Ensemble,
}

impl PredictorKind {
    fn build(&self, web: &SynthWeb) -> Box<dyn Predictor> {
        match self {
            PredictorKind::Oracle => Box::new(OraclePredictor::from_chain(&web.chain)),
            PredictorKind::Markov1 => Box::new(MarkovPredictor::new(1)),
            PredictorKind::Markov2 => Box::new(MarkovPredictor::new(2)),
            PredictorKind::Ppm2 => Box::new(PpmPredictor::new(2)),
            PredictorKind::Lz78 => Box::new(Lz78Predictor::new()),
            PredictorKind::DepGraph(w) => Box::new(DependencyGraph::new(*w)),
            PredictorKind::Ensemble => Box::new(Ensemble::new(
                vec![Box::new(MarkovPredictor::new(1)), Box::new(Lz78Predictor::new())],
                0.02,
            )),
        }
    }

    pub fn label(&self) -> String {
        match self {
            PredictorKind::Oracle => "oracle".into(),
            PredictorKind::Markov1 => "markov1".into(),
            PredictorKind::Markov2 => "markov2".into(),
            PredictorKind::Ppm2 => "ppm2".into(),
            PredictorKind::Lz78 => "lz78".into(),
            PredictorKind::DepGraph(w) => format!("depgraph{w}"),
            PredictorKind::Ensemble => "ensemble".into(),
        }
    }
}

/// Prefetch policy under test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// Never prefetch.
    NoPrefetch,
    /// Prefetch every candidate with positive probability.
    PrefetchAll,
    /// Prefetch candidates above a constant threshold.
    FixedThreshold(f64),
    /// The paper's policy: threshold `ρ̂′` from online estimation (model A).
    Adaptive,
}

impl Policy {
    pub fn label(&self) -> String {
        match self {
            Policy::NoPrefetch => "no-prefetch".into(),
            Policy::PrefetchAll => "prefetch-all".into(),
            Policy::FixedThreshold(t) => format!("fixed({t:.2})"),
            Policy::Adaptive => "adaptive(pth=rho')".into(),
        }
    }
}

/// Configuration of one end-to-end run.
#[derive(Clone, Copy, Debug)]
pub struct TracedConfig {
    /// Workload shape (clients, λ, catalog, link structure, sizes).
    pub web: SynthWebConfig,
    /// Per-client cache capacity (items).
    pub cache_capacity: usize,
    /// Shared link bandwidth `b` (size-units/s).
    pub bandwidth: f64,
    /// Access model.
    pub predictor: PredictorKind,
    /// Prefetch policy.
    pub policy: Policy,
    /// Maximum candidates considered per request.
    pub max_candidates: usize,
    /// Mean of the exponential delay between a prefetch decision and the
    /// job's issue. Zero issues prefetches at the request instant, which
    /// creates batch arrivals at the link (M^[X]/G/1) and measurably
    /// inflates *demand* sojourns — real prefetchers pace their traffic,
    /// and the paper's M/G/1 model assumes Poisson superposition.
    pub prefetch_jitter: f64,
    /// Total user requests.
    pub requests: usize,
    /// Warm-up requests (unmeasured).
    pub warmup: usize,
}

impl Default for TracedConfig {
    fn default() -> Self {
        TracedConfig {
            web: SynthWebConfig::default(),
            cache_capacity: 32,
            bandwidth: 50.0,
            predictor: PredictorKind::Markov1,
            policy: Policy::Adaptive,
            max_candidates: 4,
            prefetch_jitter: 0.01,
            requests: 60_000,
            warmup: 10_000,
        }
    }
}

/// Results of one end-to-end run.
#[derive(Clone, Debug)]
pub struct TracedReport {
    /// Policy label.
    pub policy: String,
    /// Predictor label.
    pub predictor: String,
    /// Measured requests (post warm-up).
    pub requests: u64,
    /// Mean user-perceived access time (hits are zero).
    pub mean_access_time: f64,
    /// 95% CI half width (batch means).
    pub access_time_ci95: f64,
    /// Real hit ratio with prefetching.
    pub hit_ratio: f64,
    /// §4 estimate of the counterfactual `h′` (model A form).
    pub h_prime_estimate: f64,
    /// Ground-truth `h′` from the twin (no-prefetch) caches.
    pub twin_h_prime: f64,
    /// Link utilisation (busy fraction).
    pub utilisation: f64,
    /// Prefetch jobs issued per user request (`n̄(F)` realised).
    pub prefetches_per_request: f64,
    /// Fraction of prefetch insertions that served a later hit.
    pub useful_prefetch_fraction: f64,
    /// Mean threshold applied over measured requests.
    pub mean_threshold: f64,
    /// Network bytes (size-units) moved per user request (demand + prefetch).
    pub bytes_per_request: f64,
    /// Fraction of prefetched bytes that never served a hit.
    pub wasted_prefetch_bytes_fraction: f64,
}

#[derive(Clone, Copy)]
enum Job {
    Demand { client: u32, item: ItemId, issued: f64, measured: bool },
    Prefetch { client: u32, item: ItemId },
}

/// A prefetch decision waiting out its jitter before hitting the link.
#[derive(Clone, Copy)]
struct PendingPrefetch {
    due: f64,
    client: u32,
    item: ItemId,
    size: f64,
}

impl PartialEq for PendingPrefetch {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for PendingPrefetch {}
impl PartialOrd for PendingPrefetch {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingPrefetch {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest due first.
        other.due.total_cmp(&self.due)
    }
}

struct Client {
    cache: TaggedCache<ItemId, LruCache<ItemId>>,
    twin: LruCache<ItemId>,
    predictor: Box<dyn Predictor>,
    inflight: HashSet<ItemId>,
}

/// Runs the end-to-end simulation.
pub fn run(config: &TracedConfig, seed: u64) -> TracedReport {
    let mut rng = Rng::new(seed);
    let mut web = SynthWeb::new(config.web, &mut rng);
    let n_clients = config.web.n_clients;

    let mut clients: Vec<Client> = (0..n_clients)
        .map(|_| Client {
            cache: TaggedCache::new(LruCache::new(config.cache_capacity)),
            twin: LruCache::new(config.cache_capacity),
            predictor: config.predictor.build(&web),
            inflight: HashSet::new(),
        })
        .collect();

    let mut controller = AdaptiveController::new(ControllerConfig::model_a(config.bandwidth));
    let mut server: PsServer<Job> = PsServer::new(config.bandwidth);

    let mut access_times = BatchMeans::new(20);
    let mut hits = 0u64;
    let mut measured = 0u64;
    let mut twin_hits = 0u64;
    let mut twin_accesses = 0u64;
    let mut prefetch_jobs = 0u64;
    let mut threshold_sum = 0.0;
    let mut threshold_n = 0u64;
    let mut demand_bytes = 0.0f64;
    let mut prefetch_bytes = 0.0f64;
    let mut used_prefetch_bytes = 0.0f64;

    let warm = config.warmup as u64;
    let n_requests = config.requests as u64;
    let mut issued = 0u64;
    let mut pending = web.next_request(&mut rng);
    let mut t_end = 0.0;
    let mut jitter_rng = rng.split();
    let mut delayed: std::collections::BinaryHeap<PendingPrefetch> = Default::default();
    // Requests that missed while a fetch for the same (client, item) was
    // already in flight wait for that fetch instead of duplicating it.
    let mut waiters: std::collections::HashMap<(u32, ItemId), Vec<(f64, bool)>> =
        Default::default();

    #[derive(PartialEq)]
    enum Ev {
        Server,
        Request,
        IssuePrefetch,
        Done,
    }

    loop {
        let more = issued < n_requests;
        let ts = server.next_event().map_or(f64::INFINITY, |t| t);
        let tr = if more { pending.time } else { f64::INFINITY };
        // Pending prefetches are still issued after the request stream ends
        // so that any waiters attached to them resolve.
        let tp = delayed.peek().map_or(f64::INFINITY, |p| p.due);
        let ev = if ts.is_infinite() && tr.is_infinite() && tp.is_infinite() {
            Ev::Done
        } else if ts <= tr && ts <= tp {
            Ev::Server
        } else if tr <= tp {
            Ev::Request
        } else {
            Ev::IssuePrefetch
        };

        if ev == Ev::Done {
            break;
        }

        if ev == Ev::IssuePrefetch {
            let p = delayed.pop().expect("pending prefetch");
            t_end = p.due;
            // The item may have been demand-fetched while waiting; the
            // in-flight marker was set at decision time, so only issue if
            // it is still not cached.
            if !clients[p.client as usize].cache.inner().contains(&p.item) {
                prefetch_jobs += 1;
                prefetch_bytes += p.size;
                server.arrive(p.due, p.size, Job::Prefetch { client: p.client, item: p.item });
            } else {
                clients[p.client as usize].inflight.remove(&p.item);
            }
            continue;
        }

        if ev == Ev::Server {
            let t = ts;
            t_end = t;
            for c in server.on_event(t) {
                match c.tag {
                    Job::Demand { client, item, issued: t0, measured: m } => {
                        let cl = &mut clients[client as usize];
                        cl.cache.admit_after_fetch(item);
                        cl.inflight.remove(&item);
                        if m {
                            access_times.push(t - t0);
                        }
                        if let Some(ws) = waiters.remove(&(client, item)) {
                            for (tw, mw) in ws {
                                if mw {
                                    access_times.push(t - tw);
                                }
                            }
                        }
                    }
                    Job::Prefetch { client, item } => {
                        let cl = &mut clients[client as usize];
                        if let Some(ws) = waiters.remove(&(client, item)) {
                            // The item was demanded while the prefetch was in
                            // flight: it arrives as a demand-fetched (tagged)
                            // entry and the waiters' clocks stop now.
                            cl.cache.admit_after_fetch(item);
                            for (tw, mw) in ws {
                                if mw {
                                    access_times.push(t - tw);
                                }
                            }
                        } else {
                            cl.cache.prefetch_insert(item);
                            controller.on_prefetch_insert();
                        }
                        cl.inflight.remove(&item);
                    }
                }
            }
        } else {
            let req = pending;
            pending = web.next_request(&mut rng);
            let t = req.time;
            t_end = t;
            let idx = issued;
            issued += 1;
            let in_window = idx >= warm;
            let client_id = req.client;
            let cl = &mut clients[client_id as usize];

            // Twin (no-prefetch) cache: ground truth h′.
            let twin_hit = cl.twin.touch(req.item);
            if !twin_hit {
                cl.twin.insert(req.item);
            }
            if in_window {
                twin_accesses += 1;
                if twin_hit {
                    twin_hits += 1;
                }
            }

            // Main cache.
            match cl.cache.probe(req.item) {
                AccessKind::HitTagged => {
                    controller.on_cache_hit(t, EntryStatus::Tagged, req.size);
                    if in_window {
                        access_times.push(0.0);
                        hits += 1;
                        measured += 1;
                    }
                }
                AccessKind::HitUntagged => {
                    controller.on_cache_hit(t, EntryStatus::Untagged, req.size);
                    used_prefetch_bytes += req.size;
                    if in_window {
                        access_times.push(0.0);
                        hits += 1;
                        measured += 1;
                    }
                }
                AccessKind::Miss => {
                    controller.on_miss(t, req.size);
                    if in_window {
                        measured += 1;
                    }
                    if cl.inflight.contains(&req.item) {
                        // Join the in-flight fetch (demand or prefetch)
                        // instead of duplicating it.
                        waiters.entry((client_id, req.item)).or_default().push((t, in_window));
                    } else {
                        cl.inflight.insert(req.item);
                        demand_bytes += req.size;
                        server.arrive(
                            t,
                            req.size,
                            Job::Demand {
                                client: client_id,
                                item: req.item,
                                issued: t,
                                measured: in_window,
                            },
                        );
                    }
                }
            }

            // Predict and prefetch.
            cl.predictor.observe(req.item);
            let threshold = match config.policy {
                Policy::NoPrefetch => f64::INFINITY,
                Policy::PrefetchAll => 0.0,
                Policy::FixedThreshold(th) => th,
                Policy::Adaptive => controller.policy().threshold,
            };
            if in_window && threshold.is_finite() {
                threshold_sum += threshold;
                threshold_n += 1;
            }
            if threshold.is_finite() {
                let candidates = cl.predictor.candidates(config.max_candidates);
                for (item, p) in candidates {
                    if p > threshold
                        && !cl.cache.inner().contains(&item)
                        && !cl.inflight.contains(&item)
                    {
                        cl.inflight.insert(item);
                        let size = web.catalog.size(item);
                        if config.prefetch_jitter > 0.0 {
                            let due = t + jitter_rng.exp(1.0 / config.prefetch_jitter);
                            delayed.push(PendingPrefetch { due, client: client_id, item, size });
                        } else {
                            prefetch_jobs += 1;
                            prefetch_bytes += size;
                            server.arrive(t, size, Job::Prefetch { client: client_id, item });
                        }
                    }
                }
            }
        }
    }

    // Aggregate tagged-cache statistics across clients.
    let mut n_access = 0u64;
    let mut n_cf_hits = 0u64;
    let mut prefetch_inserts = 0u64;
    let mut useful = 0u64;
    for cl in &clients {
        n_access += cl.cache.accesses();
        n_cf_hits += cl.cache.counterfactual_hits();
        prefetch_inserts += cl.cache.prefetch_inserts();
        // Useful prefetches: untagged entries that were touched. Every
        // HitUntagged converts exactly one prefetched entry, so count them
        // via real-vs-counterfactual difference.
        useful += cl.cache.real_hits() - cl.cache.counterfactual_hits();
    }

    let (mean_access, ci) = access_times.mean_ci();
    TracedReport {
        policy: config.policy.label(),
        predictor: config.predictor.label(),
        requests: measured,
        mean_access_time: mean_access,
        access_time_ci95: ci,
        hit_ratio: hits as f64 / measured.max(1) as f64,
        h_prime_estimate: if n_access > 0 { n_cf_hits as f64 / n_access as f64 } else { 0.0 },
        twin_h_prime: twin_hits as f64 / twin_accesses.max(1) as f64,
        utilisation: server.utilisation(t_end),
        prefetches_per_request: prefetch_jobs as f64 / n_requests.max(1) as f64,
        useful_prefetch_fraction: if prefetch_inserts > 0 {
            useful as f64 / prefetch_inserts as f64
        } else {
            0.0
        },
        mean_threshold: if threshold_n > 0 { threshold_sum / threshold_n as f64 } else { f64::NAN },
        bytes_per_request: (demand_bytes + prefetch_bytes) / n_requests.max(1) as f64,
        wasted_prefetch_bytes_fraction: if prefetch_bytes > 0.0 {
            (1.0 - used_prefetch_bytes / prefetch_bytes).max(0.0)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> TracedConfig {
        TracedConfig {
            web: SynthWebConfig {
                n_clients: 12,
                lambda: 30.0,
                n_items: 400,
                branching: 3,
                link_skew: 0.3, // skewed: top successor ~0.72
                mean_size: 1.0,
                size_shape: 2.5,
            },
            cache_capacity: 24,
            bandwidth: 60.0,
            predictor: PredictorKind::Oracle,
            policy: Policy::Adaptive,
            max_candidates: 3,
            prefetch_jitter: 0.01,
            requests: 50_000,
            warmup: 10_000,
        }
    }

    #[test]
    fn estimator_recovers_twin_h_prime() {
        // E6 in miniature: the §4 estimate must track the twin-cache truth
        // while prefetching is live.
        let mut cfg = base_config();
        cfg.policy = Policy::Adaptive;
        let r = run(&cfg, 11);
        assert!(
            (r.h_prime_estimate - r.twin_h_prime).abs() < 0.05,
            "estimate {} vs twin {}",
            r.h_prime_estimate,
            r.twin_h_prime
        );
        // Prefetching actually happened.
        assert!(r.prefetches_per_request > 0.05, "nf {}", r.prefetches_per_request);
        // And raised the hit ratio above the counterfactual.
        assert!(r.hit_ratio > r.twin_h_prime, "h {} vs h' {}", r.hit_ratio, r.twin_h_prime);
    }

    #[test]
    fn adaptive_beats_no_prefetch_with_oracle() {
        let mut cfg = base_config();
        cfg.policy = Policy::NoPrefetch;
        let base = run(&cfg, 21);
        cfg.policy = Policy::Adaptive;
        let adapt = run(&cfg, 21);
        assert!(
            adapt.mean_access_time < base.mean_access_time,
            "adaptive {} vs baseline {}",
            adapt.mean_access_time,
            base.mean_access_time
        );
    }

    #[test]
    fn byte_accounting_is_coherent() {
        let mut cfg = base_config();
        cfg.policy = Policy::NoPrefetch;
        let base = run(&cfg, 71);
        // Without prefetching: bytes/request ≈ miss ratio × mean request
        // size (sizes are popularity-weighted, so compare loosely).
        assert!(base.bytes_per_request > 0.0);
        assert_eq!(base.wasted_prefetch_bytes_fraction, 0.0);
        cfg.policy = Policy::Adaptive;
        let adaptive = run(&cfg, 71);
        // Prefetching adds traffic…
        assert!(adaptive.bytes_per_request > base.bytes_per_request);
        // …and with a skewed oracle, most prefetched bytes get used.
        assert!(
            adaptive.wasted_prefetch_bytes_fraction < 0.5,
            "wasted {}",
            adaptive.wasted_prefetch_bytes_fraction
        );
        cfg.policy = Policy::PrefetchAll;
        let all = run(&cfg, 71);
        assert!(
            all.wasted_prefetch_bytes_fraction > adaptive.wasted_prefetch_bytes_fraction,
            "prefetch-all should waste more: {} vs {}",
            all.wasted_prefetch_bytes_fraction,
            adaptive.wasted_prefetch_bytes_fraction
        );
    }

    #[test]
    fn no_prefetch_hit_ratio_equals_twin() {
        let mut cfg = base_config();
        cfg.policy = Policy::NoPrefetch;
        let r = run(&cfg, 31);
        // With prefetching off, the main cache behaves exactly like the twin
        // (admission timing differs — fetch completion vs instant — so allow
        // a small gap).
        assert!(
            (r.hit_ratio - r.twin_h_prime).abs() < 0.02,
            "h {} vs twin {}",
            r.hit_ratio,
            r.twin_h_prime
        );
        assert_eq!(r.prefetches_per_request, 0.0);
        // §4 estimate degenerates to the real hit ratio.
        assert!((r.h_prime_estimate - r.hit_ratio).abs() < 0.02);
    }

    #[test]
    fn learned_predictor_close_to_oracle() {
        let mut cfg = base_config();
        cfg.predictor = PredictorKind::Markov1;
        cfg.policy = Policy::Adaptive;
        let learned = run(&cfg, 41);
        cfg.predictor = PredictorKind::Oracle;
        let oracle = run(&cfg, 41);
        // The learned model should capture most of the oracle's gain.
        assert!(
            learned.mean_access_time < oracle.mean_access_time * 1.5 + 1e-4,
            "learned {} vs oracle {}",
            learned.mean_access_time,
            oracle.mean_access_time
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = base_config();
        let a = run(&cfg, 5);
        let b = run(&cfg, 5);
        assert_eq!(a.mean_access_time, b.mean_access_time);
        assert_eq!(a.hit_ratio, b.hit_ratio);
        assert_eq!(a.prefetches_per_request, b.prefetches_per_request);
    }

    #[test]
    fn every_predictor_kind_runs() {
        let mut cfg = base_config();
        cfg.requests = 8_000;
        cfg.warmup = 2_000;
        for pk in [
            PredictorKind::Oracle,
            PredictorKind::Markov1,
            PredictorKind::Markov2,
            PredictorKind::Ppm2,
            PredictorKind::Lz78,
            PredictorKind::DepGraph(2),
            PredictorKind::Ensemble,
        ] {
            cfg.predictor = pk;
            let r = run(&cfg, 61);
            assert!(r.mean_access_time.is_finite(), "{}", pk.label());
            assert!(r.hit_ratio >= 0.0 && r.hit_ratio <= 1.0);
            // Every predictor learns *something* on this navigation graph.
            if pk != PredictorKind::DepGraph(2) {
                assert!(r.prefetches_per_request > 0.0, "{} never prefetched", pk.label());
            }
        }
    }

    #[test]
    fn prefetch_all_overloads_tight_link() {
        // With a tight link, prefetch-all must do worse than adaptive
        // (the paper's central warning: indiscriminate prefetching degrades
        // performance).
        let mut cfg = base_config();
        cfg.bandwidth = 40.0; // ρ′ ≈ 0.75·(1−h′) — tight
        cfg.web.link_skew = 0.9; // flat successor probabilities → poor candidates
        cfg.policy = Policy::PrefetchAll;
        let all = run(&cfg, 51);
        cfg.policy = Policy::Adaptive;
        let adaptive = run(&cfg, 51);
        assert!(
            adaptive.mean_access_time < all.mean_access_time,
            "adaptive {} vs prefetch-all {}",
            adaptive.mean_access_time,
            all.mean_access_time
        );
        // Prefetch-all should have pushed utilisation well above adaptive's.
        assert!(all.utilisation > adaptive.utilisation + 0.05);
    }
}
