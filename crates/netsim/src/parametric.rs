//! Parametric validation simulator.
//!
//! Implements the paper's §2 model as a *mechanism* rather than a formula:
//!
//! * users issue Poisson(λ) requests;
//! * each request is a cache hit with probability `h = h′ + n̄(F)·p`
//!   (model A, eq 7) — hits cost zero;
//! * each miss submits a demand-fetch job (size ~ `size_dist`) to a shared
//!   processor-sharing server of capacity `b`; the access time is the
//!   job's sojourn;
//! * prefetch jobs arrive as an independent Poisson stream of rate
//!   `n̄(F)·λ`; they load the server but nobody waits on them.
//!
//! Prefetch arrivals are *Poissonised* rather than issued in a batch with
//! each request: the paper models the server as M/G/1 with total arrival
//! rate `(1−h+n̄(F))λ`, which presumes Poisson superposition. Issuing
//! `n̄(F)` jobs at the very instant of each request creates batch arrivals
//! (M^[X]/G/1), measurably inflating sojourns above `x̄/(1−ρ)` — a real
//! second-order effect the paper's model ignores; we quantify it in
//! EXPERIMENTS.md (E7) and keep the mechanism faithful to the assumption
//! here.
//!
//! Everything the paper derives — `t̄`, `ρ`, `G`, `C` — is then *measured*
//! and compared against the closed forms. PS insensitivity means any size
//! distribution with mean `s̄` must reproduce them.

use prefetch_core::{ModelA, SystemParams};
use queueing::{PsServer, Server};
use simcore::dist::Sample;
use simcore::rng::Rng;
use simcore::stats::{BatchMeans, Welford};

/// Configuration for one parametric run.
pub struct ParametricConfig<'a> {
    /// The paper's system parameters (λ, b, s̄, h′).
    pub params: SystemParams,
    /// `n̄(F)` — mean prefetches per request (fractional allowed).
    pub n_f: f64,
    /// `p` — access probability of prefetched items.
    pub p: f64,
    /// Item-size distribution; its mean must equal `params.mean_size`.
    pub size_dist: &'a dyn Sample,
    /// Number of user requests to simulate.
    pub requests: usize,
    /// Requests discarded as warm-up.
    pub warmup: usize,
}

impl ParametricConfig<'_> {
    fn validate(&self) {
        assert!(self.requests > self.warmup, "need post-warmup requests");
        let dist_mean = self.size_dist.mean();
        assert!(
            (dist_mean - self.params.mean_size).abs() / self.params.mean_size < 1e-6,
            "size distribution mean {dist_mean} != s̄ {}",
            self.params.mean_size
        );
        assert!((0.0..=1.0).contains(&self.p));
        assert!(self.n_f >= 0.0);
    }
}

/// Measurements from one parametric run.
#[derive(Clone, Debug)]
pub struct ParametricReport {
    /// Mean access time over all requests (hits count as zero).
    pub mean_access_time: f64,
    /// 95% CI half-width on the mean access time (batch means).
    pub access_time_ci95: f64,
    /// Mean retrieval time of demand fetches only (the paper's `r̄`).
    pub mean_retrieval_time: f64,
    /// Measured hit ratio.
    pub hit_ratio: f64,
    /// Measured server utilisation (busy fraction over the whole run).
    pub utilisation: f64,
    /// Retrieval time per user request, `R` (demand + prefetch sojourns).
    pub retrieval_per_request: f64,
    /// Requests measured (post warm-up).
    pub measured_requests: u64,
}

#[derive(Clone, Copy)]
enum JobKind {
    /// Demand fetch for request number `idx`, issued at `issued`.
    Demand { idx: u64, issued: f64 },
    /// Speculative prefetch; `measured` = issued after warm-up.
    Prefetch { issued: f64, measured: bool },
}

/// Runs the parametric simulation.
pub fn run(config: &ParametricConfig<'_>, seed: u64) -> ParametricReport {
    config.validate();
    let mut rng = Rng::new(seed);
    let params = &config.params;
    // Model-A effective hit probability (clamped like the closed form).
    let h = (params.h_prime + config.n_f * config.p).min(1.0);

    let mut server: PsServer<JobKind> = PsServer::new(params.bandwidth);
    let mut access_times = BatchMeans::new(20);
    let mut retrievals = Welford::new();
    let mut hits = 0u64;
    // Total retrieval time consumed by measured jobs (demand + prefetch),
    // for the per-request retrieval cost R.
    let mut total_job_time = 0.0;

    let prefetch_rate = config.n_f * params.lambda;
    let mut prefetch_rng = rng.split();

    let warm = config.warmup as u64;
    let n_requests = config.requests as u64;
    let mut next_request_t = rng.exp(params.lambda);
    let mut next_prefetch_t =
        if prefetch_rate > 0.0 { prefetch_rng.exp(prefetch_rate) } else { f64::INFINITY };
    let mut issued: u64 = 0;
    let mut in_window = false;
    let mut t_end = 0.0;

    loop {
        let next_server = server.next_event();
        let more_requests = issued < n_requests;
        // The prefetch stream stops with the request stream.
        let next_prefetch = if more_requests { next_prefetch_t } else { f64::INFINITY };

        enum Ev {
            Server(f64),
            Request,
            Prefetch,
        }
        let ev = match (next_server, more_requests) {
            (None, false) => break,
            (ns, _) => {
                let ts = ns.map_or(f64::INFINITY, |t| t);
                let tr = if more_requests { next_request_t } else { f64::INFINITY };
                if ts <= tr && ts <= next_prefetch {
                    Ev::Server(ts)
                } else if tr <= next_prefetch {
                    Ev::Request
                } else {
                    Ev::Prefetch
                }
            }
        };

        match ev {
            Ev::Server(t) => {
                t_end = t;
                for c in server.on_event(t) {
                    match c.tag {
                        JobKind::Demand { idx, issued: t0 } => {
                            let sojourn = t - t0;
                            if idx >= warm {
                                access_times.push(sojourn);
                                retrievals.push(sojourn);
                                total_job_time += sojourn;
                            }
                        }
                        JobKind::Prefetch { issued: t0, measured } => {
                            if measured {
                                total_job_time += t - t0;
                            }
                        }
                    }
                }
            }
            Ev::Request => {
                let t = next_request_t;
                t_end = t;
                let idx = issued;
                issued += 1;
                in_window = idx >= warm;
                // Hit or miss?
                if rng.chance(h) {
                    if in_window {
                        access_times.push(0.0);
                        hits += 1;
                    }
                } else {
                    let size = config.size_dist.sample(&mut rng);
                    server.arrive(t, size, JobKind::Demand { idx, issued: t });
                }
                next_request_t = t + rng.exp(params.lambda);
            }
            Ev::Prefetch => {
                let t = next_prefetch_t;
                t_end = t;
                let size = config.size_dist.sample(&mut prefetch_rng);
                server.arrive(t, size, JobKind::Prefetch { issued: t, measured: in_window });
                next_prefetch_t = t + prefetch_rng.exp(prefetch_rate);
            }
        }
    }

    let measured_requests = n_requests - warm;
    let utilisation = server.utilisation(t_end);
    let (mean_access, ci) = access_times.mean_ci();

    ParametricReport {
        mean_access_time: mean_access,
        access_time_ci95: ci,
        mean_retrieval_time: retrievals.mean(),
        hit_ratio: hits as f64 / measured_requests as f64,
        utilisation,
        retrieval_per_request: total_job_time / measured_requests as f64,
        measured_requests,
    }
}

/// Convenience: run the no-prefetch baseline and a prefetch configuration
/// under the shared Fig-2/3 sweep convention
/// ([`simcore::par::sweep_vs_baseline`]: baseline at `seed`, treatment at
/// `seed + 1`), returning (baseline, with-prefetch, measured G).
pub fn run_with_baseline(
    config: &ParametricConfig<'_>,
    seed: u64,
) -> (ParametricReport, ParametricReport, f64) {
    let (base, mut with) = simcore::par::sweep_vs_baseline(
        &(0.0, 0.0),
        &[(config.n_f, config.p)],
        seed,
        |&(n_f, p), run_seed| {
            let point = ParametricConfig {
                params: config.params,
                n_f,
                p,
                size_dist: config.size_dist,
                requests: config.requests,
                warmup: config.warmup,
            };
            run(&point, run_seed)
        },
    );
    let with = with.pop().expect("one treatment point");
    let g = base.mean_access_time - with.mean_access_time;
    (base, with, g)
}

/// The model-A prediction for this configuration (for comparison columns).
pub fn predicted(config: &ParametricConfig<'_>) -> ModelA {
    ModelA::new(config.params, config.n_f, config.p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::dist::{Exponential, Pareto};

    const N: usize = 120_000;
    const WARM: usize = 20_000;

    fn fig2_params(h: f64) -> SystemParams {
        SystemParams::paper_figure2(h)
    }

    #[test]
    fn baseline_matches_eq5() {
        // No prefetch: t̄′ = f′s̄/(b−f′λs̄) = 0.05 at h′=0.
        let size = Exponential::with_mean(1.0);
        let config = ParametricConfig {
            params: fig2_params(0.0),
            n_f: 0.0,
            p: 0.0,
            size_dist: &size,
            requests: N,
            warmup: WARM,
        };
        let r = run(&config, 1);
        let predicted = config.params.access_time().unwrap();
        assert!(
            (r.mean_access_time - predicted).abs() / predicted < 0.05,
            "measured {} vs eq(5) {predicted}",
            r.mean_access_time
        );
        assert!((r.utilisation - 0.6).abs() < 0.03, "rho {}", r.utilisation);
        assert!(r.hit_ratio < 0.01);
    }

    #[test]
    fn baseline_with_cache_matches_eq5() {
        let size = Exponential::with_mean(1.0);
        let config = ParametricConfig {
            params: fig2_params(0.3),
            n_f: 0.0,
            p: 0.0,
            size_dist: &size,
            requests: N,
            warmup: WARM,
        };
        let r = run(&config, 2);
        let predicted = config.params.access_time().unwrap();
        assert!(
            (r.mean_access_time - predicted).abs() / predicted < 0.05,
            "measured {} vs {predicted}",
            r.mean_access_time
        );
        assert!((r.hit_ratio - 0.3).abs() < 0.01);
        assert!((r.utilisation - 0.42).abs() < 0.03);
    }

    #[test]
    fn prefetch_run_matches_eq10() {
        // n̄(F)=1, p=0.9, h′=0: h=0.9, ρ=0.66, eq(10):
        // t̄ = (f′−n̄F·p)s̄/(b−f′λs̄−n̄F(1−p)λs̄) = 0.1/17 ≈ 0.00588.
        let size = Exponential::with_mean(1.0);
        let config = ParametricConfig {
            params: fig2_params(0.0),
            n_f: 1.0,
            p: 0.9,
            size_dist: &size,
            requests: N,
            warmup: WARM,
        };
        let r = run(&config, 3);
        let m = predicted(&config);
        let t_pred = m.access_time().unwrap();
        assert!(
            (r.mean_access_time - t_pred).abs() / t_pred < 0.08,
            "measured {} vs eq(10) {t_pred}",
            r.mean_access_time
        );
        assert!((r.hit_ratio - 0.9).abs() < 0.01, "h {}", r.hit_ratio);
        assert!((r.utilisation - m.utilisation()).abs() < 0.03, "rho {}", r.utilisation);
    }

    #[test]
    fn insensitivity_pareto_sizes() {
        // Same mean, heavy-tailed sizes: PS makes t̄ depend on the mean only.
        let size = Pareto::with_mean(1.0, 2.5);
        let config = ParametricConfig {
            params: fig2_params(0.0),
            n_f: 1.0,
            p: 0.9,
            size_dist: &size,
            requests: N,
            warmup: WARM,
        };
        let r = run(&config, 4);
        let t_pred = predicted(&config).access_time().unwrap();
        assert!(
            (r.mean_access_time - t_pred).abs() / t_pred < 0.12,
            "measured {} vs {t_pred}",
            r.mean_access_time
        );
    }

    #[test]
    fn measured_g_matches_eq11_sign_and_magnitude() {
        let size = Exponential::with_mean(1.0);
        // Profitable: p=0.9 > pth=0.6.
        let config = ParametricConfig {
            params: fig2_params(0.0),
            n_f: 1.0,
            p: 0.9,
            size_dist: &size,
            requests: N,
            warmup: WARM,
        };
        let (_, _, g) = run_with_baseline(&config, 5);
        let g_pred = predicted(&config).improvement().unwrap();
        assert!(g > 0.0, "measured G {g}");
        assert!((g - g_pred).abs() / g_pred < 0.25, "G {g} vs {g_pred}");

        // Unprofitable: p=0.3 < 0.6 (volume kept small so the system stays
        // stable: ρ = (1−0.15+0.5)·0.6 = 0.81).
        let config = ParametricConfig {
            params: fig2_params(0.0),
            n_f: 0.5,
            p: 0.3,
            size_dist: &size,
            requests: N,
            warmup: WARM,
        };
        let (_, _, g) = run_with_baseline(&config, 6);
        let g_pred = predicted(&config).improvement().unwrap();
        assert!(g < 0.0, "measured G {g} should be negative");
        assert!((g - g_pred).abs() < 0.4 * g_pred.abs(), "G {g} vs {g_pred}");
    }

    #[test]
    fn excess_cost_positive_and_near_eq27() {
        let size = Exponential::with_mean(1.0);
        let config = ParametricConfig {
            params: fig2_params(0.0),
            n_f: 1.0,
            p: 0.9,
            size_dist: &size,
            requests: N,
            warmup: WARM,
        };
        let (base, with, _) = run_with_baseline(&config, 7);
        let c_measured = with.retrieval_per_request - base.retrieval_per_request;
        let c_pred = predicted(&config).excess_cost().unwrap();
        assert!(c_measured > 0.0);
        assert!(
            (c_measured - c_pred).abs() / c_pred < 0.3,
            "C measured {c_measured} vs eq(27) {c_pred}"
        );
    }

    #[test]
    fn load_impedance_measured() {
        // Identical prefetch volume at low vs high background load: the
        // high-load system pays more (paper §5).
        let size = Exponential::with_mean(1.0);
        let mut costs = Vec::new();
        for &lambda in &[10.0, 40.0] {
            let params = SystemParams::new(lambda, 50.0, 1.0, 0.0).unwrap();
            let config = ParametricConfig {
                params,
                n_f: 0.3,
                p: 0.5,
                size_dist: &size,
                requests: N,
                warmup: WARM,
            };
            let (base, with, _) = run_with_baseline(&config, 8);
            costs.push(with.retrieval_per_request - base.retrieval_per_request);
        }
        assert!(
            costs[1] > costs[0] * 1.5,
            "high-load cost {} must exceed low-load {}",
            costs[1],
            costs[0]
        );
    }

    #[test]
    fn fractional_prefetch_volume() {
        let size = Exponential::with_mean(1.0);
        let config = ParametricConfig {
            params: fig2_params(0.3),
            n_f: 0.5,
            p: 0.8,
            size_dist: &size,
            requests: N,
            warmup: WARM,
        };
        let r = run(&config, 8);
        let m = predicted(&config);
        // h = 0.3 + 0.4 = 0.7.
        assert!((r.hit_ratio - 0.7).abs() < 0.01, "h {}", r.hit_ratio);
        assert!((r.utilisation - m.utilisation()).abs() < 0.03);
    }

    #[test]
    fn deterministic_given_seed() {
        let size = Exponential::with_mean(1.0);
        let config = ParametricConfig {
            params: fig2_params(0.3),
            n_f: 0.5,
            p: 0.8,
            size_dist: &size,
            requests: 20_000,
            warmup: 2_000,
        };
        let a = run(&config, 42);
        let b = run(&config, 42);
        assert_eq!(a.mean_access_time, b.mean_access_time);
        assert_eq!(a.utilisation, b.utilisation);
    }
}
