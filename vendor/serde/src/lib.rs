//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of plain-data
//! types so downstream users can persist them, but no code path in this
//! repository serialises through serde at runtime. Since the build
//! environment cannot reach crates.io, this shim keeps those annotations
//! compiling: the derives (re-exported from the `serde_derive` shim) expand
//! to nothing, and the traits are satisfied by blanket impls.
//!
//! Swapping back to real serde is a two-line change in the workspace
//! manifest; no source edits are required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
