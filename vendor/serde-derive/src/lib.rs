//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace actually serialises through serde at runtime (the one JSON
//! codec, `workload::trace`, is hand-rolled). The derives therefore expand
//! to nothing; the sibling `serde` shim supplies blanket trait impls so
//! `T: Serialize` bounds still hold.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
