//! Test configuration, case outcomes, and the shim's RNG.

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: usize,
}

impl ProptestConfig {
    pub fn with_cases(cases: usize) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case does not apply (`prop_assume!` failed); try another.
    Reject(String),
    /// The property failed.
    Fail(String),
}

/// SplitMix64 generator: small, fast, and good enough for test-input
/// generation (the workspace's simulation RNG lives in `simcore::rng`).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Deterministic seed from the test's name, so every run regenerates
    /// the same case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (rejection-free; bias is negligible
    /// for test-input purposes).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // 128-bit multiply-shift maps the full 64-bit draw onto [0, bound).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut rng = TestRng::from_name("unit");
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn from_name_is_deterministic() {
        let mut a = TestRng::from_name("abc");
        let mut b = TestRng::from_name("abc");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
