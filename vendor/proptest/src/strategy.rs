//! Value-generation strategies (the generate-only core of proptest).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// produces a finished value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for any value of a type with a full-range uniform distribution.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types `any::<T>()` knows how to generate.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! float_range_strategy {
    ($t:ty) => {
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end - self.start;
                self.start + rng.unit_f64() as $t * span
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Split the unit draw so the endpoint is actually reachable.
                let u = rng.unit_f64();
                let scaled = lo + (u * 1.0000001) as $t * (hi - lo);
                scaled.min(hi)
            }
        }
    };
}

float_range_strategy!(f64);
float_range_strategy!(f32);

macro_rules! int_range_strategy {
    ($t:ty) => {
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    };
}

int_range_strategy!(u8);
int_range_strategy!(u16);
int_range_strategy!(u32);
int_range_strategy!(u64);
int_range_strategy!(usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
