//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! range strategies, tuples, `Just`, `any`, `prop_map`/`prop_flat_map`,
//! `collection::vec`, the `proptest!` macro, and the `prop_assert*` family.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case panics with the generated inputs in
//!   the message instead of a minimised counterexample.
//! * **Deterministic seeding** — the RNG is seeded from the test name, so
//!   runs are reproducible across machines (real proptest randomises unless
//!   a failure-persistence file exists).
//!
//! Both trade-offs keep the shim dependency-free so the workspace builds
//! without crates.io access.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Expands a block of property tests. Mirrors real proptest's surface:
/// an optional `#![proptest_config(..)]` header, then `#[test]` functions
/// whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strat = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted = 0usize;
                let mut rejected = 0usize;
                while accepted < config.cases {
                    let generated = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let debug_snapshot = format!("{:?}", generated);
                    let ($($pat,)+) = generated;
                    let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= 100 * config.cases + 1000,
                                "proptest '{}': too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed after {accepted} passing case(s): {msg}\n  inputs: {debug_snapshot}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Rejects (skips) the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
