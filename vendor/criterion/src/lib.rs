//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the `bench` crate uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock timer: each benchmark is warmed up once, then run for a fixed
//! number of iterations, reporting mean time per iteration (and throughput
//! when declared). No statistics, plots, or comparisons; it exists so
//! `cargo bench` works without crates.io access and still yields usable
//! relative numbers.
//!
//! Besides the human-readable stdout lines, every bench binary appends its
//! rows to a machine-readable `BENCH_<name>.json` in the working directory
//! (`<name>` = the bench target, e.g. `BENCH_cluster.json`) — one JSON
//! document per run with the mode (`test` for CI's `--test` smoke, `timed`
//! otherwise), the iteration count, and per-benchmark mean seconds and
//! throughput. CI archives it so the perf trajectory is diffable across
//! PRs without scraping stdout.

use std::sync::Mutex;
use std::time::Instant;

pub use std::hint::black_box;

/// One benchmark's collected result, queued for the JSON report.
struct Row {
    label: String,
    mean_secs: f64,
    throughput_per_sec: Option<f64>,
}

static RESULTS: Mutex<Vec<Row>> = Mutex::new(Vec::new());

/// Escapes a string for embedding in a JSON literal (labels are plain
/// ASCII identifiers in practice; this keeps the writer total anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number that round-trips non-finite values as null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:e}")
    } else {
        "null".to_string()
    }
}

/// The bench target's name: the binary file stem with cargo's trailing
/// `-<hash>` stripped (`cluster-1a2b…` → `cluster`).
fn bench_name() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem,
    }
}

/// Writes `BENCH_<name>.json` from the rows collected so far. Called by
/// `criterion_main!` after every group has run; harmless to call with no
/// rows.
pub fn write_json_report() {
    let rows = std::mem::take(&mut *RESULTS.lock().expect("bench results poisoned"));
    if rows.is_empty() {
        return;
    }
    let test_mode = std::env::args().any(|a| a == "--test");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&bench_name())));
    out.push_str(&format!("  \"mode\": \"{}\",\n", if test_mode { "test" } else { "timed" }));
    out.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let tp = row.throughput_per_sec.map_or("null".to_string(), json_f64);
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_secs\": {}, \"throughput_per_sec\": {}}}{}\n",
            json_escape(&row.label),
            json_f64(row.mean_secs),
            tp,
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    let path = format!("BENCH_{}.json", bench_name());
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {path} ({} rows)", rows.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Declared throughput of one benchmark, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Iterations per benchmark after one warm-up pass.
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` mirrors real criterion's test mode: run
        // every benchmark once to prove it still works, skip the timing
        // loop. CI uses it as a bench smoke step.
        let iterations = if std::env::args().any(|a| a == "--test") {
            1
        } else {
            std::env::var("BENCH_ITERATIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
        };
        Criterion { iterations }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iterations = self.iterations;
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, iterations }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&name.into(), None, self.iterations, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    // Held only so the group borrows the driver exclusively, like real
    // criterion's API shape.
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped iteration count (does not leak to later groups).
    iterations: u32,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u32).max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.throughput, self.iterations, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iterations: u32,
    /// Mean seconds per iteration, filled in by `iter`.
    mean_secs: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up (and forces at least one run)
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / self.iterations as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    iterations: u32,
    mut f: F,
) {
    let mut b = Bencher { iterations, mean_secs: f64::NAN };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / b.mean_secs),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / b.mean_secs),
        None => String::new(),
    };
    println!("{label:<40} {:>12.3} ms/iter{rate}", b.mean_secs * 1e3);
    RESULTS.lock().expect("bench results poisoned").push(Row {
        label: label.to_string(),
        mean_secs: b.mean_secs,
        throughput_per_sec: throughput.map(|t| match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n as f64 / b.mean_secs,
        }),
    });
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group, then writing the
/// machine-readable `BENCH_<name>.json` report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}
