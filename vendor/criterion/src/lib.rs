//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the `bench` crate uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock timer: each benchmark is warmed up once, then run for a fixed
//! number of iterations, reporting mean time per iteration (and throughput
//! when declared). No statistics, plots, or comparisons; it exists so
//! `cargo bench` works without crates.io access and still yields usable
//! relative numbers.

use std::time::Instant;

pub use std::hint::black_box;

/// Declared throughput of one benchmark, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Iterations per benchmark after one warm-up pass.
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` mirrors real criterion's test mode: run
        // every benchmark once to prove it still works, skip the timing
        // loop. CI uses it as a bench smoke step.
        let iterations = if std::env::args().any(|a| a == "--test") {
            1
        } else {
            std::env::var("BENCH_ITERATIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
        };
        Criterion { iterations }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iterations = self.iterations;
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, iterations }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&name.into(), None, self.iterations, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    // Held only so the group borrows the driver exclusively, like real
    // criterion's API shape.
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped iteration count (does not leak to later groups).
    iterations: u32,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u32).max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.throughput, self.iterations, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iterations: u32,
    /// Mean seconds per iteration, filled in by `iter`.
    mean_secs: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up (and forces at least one run)
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.mean_secs = start.elapsed().as_secs_f64() / self.iterations as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    iterations: u32,
    mut f: F,
) {
    let mut b = Bencher { iterations, mean_secs: f64::NAN };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / b.mean_secs),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / b.mean_secs),
        None => String::new(),
    };
    println!("{label:<40} {:>12.3} ms/iter{rate}", b.mean_secs * 1e3);
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
