//! The sharded parallel cluster driver on a latency mesh.
//!
//! ```text
//! cargo run --release --example sharded_mesh
//! ```
//!
//! A cooperative edge mesh where every link carries a propagation delay —
//! the physically honest WAN model, and the **conservative lookahead**
//! that lets the sharded driver run each partition on its own thread:
//! within a window of `lookahead` seconds past the globally earliest
//! pending event, no shard can affect another (every cross-shard handoff
//! takes at least that long to propagate), so the shards execute windows
//! in parallel and exchange in-flight transfers at barriers.
//!
//! The demo runs the same deployment at 1, 2, 4, and 8 shards and checks
//! the reports are **bit-identical**: sharding is an executor choice,
//! never a modelling choice. Wall-clock per ladder rung is printed too —
//! on a multi-core host the wide rungs win; on one core they tie, because
//! the windows only buy concurrency, never skipped work.

use speculative_prefetch::cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, CooperativeWorkload, ProxyPolicy,
    ShardPlan, Topology, Workload,
};
use speculative_prefetch::coop::{CoopConfig, DigestConfig};
use speculative_prefetch::workload::synth_web::SynthWebConfig;
use std::time::Instant;

fn main() {
    let n = 64;
    let latency = 0.05;
    // Two-tier tree + full peer mesh, every hop with 50 ms propagation.
    let topology = Topology::mesh_with_latency(n, 50.0, 25.0 * n as f64, 45.0, latency);
    println!(
        "topology: {n} proxies, {} links, {latency}s propagation per hop",
        topology.links().len()
    );

    let config = ClusterConfig {
        topology,
        workload: Workload::Cooperative(CooperativeWorkload {
            base: AdaptiveWorkload {
                proxies: (0..n)
                    .map(|_| SynthWebConfig {
                        lambda: 14.0,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 48,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy: ProxyPolicy::Adaptive,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: Some(99),
                delayed: Default::default(),
            },
            coop: CoopConfig {
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                ..CoopConfig::default()
            },
        }),
        requests_per_proxy: 250,
        warmup_per_proxy: 50,
    };

    // How the partitioner slices the fabric at each rung.
    println!("\nshard plans:");
    for shards in [1usize, 2, 4, 8] {
        let plan = ShardPlan::partition(&config.topology, shards);
        println!(
            "  {shards} shard(s): lookahead {}, edge cut {} of {} links",
            plan.lookahead(),
            plan.edge_cut(&config.topology),
            config.topology.links().len()
        );
    }

    // The ladder: same seed, same model, different executors. One
    // untimed warm-up first, so the 1-shard rung does not pay the
    // process's allocator growth on top of its own work.
    println!("\nshard ladder (seed 7):");
    let sim = ClusterSim::new(&config);
    let _ = sim.run(7);
    let mut oracle = None;
    for shards in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let report = sim.run_sharded(7, shards);
        let wall = start.elapsed().as_secs_f64();
        println!(
            "  {shards} shard(s): {wall:.2}s wall, mean access {:.5}, backbone {:.0} B",
            report.mean_access_time,
            report.link_bytes("backbone")
        );
        match &oracle {
            None => oracle = Some(report),
            Some(o) => assert_eq!(&report, o, "sharding changed the answer"),
        }
    }
    println!("\nall rungs bit-identical: the partition is invisible in the report.");
}
