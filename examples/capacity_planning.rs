//! Capacity planning with the threshold formula.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! Figure 1 turned into an operator's tool: given a workload `(λ, s̄, h′)`
//! and a candidate quality `p`, how much bandwidth do you need before
//! speculative prefetching starts paying? And how much before the prefetch
//! load itself would destabilise the link?

use speculative_prefetch::core::sensitivity::{
    min_bandwidth_for_profit, saturation_bandwidth, size_where_threshold_saturates,
    threshold_vs_size,
};
use speculative_prefetch::prelude::*;

fn main() {
    let lambda = 30.0;
    let h_prime = 0.3;
    let mean_size = 1.0;

    println!("workload: λ = {lambda} req/s, s̄ = {mean_size}, h′ = {h_prime}\n");

    // 1. The Figure-1 view: the profitability bar per bandwidth.
    println!("threshold p_th = f′λs̄/b (eq 13) by provisioned bandwidth:");
    println!("{:>6}  {:>8}  verdict for a p = 0.5 predictor", "b", "p_th");
    for b in [30.0, 42.0, 50.0, 70.0, 100.0, 200.0] {
        let pth = threshold_vs_size(lambda, b, h_prime, mean_size);
        let verdict = if pth >= 1.0 {
            "nothing is worth prefetching"
        } else if 0.5 > pth {
            "prefetching pays"
        } else {
            "prefetching hurts"
        };
        println!("{b:>6}  {pth:>8.3}  {verdict}");
    }
    println!();

    // 2. Exact break-even bandwidth for several candidate qualities.
    let params = SystemParams::new(lambda, 50.0, mean_size, h_prime).unwrap();
    println!("minimum bandwidth for prefetching items of quality p to pay (cond. 1 of eq 12):");
    for p in [0.9, 0.7, 0.5, 0.3] {
        let b_min = min_bandwidth_for_profit(&params, p);
        println!("  p = {p}: b > {b_min:.1}");
    }
    println!();

    // 3. Stability margin: bandwidth below which the prefetch volume itself
    //    saturates the server (condition 3 of eq 12).
    println!("saturation bandwidth for n̄(F) = 1 prefetch/request:");
    for p in [0.9, 0.5, 0.1] {
        let b_star = saturation_bandwidth(&params, 1.0, p);
        println!("  p = {p}: link saturates below b = {b_star:.1}");
    }
    println!();

    // 4. Item-size cutoff: beyond s*, even a certain access isn't worth it.
    let s_star = size_where_threshold_saturates(lambda, 50.0, h_prime).unwrap();
    println!("at b = 50, items larger than s* = {s_star:.2} are never worth prefetching");
    println!("(p_th(s) reaches 1 there — the Figure-1 curves hitting the ceiling).");
}
