//! Prefetching over a wireless (Gilbert–Elliott) channel — the paper's
//! future-work direction, runnable.
//!
//! ```text
//! cargo run --release --example wireless_channel
//! ```
//!
//! The link alternates between a good state (b = 80) and a fade (b = 26).
//! The profitability threshold `p_th = f′λs̄/b(t)` moves with the channel:
//! 0.26 in the good state, 0.81 in the fade. Candidates with p = 0.6 are
//! worth prefetching only while the channel is good — a policy that
//! ignores the channel keeps paying the load-impedance premium during
//! fades.

use speculative_prefetch::harness::experiments::e11_wireless::{
    run, WirelessConfig, WirelessPolicy,
};

fn main() {
    let config = WirelessConfig::default();
    let f_prime = 1.0 - config.h_prime;
    println!(
        "channel: b = {} (good, mean {}s) / {} (bad, mean {}s)",
        config.b_good, config.good_sojourn, config.b_bad, config.bad_sojourn
    );
    println!(
        "thresholds: p_th(good) = {:.2}, p_th(bad) = {:.2}; candidates have p = {}\n",
        f_prime * config.lambda * config.mean_size / config.b_good,
        f_prime * config.lambda * config.mean_size / config.b_bad,
        config.p
    );
    println!(
        "{:<24} {:>10} {:>8} {:>8} {:>20}",
        "policy", "t̄ (s)", "hit", "n̄(F)", "prefetches in fade"
    );
    for policy in
        [WirelessPolicy::Never, WirelessPolicy::StaticGoodState, WirelessPolicy::ChannelAware]
    {
        let r = run(&config, policy, 77);
        println!(
            "{:<24} {:>10.5} {:>8.3} {:>8.3} {:>19.1}%",
            r.policy,
            r.mean_access_time,
            r.hit_ratio,
            r.prefetches_per_request,
            100.0 * r.bad_state_prefetch_fraction
        );
    }
    println!();
    println!("The channel-aware policy applies the paper's rule p > f′λs̄/b(t) with");
    println!("the *current* bandwidth: it stops prefetching the moment a fade makes");
    println!("speculation unprofitable, and resumes when the channel recovers.");
}
