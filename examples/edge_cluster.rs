//! An edge deployment: 3 proxies, 2 origin shards, adaptive prefetching.
//!
//! ```text
//! cargo run --release --example edge_cluster
//! ```
//!
//! Three edge proxies front client populations of very different sizes and
//! fetch from a hash-sharded origin over private uplinks. Every proxy runs
//! the paper's adaptive policy with *its own* §4 estimators — and because
//! the threshold is `p̂_th = ρ̂′` computed from local traffic, the three
//! controllers converge to three different bars for speculation: the busy
//! proxy prefetches only near-certain successors while the idle one
//! speculates freely. The paper's single-path rule, applied node by node,
//! *is* a distributed control policy.

use speculative_prefetch::cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterSim, ProxyPolicy, Topology, Workload,
};
use speculative_prefetch::workload::synth_web::SynthWebConfig;

fn main() {
    // A small edge site (λ=6), a regional one (λ=16), a metro one (λ=30).
    let lambdas = [6.0, 16.0, 30.0];
    let topology = Topology::sharded_origin(lambdas.len(), 2, 45.0, 80.0);
    println!("topology: {} proxies, 2 shards, {} links", lambdas.len(), topology.links().len());
    for (i, link) in topology.links().iter().enumerate() {
        println!("  link {i}: {:<10} b = {}", link.name, link.bandwidth);
    }
    println!();

    let run = |policy| {
        let config = ClusterConfig {
            topology: topology.clone(),
            workload: Workload::Adaptive(AdaptiveWorkload {
                proxies: lambdas
                    .iter()
                    .map(|&lambda| SynthWebConfig {
                        lambda,
                        link_skew: 0.3,
                        ..SynthWebConfig::default()
                    })
                    .collect(),
                cache_capacity: 32,
                cache_bytes: None,
                max_candidates: 3,
                prefetch_jitter: 0.01,
                policy,
                predictor: CandidateSource::Oracle,
                shared_structure_seed: None,
                delayed: Default::default(),
            }),
            requests_per_proxy: 60_000,
            warmup_per_proxy: 10_000,
        };
        ClusterSim::new(&config).run(2001)
    };

    let baseline = run(ProxyPolicy::NoPrefetch);
    let adaptive = run(ProxyPolicy::Adaptive);

    println!("per-proxy adaptive control (same policy, different local loads):");
    println!(
        "{:>5} {:>7} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9}",
        "proxy", "lambda", "rho'_est", "p_th", "nf", "hit", "hit-base", "goodput%"
    );
    for (i, node) in adaptive.nodes.iter().enumerate() {
        let good = node.goodput_bytes.unwrap_or(0.0);
        let bad = node.badput_bytes.unwrap_or(0.0);
        let goodput = if good + bad > 0.0 { 100.0 * good / (good + bad) } else { 0.0 };
        println!(
            "{i:>5} {:>7} {:>9.3} {:>9.3} {:>8.3} {:>8.3} {:>9.3} {:>8.1}%",
            lambdas[i],
            node.rho_prime_estimate.unwrap_or(f64::NAN),
            node.mean_threshold.unwrap_or(f64::NAN),
            node.prefetches_per_request,
            node.hit_ratio,
            baseline.nodes[i].hit_ratio,
            goodput,
        );
    }

    println!("\nlinks:");
    for link in &adaptive.links {
        println!("  {:<10} rho = {:.3}", link.name, link.utilisation);
    }

    println!(
        "\ncluster access time: {:.4} adaptive vs {:.4} without prefetching",
        adaptive.mean_access_time, baseline.mean_access_time
    );

    let thresholds: Vec<f64> =
        adaptive.nodes.iter().map(|n| n.mean_threshold.unwrap_or(f64::NAN)).collect();
    println!(
        "\nthe same policy produced three different speculation bars: {:.3} < {:.3} < {:.3}",
        thresholds[0], thresholds[1], thresholds[2]
    );
    println!("each proxy's threshold is its own local rho' — no coordination required.");
}
