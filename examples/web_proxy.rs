//! A multi-client web proxy with speculative prefetching, end to end.
//!
//! ```text
//! cargo run --release --example web_proxy
//! ```
//!
//! Twelve clients browse a 400-page site (Markov navigation, heavy-tailed
//! page sizes) through one shared link. Each client has an LRU cache and a
//! learned order-1 Markov predictor. We compare the paper's adaptive
//! threshold policy against no prefetching and against indiscriminate
//! prefetching.

use speculative_prefetch::netsim::traced::{run, Policy, PredictorKind, TracedConfig};
use speculative_prefetch::workload::synth_web::SynthWebConfig;

fn main() {
    let base = TracedConfig {
        web: SynthWebConfig {
            n_clients: 12,
            lambda: 30.0,
            n_items: 400,
            branching: 3,
            link_skew: 0.3,
            mean_size: 1.0,
            size_shape: 2.5,
        },
        cache_capacity: 32,
        bandwidth: 60.0,
        predictor: PredictorKind::Markov1,
        policy: Policy::Adaptive,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        requests: 80_000,
        warmup: 15_000,
    };

    println!("12 clients, λ=30 req/s, b=60, LRU(32), learned Markov-1 predictor\n");
    println!(
        "{:<22} {:>10} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "policy", "t̄ (s)", "hit", "ρ", "n̄(F)", "useful", "thresh"
    );
    for policy in
        [Policy::NoPrefetch, Policy::Adaptive, Policy::FixedThreshold(0.45), Policy::PrefetchAll]
    {
        let mut cfg = base;
        cfg.policy = policy;
        let r = run(&cfg, 2024);
        println!(
            "{:<22} {:>10.5} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>8}",
            r.policy,
            r.mean_access_time,
            r.hit_ratio,
            r.utilisation,
            r.prefetches_per_request,
            r.useful_prefetch_fraction,
            if r.mean_threshold.is_nan() {
                "-".to_string()
            } else {
                format!("{:.3}", r.mean_threshold)
            },
        );
    }
    println!();
    println!("Reading: the adaptive policy (threshold = estimated ρ′, the paper's");
    println!("eq 13) cuts the mean access time below the no-prefetch baseline, while");
    println!("prefetch-all saturates the shared link and multiplies it instead.");
}
