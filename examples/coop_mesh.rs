//! Cooperative edge caching over a peer mesh.
//!
//! ```text
//! cargo run --release --example coop_mesh
//! ```
//!
//! Three identical edge proxies front the same item universe behind one
//! shared backbone. Without cooperation every proxy pulls its misses from
//! the origin, so hot objects cross the backbone once *per proxy*. With
//! the `coop` layer on, each proxy advertises its cache as a Bloom digest
//! every epoch and a consistent-hash router sends misses to the peer that
//! holds the object — the backbone sheds the redundant transfers while
//! hit ratios stay put, because cooperation only re-routes misses. The
//! run also prints the staleness tax: peers the digest *claimed* held an
//! object that was already evicted, forcing a fallback to the origin.

use speculative_prefetch::cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, Topology, Workload,
};
use speculative_prefetch::coop::{CoopConfig, DigestConfig};
use speculative_prefetch::workload::synth_web::SynthWebConfig;

fn main() {
    let n = 3;
    // Two-tier tree plus a full proxy↔proxy mesh: peer transfers ride the
    // peer[.] links, origin transfers the shared backbone.
    let topology = Topology::mesh(n, 50.0, 70.0, 45.0);
    println!("topology: {n} proxies, {} links", topology.links().len());
    for link in topology.links() {
        println!("  {:<10} b = {}", link.name, link.bandwidth);
    }
    println!();

    // Identical Zipf/Markov structure at every proxy (shared seed): the
    // maximally redundant deployment cooperation is built for.
    let base = || AdaptiveWorkload {
        proxies: (0..n)
            .map(|_| SynthWebConfig { lambda: 14.0, link_skew: 0.3, ..SynthWebConfig::default() })
            .collect(),
        cache_capacity: 48,
        cache_bytes: None,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy: ProxyPolicy::Adaptive,
        predictor: CandidateSource::Oracle,
        shared_structure_seed: Some(7),
        delayed: Default::default(),
    };
    let run = |workload| {
        let config = ClusterConfig {
            topology: topology.clone(),
            workload,
            requests_per_proxy: 40_000,
            warmup_per_proxy: 8_000,
        };
        ClusterSim::new(&config).run(2026)
    };

    let adaptive = run(Workload::Adaptive(base()));
    let cooperative = run(Workload::Cooperative(CooperativeWorkload {
        base: base(),
        coop: CoopConfig {
            digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
            ..CoopConfig::default()
        },
    }));

    let hit = |r: &ClusterReport| {
        r.nodes.iter().map(|nd| nd.hit_ratio).sum::<f64>() / r.nodes.len() as f64
    };
    println!("                      adaptive   cooperative");
    println!(
        "backbone bytes      {:>10.0}  {:>12.0}",
        adaptive.link_bytes("backbone"),
        cooperative.link_bytes("backbone")
    );
    println!("mean hit ratio      {:>10.3}  {:>12.3}", hit(&adaptive), hit(&cooperative));
    println!(
        "mean access time    {:>10.4}  {:>12.4}",
        adaptive.mean_access_time, cooperative.mean_access_time
    );

    let stats = cooperative.coop.expect("cooperative counters");
    println!(
        "\ncooperation: {} peer fetches over {} digest epochs, {} digest false hits",
        stats.peer_fetches, stats.router.digest_epochs, stats.peer_false_hits
    );
    for node in &cooperative.nodes {
        println!(
            "  proxy {}: {:>6.0} peer bytes, {:>4} peer fetches, {:>3} false hits",
            node.proxy,
            node.peer_bytes.unwrap_or(0.0),
            node.peer_fetches.unwrap_or(0),
            node.peer_false_hits.unwrap_or(0),
        );
    }

    let saved =
        100.0 * (1.0 - cooperative.link_bytes("backbone") / adaptive.link_bytes("backbone"));
    println!(
        "\nthe digests turned {saved:.1}% of the backbone's bytes into peer transfers\n\
         at equal hit ratio — redundant origin fetches are the prefetching\n\
         network-load penalty cooperation removes."
    );
}
