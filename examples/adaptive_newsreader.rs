//! An ETEL-style electronic newspaper with an adaptive prefetch controller.
//!
//! ```text
//! cargo run --release --example adaptive_newsreader
//! ```
//!
//! The paper cites the ETEL newspaper project as a prefetching client. We
//! model a reader session as a Markov chain over articles, drive the
//! paper's *adaptive* controller (which estimates λ, s̄ and the
//! counterfactual h′ online — §4), and watch its threshold converge to the
//! analytic ρ′. Then the load doubles mid-session and the controller
//! re-converges — the behaviour a fixed-threshold heuristic cannot give.

use speculative_prefetch::core::controller::{AdaptiveController, ControllerConfig};
use speculative_prefetch::core::estimator::EntryStatus;
use speculative_prefetch::prelude::*;

fn main() {
    let bandwidth = 50.0;
    let mut rng = Rng::new(42);

    // Reader navigation: 150 articles, 3 links each, skewed follow-ups.
    let mut chain = MarkovChain::random(150, 3, 0.4, &mut rng);
    let mut cache: TaggedCache<ItemId, LruCache<ItemId>> = TaggedCache::new(LruCache::new(24));
    let mut controller = AdaptiveController::new(ControllerConfig::model_a(bandwidth));

    let mut t = 0.0;
    let mut printed = Vec::new();
    let phases = [(30.0, 30_000u32), (60.0, 30_000u32)]; // λ doubles halfway
    let mut step = 0u32;

    for (phase, &(lambda, steps)) in phases.iter().enumerate() {
        let f_prime_target = |h: f64| (1.0 - h) * lambda * 1.0 / bandwidth;
        for _ in 0..steps {
            step += 1;
            t += rng.exp(lambda);
            let article = chain.next_item(&mut rng);
            // Cache and controller bookkeeping (sizes are 1.0 here).
            match cache.probe(article) {
                cachesim::AccessKind::HitTagged => {
                    controller.on_cache_hit(t, EntryStatus::Tagged, 1.0);
                }
                cachesim::AccessKind::HitUntagged => {
                    controller.on_cache_hit(t, EntryStatus::Untagged, 1.0);
                }
                cachesim::AccessKind::Miss => {
                    controller.on_miss(t, 1.0);
                    cache.admit_after_fetch(article);
                }
            }
            // Prefetch the successors the controller's threshold admits.
            let policy = controller.policy();
            for (next, p) in chain.successors(article) {
                if policy.should_prefetch(p) && !cache.inner().contains(&next) {
                    cache.prefetch_insert(next);
                    controller.on_prefetch_insert();
                }
            }
            if step.is_multiple_of(10_000) {
                let th = controller.threshold_estimate().unwrap_or(f64::NAN);
                let h_est = controller.h_prime_estimate().unwrap_or(f64::NAN);
                let target = f_prime_target(h_est);
                printed.push((step, phase, lambda, th, h_est, target));
            }
        }
    }

    println!("adaptive controller on the newspaper session (b = {bandwidth}):\n");
    println!("{:>8}  {:>6}  {:>9}  {:>9}  {:>12}", "request", "λ", "ĥ′", "p̂_th", "analytic ρ̂′");
    for (step, _phase, lambda, th, h_est, target) in printed {
        println!("{step:>8}  {lambda:>6.0}  {h_est:>9.3}  {th:>9.3}  {target:>12.3}");
    }
    println!();
    println!("The estimated threshold tracks ρ′ = f′λs̄/b in both phases: when the");
    println!("request rate doubles, the controller raises the bar for prefetching —");
    println!("under load, only the surest predictions are worth the bandwidth (§5's");
    println!("load impedance in action).");
}
