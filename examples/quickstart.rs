//! Quickstart: the paper's result in thirty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Computes the no-prefetch baseline, the threshold `p_th = ρ′`, and the
//! predicted effect of three prefetching configurations — then checks one
//! of them against the discrete-event simulator.

use speculative_prefetch::prelude::*;

fn main() {
    // A proxy serving λ = 30 req/s over a b = 50 link; mean item size 1;
    // the clients' caches already absorb 30% of requests.
    let params = SystemParams::new(30.0, 50.0, 1.0, 0.3).expect("valid parameters");

    println!("baseline (no prefetch):");
    println!("  utilisation  ρ′  = {:.3}", params.rho_prime());
    println!("  retrieval    r̄′ = {:.4}s  (eq 4)", params.retrieval_time().unwrap());
    println!("  access time  t̄′ = {:.4}s  (eq 5)", params.access_time().unwrap());
    println!();

    // The paper's headline: prefetch exactly the items with p > ρ′.
    let policy = ThresholdPolicy::from_model_a(&params);
    println!("threshold policy: prefetch iff p > p_th = {:.3}  (eq 13)", policy.threshold);
    println!();

    println!("what each configuration would do (Model A):");
    for (label, n_f, p) in [
        ("confident, light   (p=0.9, n̄F=0.5)", 0.5, 0.9),
        ("borderline         (p=0.45, n̄F=0.5)", 0.5, 0.45),
        ("speculative, heavy (p=0.2, n̄F=1.5)", 1.5, 0.2),
    ] {
        let m = ModelA::new(params, n_f, p);
        let verdict = match m.improvement() {
            Some(g) if g > 0.0 => format!("G = +{g:.5}s per request — prefetch"),
            Some(g) => format!("G = {g:.5}s per request — DON'T"),
            None => "destabilises the server (ρ ≥ 1) — DON'T".to_string(),
        };
        println!("  {label}: {verdict}");
    }
    println!();

    // Trust but verify: run the confident configuration through the
    // discrete-event simulator (same assumptions, real queueing).
    let size = simcore::dist::Exponential::with_mean(1.0);
    let config = ParametricConfig {
        params,
        n_f: 0.5,
        p: 0.9,
        size_dist: &size,
        requests: 200_000,
        warmup: 30_000,
    };
    let (base, with, g) = netsim::parametric::run_with_baseline(&config, 7);
    let predicted = ModelA::new(params, 0.5, 0.9).improvement().unwrap();
    println!("simulation check (200k requests):");
    println!("  measured t̄′ = {:.5}s, t̄ = {:.5}s", base.mean_access_time, with.mean_access_time);
    println!("  measured G  = {g:.5}s  vs eq (11) prediction {predicted:.5}s");
}
