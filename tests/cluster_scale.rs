//! Facade-level integration: the `cluster` crate composed through
//! `speculative_prefetch`, checking the multi-node results stay coherent
//! with the single-path models everything else in the workspace validates.

use speculative_prefetch::cluster::{
    ClusterConfig, ClusterSim, StaticProxy, StaticWorkload, Topology, Workload,
};
use speculative_prefetch::prelude::*;
use speculative_prefetch::simcore::dist::Exponential;

/// A star of independent proxies is N copies of the paper's system: every
/// uplink's measured ρ must match Model A's closed form.
#[test]
fn star_uplinks_match_model_a_utilisation() {
    let size = Exponential::with_mean(1.0);
    let params = SystemParams::new(30.0, 50.0, 1.0, 0.0).unwrap();
    let (n_f, p) = (1.0, 0.9);
    let config = ClusterConfig {
        topology: Topology::star(3, params.bandwidth),
        workload: Workload::Static(StaticWorkload {
            proxies: vec![
                StaticProxy { lambda: params.lambda, h_prime: params.h_prime, n_f, p };
                3
            ],
            size_dist: &size,
            catalog_items: None,
        }),
        requests_per_proxy: 50_000,
        warmup_per_proxy: 10_000,
    };
    let report = ClusterSim::new(&config).run(97);
    let predicted = ModelA::new(params, n_f, p).utilisation();
    for link in &report.links {
        assert!(
            (link.utilisation - predicted).abs() < 0.03,
            "{}: rho {} vs model {}",
            link.name,
            link.utilisation,
            predicted
        );
    }
    // Independent proxies, same parameters: node hit ratios all near h.
    for node in &report.nodes {
        assert!((node.hit_ratio - 0.9).abs() < 0.01, "node {}: h {}", node.proxy, node.hit_ratio);
    }
}

/// Splitting one shared path into a two-hop tandem (access + backbone of
/// the same bandwidth) can only slow fetches down: each job now queues
/// twice. The aggregate network load, though, is topology-invariant.
#[test]
fn tandem_path_slower_than_single_hop_same_load() {
    let size = Exponential::with_mean(1.0);
    let proxies = vec![StaticProxy { lambda: 30.0, h_prime: 0.3, n_f: 0.5, p: 0.8 }];
    let single = ClusterConfig {
        topology: Topology::single(50.0),
        workload: Workload::Static(StaticWorkload {
            proxies: proxies.clone(),
            size_dist: &size,
            catalog_items: None,
        }),
        requests_per_proxy: 40_000,
        warmup_per_proxy: 8_000,
    };
    let tandem = ClusterConfig {
        topology: Topology::two_tier(1, 50.0, 50.0),
        workload: Workload::Static(StaticWorkload {
            proxies,
            size_dist: &size,
            catalog_items: None,
        }),
        requests_per_proxy: 40_000,
        warmup_per_proxy: 8_000,
    };
    let r1 = ClusterSim::new(&single).run(31);
    let r2 = ClusterSim::new(&tandem).run(31);
    assert!(
        r2.mean_access_time > r1.mean_access_time,
        "tandem {} vs single {}",
        r2.mean_access_time,
        r1.mean_access_time
    );
    assert!((r2.bytes_per_request - r1.bytes_per_request).abs() < 1e-9, "same bytes injected");
}
