//! Trace persistence and replay: an experiment's workload can be written
//! out (JSONL or binary), read back, and must drive the caches to
//! byte-identical results — the reproducibility spine of the harness.

use speculative_prefetch::cachesim::{LruCache, ReplacementCache, TaggedCache};
use speculative_prefetch::simcore::rng::Rng;
use speculative_prefetch::workload::synth_web::{SynthWeb, SynthWebConfig};
use speculative_prefetch::workload::trace::{
    decode_binary, encode_binary, TraceReader, TraceWriter,
};
use speculative_prefetch::workload::TraceRecord;

fn make_trace(n: usize, seed: u64) -> Vec<TraceRecord> {
    let mut rng = Rng::new(seed);
    let mut web = SynthWeb::new(SynthWebConfig::default(), &mut rng);
    web.generate(n, &mut rng)
}

fn cache_fingerprint(trace: &[TraceRecord]) -> (u64, u64, Vec<u64>) {
    // One tagged LRU per client, driven by the trace; fingerprint the
    // counters and final contents.
    let n_clients = trace.iter().map(|r| r.client).max().unwrap_or(0) as usize + 1;
    let mut caches: Vec<TaggedCache<_, _>> =
        (0..n_clients).map(|_| TaggedCache::new(LruCache::new(24))).collect();
    for r in trace {
        caches[r.client as usize].access(r.item);
    }
    let hits: u64 = caches.iter().map(|c| c.real_hits()).sum();
    let accesses: u64 = caches.iter().map(|c| c.accesses()).sum();
    let mut contents: Vec<u64> =
        caches.iter().flat_map(|c| c.inner().keys().into_iter().map(|k| k.0)).collect();
    contents.sort_unstable();
    (hits, accesses, contents)
}

#[test]
fn json_roundtrip_preserves_replay() {
    let trace = make_trace(20_000, 1);
    let mut writer = TraceWriter::new(Vec::new());
    for r in &trace {
        writer.write(r).unwrap();
    }
    let bytes = writer.into_inner();
    let mut reader = TraceReader::new(&bytes[..]);
    let replayed = reader.read_all().unwrap();
    assert_eq!(replayed.len(), trace.len());
    assert_eq!(cache_fingerprint(&trace), cache_fingerprint(&replayed));
}

#[test]
fn binary_roundtrip_is_bit_exact() {
    let trace = make_trace(20_000, 2);
    let buf = encode_binary(&trace);
    let replayed = decode_binary(&buf).unwrap();
    assert_eq!(replayed, trace, "binary format must be lossless");
    assert_eq!(cache_fingerprint(&trace), cache_fingerprint(&replayed));
}

#[test]
fn binary_is_much_smaller_than_json() {
    let trace = make_trace(5_000, 3);
    let bin = encode_binary(&trace).len();
    let mut writer = TraceWriter::new(Vec::new());
    for r in &trace {
        writer.write(r).unwrap();
    }
    let json = writer.into_inner().len();
    assert!(bin * 2 < json, "binary {bin} vs json {json}");
}

#[test]
fn generation_is_seed_deterministic() {
    assert_eq!(make_trace(5_000, 42), make_trace(5_000, 42));
    assert_ne!(make_trace(5_000, 42), make_trace(5_000, 43));
}
