//! Cross-crate pins for the cooperative caching subsystem (`coop` +
//! `cluster::Workload::Cooperative`):
//!
//! 1. on a two-tier + peer-mesh topology with identical Zipf workloads at
//!    every proxy, cooperative mode moves strictly fewer bytes over the
//!    backbone than plain adaptive mode at (statistically) the same hit
//!    ratio — redundant origin fetches become peer fetches;
//! 2. the degenerate single-proxy cooperative configuration reproduces
//!    the adaptive-mode report to 1e-6 — the cooperative layer adds
//!    nothing when there are no peers, so cooperative results stay
//!    anchored to the validated adaptive engine.

use speculative_prefetch::cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, Topology, Workload,
};
use speculative_prefetch::coop::{CoopConfig, DigestConfig, PlacementPolicy};
use speculative_prefetch::workload::synth_web::SynthWebConfig;

const REQUESTS: usize = 30_000;
const WARMUP: usize = 6_000;
const SEED: u64 = 77;

/// Identical Zipf/Markov structure at every proxy (shared seed), equal
/// request rates: the maximally redundant deployment.
fn base_workload(n_proxies: usize) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: (0..n_proxies)
            .map(|_| SynthWebConfig { lambda: 14.0, link_skew: 0.3, ..SynthWebConfig::default() })
            .collect(),
        cache_capacity: 48,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy: ProxyPolicy::Adaptive,
        predictor: CandidateSource::Oracle,
        shared_structure_seed: Some(1234),
    }
}

fn run(topology: Topology, workload: Workload<'_>) -> ClusterReport {
    let config = ClusterConfig {
        topology,
        workload,
        requests_per_proxy: REQUESTS,
        warmup_per_proxy: WARMUP,
    };
    ClusterSim::new(&config).run(SEED)
}

#[test]
fn cooperative_reduces_backbone_bytes_at_equal_hit_ratio() {
    let n = 3;
    let topology = Topology::mesh(n, 50.0, 70.0, 45.0);
    let adaptive = run(topology.clone(), Workload::Adaptive(base_workload(n)));
    let cooperative = run(
        topology,
        Workload::Cooperative(CooperativeWorkload {
            base: base_workload(n),
            coop: CoopConfig {
                digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                ..CoopConfig::default()
            },
        }),
    );

    let backbone_adaptive = adaptive.link_bytes("backbone");
    let backbone_coop = cooperative.link_bytes("backbone");
    assert!(
        backbone_coop < 0.95 * backbone_adaptive,
        "cooperative backbone bytes {backbone_coop} must undercut adaptive {backbone_adaptive}"
    );

    // ... at equal hit ratio: peers only re-route misses, they do not
    // change what the caches absorb.
    for (a, c) in adaptive.nodes.iter().zip(&cooperative.nodes) {
        assert!(
            (a.hit_ratio - c.hit_ratio).abs() < 0.03,
            "proxy {}: adaptive hit {} vs cooperative {}",
            a.proxy,
            a.hit_ratio,
            c.hit_ratio
        );
    }

    // The saved bytes went over the peer links instead.
    let coop_stats = cooperative.coop.expect("coop counters");
    assert!(coop_stats.peer_fetches > 0);
    assert!(adaptive.coop.is_none(), "adaptive mode reports no coop counters");
}

#[test]
fn single_proxy_cooperative_matches_adaptive_to_1e6() {
    let adaptive = run(Topology::two_tier(1, 50.0, 70.0), Workload::Adaptive(base_workload(1)));
    let cooperative = run(
        Topology::two_tier(1, 50.0, 70.0),
        Workload::Cooperative(CooperativeWorkload {
            base: base_workload(1),
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.1, step: 4, min_vnodes: 8 },
                ..CoopConfig::default()
            },
        }),
    );

    let tol = 1e-6;
    assert!((adaptive.mean_access_time - cooperative.mean_access_time).abs() < tol);
    assert!((adaptive.bytes_per_request - cooperative.bytes_per_request).abs() < tol);
    assert!((adaptive.duration - cooperative.duration).abs() < tol);
    for (a, c) in adaptive.nodes.iter().zip(&cooperative.nodes) {
        assert_eq!(a.measured_requests, c.measured_requests);
        assert!((a.hit_ratio - c.hit_ratio).abs() < tol);
        assert!((a.mean_access_time - c.mean_access_time).abs() < tol);
        assert!((a.mean_retrieval_time - c.mean_retrieval_time).abs() < tol);
        assert!((a.retrieval_per_request - c.retrieval_per_request).abs() < tol);
        assert!((a.prefetches_per_request - c.prefetches_per_request).abs() < tol);
        assert!((a.demand_bytes - c.demand_bytes).abs() < tol);
        assert_eq!(a.goodput_bytes, c.goodput_bytes);
        assert_eq!(a.badput_bytes, c.badput_bytes);
        // The cooperative run reports (zero) peer activity; adaptive none.
        assert_eq!(c.peer_fetches, Some(0));
        assert_eq!(c.peer_false_hits, Some(0));
        assert_eq!(a.peer_fetches, None);
    }
    for (a, c) in adaptive.links.iter().zip(&cooperative.links) {
        assert_eq!(a.name, c.name);
        assert!((a.utilisation - c.utilisation).abs() < tol);
        assert!((a.bytes_carried - c.bytes_carried).abs() < tol);
        assert_eq!(a.jobs_completed, c.jobs_completed);
    }
}
