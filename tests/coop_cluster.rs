//! Cross-crate pins for the cooperative caching subsystem (`coop` +
//! `cluster::Workload::Cooperative`):
//!
//! 1. on a two-tier + peer-mesh topology with identical Zipf workloads at
//!    every proxy, cooperative mode moves strictly fewer bytes over the
//!    backbone than plain adaptive mode at (statistically) the same hit
//!    ratio — redundant origin fetches become peer fetches. The ~20%
//!    backbone-relief headline is pinned with explicit tolerance
//!    constants over a seed matrix, not a single lucky seed;
//! 2. the degenerate single-proxy cooperative configuration reproduces
//!    the adaptive-mode report to 1e-6 — the cooperative layer adds
//!    nothing when there are no peers, so cooperative results stay
//!    anchored to the validated adaptive engine.

use speculative_prefetch::cluster::{
    AdaptiveWorkload, CandidateSource, ClusterConfig, ClusterReport, ClusterSim,
    CooperativeWorkload, ProxyPolicy, Topology, Workload,
};
use speculative_prefetch::coop::{CoopConfig, DigestConfig, PlacementPolicy};
use speculative_prefetch::workload::synth_web::SynthWebConfig;

const REQUESTS: usize = 20_000;
const WARMUP: usize = 4_000;

/// The seed matrix the headline claim is pinned over: every seed must
/// show relief individually, and the matrix mean must sit in the
/// headline bracket.
const SEEDS: [u64; 3] = [77, 101, 9001];

/// Per-seed floor: cooperation must shed at least this fraction of
/// backbone bytes at every seed (a conservative bound well below the
/// headline, so ordinary seed-to-seed variance cannot flake the test).
const MIN_RELIEF_PER_SEED: f64 = 0.05;

/// The "~20% backbone relief" headline, as an explicit bracket on the
/// seed-matrix mean. Drift outside [10%, 35%] means the cooperative
/// layer's behaviour has genuinely changed and the docs must change too.
const HEADLINE_RELIEF_BRACKET: (f64, f64) = (0.10, 0.35);

/// Cooperation re-routes misses; it must not move the hit ratio by more
/// than this at any proxy.
const HIT_RATIO_TOL: f64 = 0.03;

/// Identical Zipf/Markov structure at every proxy (shared seed), equal
/// request rates: the maximally redundant deployment.
fn base_workload(n_proxies: usize) -> AdaptiveWorkload {
    AdaptiveWorkload {
        proxies: (0..n_proxies)
            .map(|_| SynthWebConfig { lambda: 14.0, link_skew: 0.3, ..SynthWebConfig::default() })
            .collect(),
        cache_capacity: 48,
        cache_bytes: None,
        max_candidates: 3,
        prefetch_jitter: 0.01,
        policy: ProxyPolicy::Adaptive,
        predictor: CandidateSource::Oracle,
        shared_structure_seed: Some(1234),
        delayed: Default::default(),
    }
}

fn run(topology: Topology, workload: Workload<'_>, seed: u64) -> ClusterReport {
    let config = ClusterConfig {
        topology,
        workload,
        requests_per_proxy: REQUESTS,
        warmup_per_proxy: WARMUP,
    };
    ClusterSim::new(&config).run(seed)
}

#[test]
fn cooperative_reduces_backbone_bytes_at_equal_hit_ratio() {
    let n = 3;
    let mut reliefs = Vec::new();
    for seed in SEEDS {
        let topology = Topology::mesh(n, 50.0, 70.0, 45.0);
        let adaptive = run(topology.clone(), Workload::Adaptive(base_workload(n)), seed);
        let cooperative = run(
            topology,
            Workload::Cooperative(CooperativeWorkload {
                base: base_workload(n),
                coop: CoopConfig {
                    digest: DigestConfig { epoch: 2.0, bits_per_entry: 10, hashes: 4 },
                    ..CoopConfig::default()
                },
            }),
            seed,
        );

        let backbone_adaptive = adaptive.link_bytes("backbone");
        let backbone_coop = cooperative.link_bytes("backbone");
        let relief = 1.0 - backbone_coop / backbone_adaptive;
        assert!(
            relief >= MIN_RELIEF_PER_SEED,
            "seed {seed}: relief {relief:.3} below the per-seed floor \
             ({backbone_coop} vs {backbone_adaptive} backbone bytes)"
        );
        reliefs.push(relief);

        // ... at equal hit ratio: peers only re-route misses, they do not
        // change what the caches absorb.
        for (a, c) in adaptive.nodes.iter().zip(&cooperative.nodes) {
            assert!(
                (a.hit_ratio - c.hit_ratio).abs() < HIT_RATIO_TOL,
                "seed {seed} proxy {}: adaptive hit {} vs cooperative {}",
                a.proxy,
                a.hit_ratio,
                c.hit_ratio
            );
        }

        // The saved bytes went over the peer links instead, and the digest
        // exchange (delta mode by default) actually shipped metadata.
        let coop_stats = cooperative.coop.expect("coop counters");
        assert!(coop_stats.peer_fetches > 0, "seed {seed}: no peer fetches");
        assert!(coop_stats.router.digest_bytes > 0, "seed {seed}: no digest exchange");
        assert!(adaptive.coop.is_none(), "adaptive mode reports no coop counters");
    }

    let mean_relief = reliefs.iter().sum::<f64>() / reliefs.len() as f64;
    let (lo, hi) = HEADLINE_RELIEF_BRACKET;
    assert!(
        (lo..=hi).contains(&mean_relief),
        "mean backbone relief {mean_relief:.3} over seeds {SEEDS:?} left the headline \
         bracket [{lo}, {hi}] (per-seed: {reliefs:?})"
    );
}

#[test]
fn single_proxy_cooperative_matches_adaptive_to_1e6() {
    let seed = SEEDS[0];
    let adaptive =
        run(Topology::two_tier(1, 50.0, 70.0), Workload::Adaptive(base_workload(1)), seed);
    let cooperative = run(
        Topology::two_tier(1, 50.0, 70.0),
        Workload::Cooperative(CooperativeWorkload {
            base: base_workload(1),
            coop: CoopConfig {
                placement: PlacementPolicy::LoadAware { divergence: 0.1, step: 4, min_vnodes: 8 },
                ..CoopConfig::default()
            },
        }),
        seed,
    );

    let tol = 1e-6;
    assert!((adaptive.mean_access_time - cooperative.mean_access_time).abs() < tol);
    assert!((adaptive.bytes_per_request - cooperative.bytes_per_request).abs() < tol);
    assert!((adaptive.duration - cooperative.duration).abs() < tol);
    for (a, c) in adaptive.nodes.iter().zip(&cooperative.nodes) {
        assert_eq!(a.measured_requests, c.measured_requests);
        assert!((a.hit_ratio - c.hit_ratio).abs() < tol);
        assert!((a.mean_access_time - c.mean_access_time).abs() < tol);
        assert!((a.mean_retrieval_time - c.mean_retrieval_time).abs() < tol);
        assert!((a.retrieval_per_request - c.retrieval_per_request).abs() < tol);
        assert!((a.prefetches_per_request - c.prefetches_per_request).abs() < tol);
        assert!((a.demand_bytes - c.demand_bytes).abs() < tol);
        assert_eq!(a.goodput_bytes, c.goodput_bytes);
        assert_eq!(a.badput_bytes, c.badput_bytes);
        assert_eq!(a.cache_used_bytes, c.cache_used_bytes);
        // The cooperative run reports (zero) peer activity; adaptive none.
        assert_eq!(c.peer_fetches, Some(0));
        assert_eq!(c.peer_false_hits, Some(0));
        assert_eq!(a.peer_fetches, None);
    }
    for (a, c) in adaptive.links.iter().zip(&cooperative.links) {
        assert_eq!(a.name, c.name);
        assert!((a.utilisation - c.utilisation).abs() < tol);
        assert!((a.bytes_carried - c.bytes_carried).abs() < tol);
        assert_eq!(a.jobs_completed, c.jobs_completed);
    }
}
