//! Integration tests asserting the paper's headline results across crates:
//! the analytic models (`prefetch-core`), the queueing substrate
//! (`queueing`), and the mechanism-level simulator (`netsim`) must all
//! agree on who wins, by roughly what factor, and where crossovers fall.

use speculative_prefetch::core::{ModelA, ModelB, SystemParams};
use speculative_prefetch::netsim::parametric::{run_with_baseline, ParametricConfig};
use speculative_prefetch::simcore::dist::Exponential;

/// G of a mixed prefetch configuration `(Σvᵢpᵢ, Σvᵢ)` computed from t̄
/// directly; `None` outside the consistent/stable region.
fn g_of(params: &SystemParams, h_extra: f64, volume: f64) -> Option<f64> {
    let h = params.h_prime + h_extra;
    let rho = (1.0 - h + volume) * params.lambda * params.mean_size / params.bandwidth;
    if rho >= 1.0 || h > 1.0 {
        return None;
    }
    let t = (1.0 - h) * params.mean_size / (params.bandwidth * (1.0 - rho));
    Some(params.access_time().unwrap() - t)
}

/// G of a subset of unit-volume candidates.
fn g_of_mix(params: &SystemParams, items: &[(f64, bool)]) -> Option<f64> {
    let h_extra: f64 = items.iter().filter(|(_, inc)| *inc).map(|(p, _)| p).sum();
    let volume = items.iter().filter(|(_, inc)| *inc).count() as f64;
    g_of(params, h_extra, volume)
}

/// The headline conclusion for the paper's *homogeneous* setting: with a
/// single probability class available up to the consistency bound
/// `max(np) = f′/p` (eq 6), the optimal volume is the maximum iff
/// `p > ρ′`, and zero otherwise — "prefetch exclusively all items above
/// the threshold", with no interior optimum.
#[test]
fn homogeneous_threshold_rule_is_exact() {
    let params = SystemParams::paper_figure2(0.3); // p_th = 0.42
    for (p, profitable) in [(0.6, true), (0.3, false)] {
        let max_volume = params.max_prefetch_count(p); // f′/p
        let steps = 20;
        let mut best_g = f64::NEG_INFINITY;
        let mut best_k = usize::MAX;
        for k in 0..=steps {
            let volume = max_volume * k as f64 / steps as f64;
            if let Some(g) = g_of(&params, volume * p, volume) {
                if g > best_g {
                    best_g = g;
                    best_k = k;
                }
            }
        }
        if profitable {
            assert_eq!(best_k, steps, "p={p}: take the full consistent volume");
        } else {
            assert_eq!(best_k, 0, "p={p}: take nothing");
        }
    }
}

/// Beyond the paper: with *heterogeneous* candidates, the optimum includes
/// every above-ρ′ item and may include more (profitable inclusions lower
/// the marginal threshold). The greedy `OptimalMixPolicy` must match the
/// brute-force optimum over all subsets.
#[test]
fn optimal_mix_matches_brute_force() {
    use speculative_prefetch::core::OptimalMixPolicy;
    // Roomier link (ρ′ = 0.21) and candidate sets that are *consistent*
    // probability assignments for one next request: h′ + Σp ≤ 1.
    let params = SystemParams::new(30.0, 100.0, 1.0, 0.3).unwrap();
    let candidate_sets: Vec<Vec<f64>> = vec![
        vec![0.5, 0.15, 0.03],
        vec![0.45, 0.2, 0.04],
        vec![0.1, 0.05, 0.03],
        vec![0.22, 0.22, 0.22],
        vec![0.3, 0.25, 0.15],
    ];
    for probs in candidate_sets {
        // Brute force over all subsets.
        let n = probs.len();
        let mut best_g = 0.0f64; // empty set gives G = 0
        let mut best_mask = 0usize;
        for mask in 0..(1usize << n) {
            let items: Vec<(f64, bool)> =
                probs.iter().enumerate().map(|(i, &p)| (p, mask >> i & 1 == 1)).collect();
            if let Some(g) = g_of_mix(&params, &items) {
                if g > best_g + 1e-15 {
                    best_g = g;
                    best_mask = mask;
                }
            }
        }
        // Greedy policy.
        let pol = OptimalMixPolicy::new(params);
        let (decision, _) = pol.decide(probs.iter().enumerate().map(|(i, &p)| (i, p)));
        let greedy_items: Vec<(f64, bool)> = probs
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, decision.selected.iter().any(|(j, _)| *j == i)))
            .collect();
        let greedy_g = g_of_mix(&params, &greedy_items).unwrap_or(f64::NEG_INFINITY);
        assert!(
            (greedy_g - best_g).abs() < 1e-12,
            "{probs:?}: greedy G {greedy_g} vs brute-force {best_g} (mask {best_mask:b})"
        );
        // And the optimum always contains every above-ρ′ candidate.
        for (i, &p) in probs.iter().enumerate() {
            if p > params.rho_prime() {
                assert!(best_mask >> i & 1 == 1, "{probs:?}: p={p} missing from optimum");
            }
        }
    }
}

/// The same result under Model B with its shifted threshold.
#[test]
fn model_b_threshold_governs_inclusion() {
    let params = SystemParams::paper_figure2(0.3);
    let n_c = 5.0; // p_th(B) = 0.42 + 0.06 = 0.48

    // p = 0.45 is profitable under A but not under B.
    let a = ModelA::new(params, 0.5, 0.45).improvement().unwrap();
    let b = ModelB::new(params, 0.5, 0.45, n_c).improvement().unwrap();
    assert!(a > 0.0);
    assert!(b < 0.0);
}

/// Mechanism-level agreement: simulated G is positive above threshold and
/// negative below, at matching magnitudes.
#[test]
fn simulated_crossover_matches_threshold() {
    let params = SystemParams::paper_figure2(0.0); // p_th = 0.6
    let size = Exponential::with_mean(1.0);
    let mut gains = Vec::new();
    for &p in &[0.4, 0.8] {
        let config = ParametricConfig {
            params,
            n_f: 0.4,
            p,
            size_dist: &size,
            requests: 80_000,
            warmup: 15_000,
        };
        let (_, _, g) = run_with_baseline(&config, 5150);
        gains.push((p, g));
    }
    assert!(gains[0].1 < 0.0, "below threshold: {gains:?}");
    assert!(gains[1].1 > 0.0, "above threshold: {gains:?}");
}

/// The paper's "no volume restriction" result, simulated: doubling the
/// volume of above-threshold prefetching increases G (while stable).
#[test]
fn more_above_threshold_volume_helps() {
    let params = SystemParams::paper_figure2(0.0);
    let size = Exponential::with_mean(1.0);
    let mut gains = Vec::new();
    for &n_f in &[0.25, 0.5, 1.0] {
        let config = ParametricConfig {
            params,
            n_f,
            p: 0.9,
            size_dist: &size,
            requests: 80_000,
            warmup: 15_000,
        };
        let (_, _, g) = run_with_baseline(&config, 99);
        gains.push(g);
    }
    assert!(gains[1] > gains[0], "{gains:?}");
    assert!(gains[2] > gains[1], "{gains:?}");
}

/// Figure-level spot checks of the exact closed-form values.
#[test]
fn figure_values_spot_checks() {
    // Fig 2, h'=0 panel, p=0.9, nF=1: G = 15/340.
    let g = ModelA::new(SystemParams::paper_figure2(0.0), 1.0, 0.9).improvement().unwrap();
    assert!((g - 15.0 / 340.0).abs() < 1e-12);
    // Fig 3, same point: C = 0.06/(30·0.34·0.4).
    let c = ModelA::new(SystemParams::paper_figure2(0.0), 1.0, 0.9).excess_cost().unwrap();
    assert!((c - 0.06 / (30.0 * 0.34 * 0.4)).abs() < 1e-12);
    // Fig 1: p_th(s=1, b=50, h'=0.3) = 0.42.
    let pth = ModelA::new(SystemParams::paper_figure2(0.3), 1.0, 0.5).threshold();
    assert!((pth - 0.42).abs() < 1e-12);
}
