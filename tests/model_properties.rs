//! Property-based tests (proptest) on the analytical models' invariants.

use proptest::prelude::*;
use speculative_prefetch::core::excess;
use speculative_prefetch::core::{ModelA, ModelAb, ModelB, SystemParams};

/// Strategy: parameters with a stable baseline (ρ′ < 1).
fn stable_params() -> impl Strategy<Value = SystemParams> {
    (0.1f64..100.0, 0.1f64..10.0, 0.0f64..0.95f64)
        .prop_flat_map(|(lambda, mean_size, h_prime)| {
            // Choose b strictly above the demand load.
            let demand = (1.0 - h_prime) * lambda * mean_size;
            (
                Just(lambda),
                Just(mean_size),
                Just(h_prime),
                (demand * 1.05 + 0.01)..(demand * 20.0 + 10.0),
            )
        })
        .prop_map(|(lambda, mean_size, h_prime, bandwidth)| {
            SystemParams::new(lambda, bandwidth, mean_size, h_prime).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Model A is exactly the q = 0 member of the AB family.
    #[test]
    fn model_a_is_ab_at_zero((params, n_f, p) in (stable_params(), 0.0f64..2.0, 0.0f64..=1.0)) {
        let a = ModelA::new(params, n_f, p);
        let ab = ModelAb::model_a(params, n_f, p);
        prop_assert!((a.hit_ratio_raw() - ab.hit_ratio_raw()).abs() < 1e-12);
        prop_assert!((a.utilisation() - ab.utilisation()).abs() < 1e-12);
        prop_assert!((a.threshold() - ab.threshold()).abs() < 1e-12);
        let (ga, gab) = (a.improvement_raw(), ab.improvement_raw());
        prop_assert!((ga - gab).abs() <= 1e-9 * ga.abs().max(1.0));
    }

    /// Model B is exactly the q = h′/n̄(C) member of the AB family.
    #[test]
    fn model_b_is_ab_at_average((params, n_f, p, n_c) in
        (stable_params(), 0.0f64..2.0, 0.0f64..=1.0, 1.0f64..500.0))
    {
        let b = ModelB::new(params, n_f, p, n_c);
        let ab = ModelAb::model_b(params, n_f, p, n_c);
        prop_assert!((b.hit_ratio_raw() - ab.hit_ratio_raw()).abs() < 1e-9);
        prop_assert!((b.utilisation() - ab.utilisation()).abs() < 1e-9);
        prop_assert!((b.threshold() - ab.threshold()).abs() < 1e-12);
    }

    /// Sign of G matches the threshold comparison whenever the system is
    /// stable — conditions (12) are sound and complete for G > 0.
    #[test]
    fn g_sign_iff_threshold((params, n_f, p) in (stable_params(), 0.001f64..2.0, 0.0f64..=1.0)) {
        let m = ModelA::new(params, n_f, p);
        if m.is_stable() {
            let g = m.improvement().unwrap();
            let pth = m.threshold();
            if p > pth + 1e-9 {
                prop_assert!(g > 0.0, "p {p} > pth {pth} but G = {g}");
            } else if p < pth - 1e-9 {
                prop_assert!(g < 0.0, "p {p} < pth {pth} but G = {g}");
            }
        }
    }

    /// G is monotone in n̄(F) at fixed p (the "no volume limit" result),
    /// within the stable region.
    #[test]
    fn g_monotone_in_volume((params, p, nf1, nf2) in
        (stable_params(), 0.0f64..=1.0, 0.0f64..1.0, 0.0f64..1.0))
    {
        let (lo, hi) = if nf1 <= nf2 { (nf1, nf2) } else { (nf2, nf1) };
        let m_lo = ModelA::new(params, lo, p);
        let m_hi = ModelA::new(params, hi, p);
        if m_lo.is_stable() && m_hi.is_stable() {
            let (g_lo, g_hi) = (m_lo.improvement().unwrap(), m_hi.improvement().unwrap());
            let pth = params.rho_prime();
            if p > pth + 1e-9 {
                prop_assert!(g_hi >= g_lo - 1e-12);
            } else if p < pth - 1e-9 {
                prop_assert!(g_hi <= g_lo + 1e-12);
            }
        }
    }

    /// The threshold gap between B and A is h′/n̄(C) ≤ 1/n̄(C) (paper §6).
    #[test]
    fn threshold_gap_bound((params, n_c) in (stable_params(), 1.0f64..1000.0)) {
        let a = ModelA::new(params, 1.0, 0.5).threshold();
        let b = ModelB::new(params, 1.0, 0.5, n_c).threshold();
        prop_assert!(b >= a);
        prop_assert!(b - a <= 1.0 / n_c + 1e-12);
    }

    /// B → A as n̄(C) → ∞: improvement gap shrinks monotonically in n̄(C).
    #[test]
    fn model_b_converges_to_a((params, n_f, p) in (stable_params(), 0.01f64..1.0, 0.0f64..=1.0)) {
        let a = ModelA::new(params, n_f, p);
        if !a.is_stable() {
            return Ok(());
        }
        let ga = a.improvement().unwrap();
        let mut last_gap = f64::INFINITY;
        for nc in [2.0, 8.0, 32.0, 128.0, 1024.0] {
            let b = ModelB::new(params, n_f, p, nc);
            if let Some(gb) = b.improvement() {
                let gap = (gb - ga).abs();
                prop_assert!(gap <= last_gap + 1e-12);
                last_gap = gap;
            }
        }
    }

    /// Excess cost is zero iff no extra load, positive otherwise, and
    /// consistent with its R-difference definition (eqs 23, 25, 27).
    #[test]
    fn excess_cost_definition((rho_p, extra, lambda) in
        (0.0f64..0.9, 0.0f64..0.099, 0.1f64..100.0))
    {
        let rho = rho_p + extra;
        let c = excess::excess_cost(rho_p, rho, lambda).unwrap();
        let direct = excess::retrieval_per_request(rho, lambda).unwrap()
            - excess::retrieval_per_request(rho_p, lambda).unwrap();
        prop_assert!((c - direct).abs() < 1e-9);
        if extra == 0.0 {
            prop_assert!(c.abs() < 1e-12);
        } else {
            prop_assert!(c > 0.0);
        }
    }

    /// Load impedance: the same Δρ costs strictly more at higher base load.
    #[test]
    fn load_impedance_property((rho1, rho2, delta, lambda) in
        (0.0f64..0.8, 0.0f64..0.8, 0.001f64..0.19, 0.1f64..100.0))
    {
        let (lo, hi) = if rho1 <= rho2 { (rho1, rho2) } else { (rho2, rho1) };
        prop_assume!(hi + delta < 1.0);
        prop_assume!(hi - lo > 1e-9);
        let c_lo = excess::excess_cost(lo, lo + delta, lambda).unwrap();
        let c_hi = excess::excess_cost(hi, hi + delta, lambda).unwrap();
        prop_assert!(c_hi > c_lo, "c_hi {c_hi} <= c_lo {c_lo}");
    }

    /// Evaluations never produce NaN for stable configurations, and the
    /// conditions bits are consistent with the computed quantities.
    #[test]
    fn evaluation_coherence((params, n_f, p) in (stable_params(), 0.0f64..2.0, 0.0f64..=1.0)) {
        let m = ModelA::new(params, n_f, p);
        let e = m.evaluate();
        prop_assert!(!e.hit_ratio.is_nan());
        prop_assert!(!e.utilisation.is_nan());
        prop_assert_eq!(e.conditions.stable_without_prefetch, params.is_stable());
        prop_assert_eq!(e.conditions.stable_with_prefetch, m.is_stable());
        if let Some(g) = e.improvement {
            prop_assert!(!g.is_nan());
            // t̄′ − t̄ = G.
            let direct = params.access_time().unwrap() - e.access_time.unwrap();
            prop_assert!((direct - g).abs() < 1e-9 * g.abs().max(1.0));
        }
    }
}
