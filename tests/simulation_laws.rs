//! Classical queueing laws checked against the running substrates —
//! the facts the paper's equation (2) quietly relies on.

use proptest::prelude::*;
use speculative_prefetch::queueing::driver::{drive, poisson_arrivals};
use speculative_prefetch::queueing::theory::MG1Ps;
use speculative_prefetch::queueing::{PsServer, Server};
use speculative_prefetch::simcore::dist::Exponential;
use speculative_prefetch::simcore::engine::Engine;
use speculative_prefetch::simcore::rng::Rng;
use speculative_prefetch::simcore::time::SimTime;

/// Mean number-in-system of M/M/1-PS equals ρ/(1−ρ) (and by Little's law,
/// λ·E[T]).
#[test]
fn mean_in_system_matches_littles_law() {
    for &rho in &[0.3f64, 0.6, 0.8] {
        let mut rng = Rng::new(rho.to_bits());
        let n = 120_000;
        let arrivals = poisson_arrivals(rho, &Exponential::with_mean(1.0), n, &mut rng);
        let mut server = PsServer::new(1.0);
        let deps = drive(&mut server, &arrivals);
        let t_end = deps.iter().map(|d| d.departed).fold(0.0, f64::max);
        let measured_n = server.mean_in_system(t_end);
        let theory_n = MG1Ps::new(rho, 1.0, 1.0).mean_in_system().unwrap();
        assert!(
            (measured_n - theory_n).abs() / theory_n < 0.08,
            "rho {rho}: N {measured_n} vs {theory_n}"
        );
        // Little's law: N = λ · E[T] with measured quantities.
        let mean_t = deps.iter().map(|d| d.response()).sum::<f64>() / deps.len() as f64;
        assert!(
            (measured_n - rho * mean_t).abs() / measured_n < 0.05,
            "rho {rho}: N {measured_n} vs λT {}",
            rho * mean_t
        );
    }
}

/// Measured utilisation equals the offered load across the stable range.
#[test]
fn utilisation_equals_offered_load() {
    for &rho in &[0.2f64, 0.5, 0.9] {
        let mut rng = Rng::new(1000 + rho.to_bits());
        let arrivals = poisson_arrivals(rho, &Exponential::with_mean(1.0), 100_000, &mut rng);
        let mut server = PsServer::new(1.0);
        let deps = drive(&mut server, &arrivals);
        let t_end = deps.iter().map(|d| d.departed).fold(0.0, f64::max);
        let measured = server.utilisation(t_end);
        assert!((measured - rho).abs() < 0.02, "rho {rho}: measured {measured}");
    }
}

/// The paper's eq (2) at the job level: regressing response on work gives
/// slope 1/(b(1−ρ)) and negligible intercept under PS.
#[test]
fn response_is_linear_in_work_through_origin() {
    let rho: f64 = 0.6;
    let mut rng = Rng::new(77);
    let arrivals = poisson_arrivals(rho, &Exponential::with_mean(1.0), 150_000, &mut rng);
    let mut server = PsServer::new(1.0);
    let deps = drive(&mut server, &arrivals);
    // Least squares response ~ a + b·work over the steady-state portion.
    let skip = 20_000;
    let xs: Vec<f64> = deps.iter().skip(skip).map(|d| d.work).collect();
    let ys: Vec<f64> = deps.iter().skip(skip).map(|d| d.response()).collect();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let expect = 1.0 / (1.0 - rho);
    assert!((slope - expect).abs() / expect < 0.05, "slope {slope} vs {expect}");
    assert!(intercept.abs() < 0.1 * my, "intercept {intercept} vs mean {my}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine fires events in timestamp order with FIFO ties, no matter
    /// the schedule/cancel interleaving.
    #[test]
    fn engine_fires_in_order(ops in proptest::collection::vec((0.0f64..100.0, any::<bool>()), 1..80)) {
        let mut engine: Engine<Vec<f64>> = Engine::new();
        let mut tokens = Vec::new();
        for &(t, cancel_prev) in &ops {
            let tok = engine.schedule_at(SimTime::from_secs(t), move |e, log: &mut Vec<f64>| {
                log.push(e.now().as_secs());
            });
            if cancel_prev {
                if let Some(prev) = tokens.pop() {
                    engine.cancel(prev);
                }
            }
            tokens.push(tok);
        }
        let mut log = Vec::new();
        engine.run(&mut log);
        for w in log.windows(2) {
            prop_assert!(w[0] <= w[1], "out of order: {log:?}");
        }
    }

    /// Busy time never exceeds elapsed time nor total work/capacity.
    #[test]
    fn busy_time_bounds(jobs in proptest::collection::vec((0.0f64..50.0, 0.1f64..3.0), 1..40),
                        cap in 0.5f64..4.0) {
        let mut arr = jobs.clone();
        arr.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut server = PsServer::new(cap);
        let deps = drive(&mut server, &arr);
        let t_end = deps.iter().map(|d| d.departed).fold(0.0f64, f64::max);
        let total_work: f64 = arr.iter().map(|j| j.1).sum();
        prop_assert!(server.busy_time() <= t_end + 1e-9);
        prop_assert!((server.busy_time() - total_work / cap).abs() < 1e-6,
            "busy {} vs work/cap {}", server.busy_time(), total_work / cap);
    }
}
