//! Property-based tests on the substrates: processor-sharing server
//! invariants, cache-policy laws, and distribution/statistics machinery.

use proptest::prelude::*;
use speculative_prefetch::cachesim::{
    ClockCache, FifoCache, LfuCache, LruCache, RandomCache, ReplacementCache,
};
use speculative_prefetch::queueing::{drive, PsServer, Server};
use speculative_prefetch::simcore::rng::Rng;
use speculative_prefetch::simcore::stats::Welford;

/// Strategy: a sorted arrival list of (time, work).
fn arrivals(max_jobs: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..100.0, 0.01f64..5.0), 1..max_jobs).prop_map(|mut v| {
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PS conservation laws: every job departs, after its arrival, and the
    /// total work processed equals the work submitted.
    #[test]
    fn ps_conservation(arr in arrivals(60), cap in 0.5f64..10.0) {
        let mut server = PsServer::new(cap);
        let deps = drive(&mut server, &arr);
        prop_assert_eq!(deps.len(), arr.len());
        for d in &deps {
            prop_assert!(d.departed >= d.arrived);
            // No job finishes faster than its dedicated service time.
            prop_assert!(d.response() >= d.work / cap - 1e-9);
        }
        let total: f64 = arr.iter().map(|a| a.1).sum();
        prop_assert!((server.work_done() - total).abs() < 1e-6 * total.max(1.0));
        prop_assert_eq!(server.in_system(), 0);
    }

    /// PS fairness: for jobs present simultaneously, the one with less
    /// remaining work never departs later... specialised to jobs arriving
    /// at the same instant: departure order follows work order.
    #[test]
    fn ps_simultaneous_jobs_depart_in_work_order(
        works in proptest::collection::vec(0.01f64..5.0, 2..12),
        cap in 0.5f64..4.0)
    {
        let arr: Vec<(f64, f64)> = works.iter().map(|&w| (0.0, w)).collect();
        let mut server = PsServer::new(cap);
        let mut deps = drive(&mut server, &arr);
        deps.sort_by(|a, b| a.departed.total_cmp(&b.departed));
        for pair in deps.windows(2) {
            prop_assert!(pair[0].work <= pair[1].work + 1e-9,
                "departed earlier with more work: {:?}", pair);
        }
    }

    /// Work conservation across disciplines: PS, FIFO and RR finish the
    /// same total work; the *last* departure time (makespan) is identical
    /// because all are work-conserving.
    #[test]
    fn makespan_is_discipline_invariant(arr in arrivals(40)) {
        use speculative_prefetch::queueing::{FifoServer, RrServer};
        let cap = 2.0;
        let mut ps = PsServer::new(cap);
        let mut fifo = FifoServer::new(cap);
        let mut rr = RrServer::new(cap, 0.25);
        let m1 = drive(&mut ps, &arr).iter().map(|d| d.departed).fold(0.0, f64::max);
        let m2 = drive(&mut fifo, &arr).iter().map(|d| d.departed).fold(0.0, f64::max);
        let m3 = drive(&mut rr, &arr).iter().map(|d| d.departed).fold(0.0, f64::max);
        prop_assert!((m1 - m2).abs() < 1e-6, "PS {m1} vs FIFO {m2}");
        prop_assert!((m1 - m3).abs() < 1e-6, "PS {m1} vs RR {m3}");
    }

    /// Cache-policy laws that every implementation must satisfy.
    #[test]
    fn cache_laws(ops in proptest::collection::vec((0u8..3, 0u32..40), 1..300), cap in 1usize..16) {
        fn check<C: ReplacementCache<u32>>(mut c: C, ops: &[(u8, u32)], cap: usize) {
            for &(op, k) in ops {
                match op {
                    0 => {
                        let evicted = c.insert(k);
                        assert!(c.contains(&k), "inserted key must be present");
                        if let Some(v) = evicted {
                            assert!(!c.contains(&v), "evicted key must be gone");
                            assert_ne!(v, k);
                        }
                    }
                    1 => {
                        let hit = c.touch(k);
                        assert_eq!(hit, c.contains(&k));
                    }
                    _ => {
                        c.remove(&k);
                        assert!(!c.contains(&k));
                    }
                }
                assert!(c.len() <= cap, "capacity exceeded");
                assert_eq!(c.keys().len(), c.len());
            }
        }
        check(LruCache::new(cap), &ops, cap);
        check(LfuCache::new(cap), &ops, cap);
        check(FifoCache::new(cap), &ops, cap);
        check(ClockCache::new(cap), &ops, cap);
        check(RandomCache::new(cap, 42), &ops, cap);
    }

    /// Welford merge is associative-ish: merging partitions gives the same
    /// moments as a single pass.
    #[test]
    fn welford_merge_partition(xs in proptest::collection::vec(-1e3f64..1e3, 2..200),
                               split in 1usize..100)
    {
        let split = split.min(xs.len() - 1);
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-7 * whole.variance().max(1.0));
    }

    /// The PRNG's `below` never exceeds its bound and `f64` stays in [0,1).
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
            let x = rng.f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }
}
