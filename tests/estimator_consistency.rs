//! Cross-crate consistency of the §4 estimator: the pure counter state
//! machine (`prefetch_core::HPrimeEstimator`), the cache-integrated
//! implementation (`cachesim::TaggedCache`), and the controller
//! (`prefetch_core::AdaptiveController`) must count identically on the
//! same event sequence.

use speculative_prefetch::cachesim::{AccessKind, LruCache, ReplacementCache, TaggedCache};
use speculative_prefetch::core::controller::{AdaptiveController, ControllerConfig};
use speculative_prefetch::core::estimator::{EntryStatus, HPrimeEstimator};
use speculative_prefetch::simcore::rng::Rng;
use speculative_prefetch::workload::{ItemId, LruStackStream, RequestStream};

#[test]
fn tagged_cache_and_counter_machine_agree() {
    let mut rng = Rng::new(404);
    let mut cache: TaggedCache<u64, LruCache<u64>> = TaggedCache::new(LruCache::new(32));
    let mut counters = HPrimeEstimator::new();
    let mut controller = AdaptiveController::new(ControllerConfig::model_a(50.0));
    let mut t = 0.0;

    for _ in 0..30_000 {
        t += rng.exp(30.0);
        let k = rng.below(120);
        if rng.chance(0.25) {
            // Prefetch path.
            let newly = !cache.inner().contains(&k);
            cache.prefetch_insert(k);
            if newly {
                counters.on_prefetch_insert();
                controller.on_prefetch_insert();
            }
        } else {
            // User access path.
            let (kind, _) = cache.access(k);
            match kind {
                AccessKind::HitTagged => {
                    counters.on_cache_hit(EntryStatus::Tagged);
                    controller.on_cache_hit(t, EntryStatus::Tagged, 1.0);
                }
                AccessKind::HitUntagged => {
                    counters.on_cache_hit(EntryStatus::Untagged);
                    controller.on_cache_hit(t, EntryStatus::Untagged, 1.0);
                }
                AccessKind::Miss => {
                    counters.on_miss();
                    controller.on_miss(t, 1.0);
                }
            }
        }
    }

    assert_eq!(cache.accesses(), counters.accesses());
    assert_eq!(cache.counterfactual_hits(), counters.counterfactual_hits());
    let a = cache.estimate_h_prime().unwrap();
    let b = counters.estimate_model_a().unwrap();
    let c = controller.h_prime_estimate().unwrap();
    assert!((a - b).abs() < 1e-12);
    assert!((a - c).abs() < 1e-12);
    // And the model-B corrections agree too.
    let ba = cache.estimate_h_prime_model_b(32.0, 4.0).unwrap();
    let bb = counters.estimate_model_b(32.0, 4.0).unwrap();
    assert!((ba - bb).abs() < 1e-12);
}

/// On a stream with a designed-in hit ratio and NO prefetching, every
/// estimator recovers the target.
#[test]
fn designed_hit_ratio_is_recovered_without_prefetching() {
    for &target in &[0.2, 0.5, 0.8] {
        let mut rng = Rng::new(7_000 + (target * 10.0) as u64);
        let mut stream = LruStackStream::new(target, 48);
        let mut cache: TaggedCache<ItemId, LruCache<ItemId>> = TaggedCache::new(LruCache::new(48));
        // Warm up.
        for _ in 0..5_000 {
            let item = stream.next_item(&mut rng);
            cache.access(item);
        }
        let before_access = cache.accesses();
        let before_hits = cache.counterfactual_hits();
        for _ in 0..40_000 {
            let item = stream.next_item(&mut rng);
            cache.access(item);
        }
        let est = (cache.counterfactual_hits() - before_hits) as f64
            / (cache.accesses() - before_access) as f64;
        assert!((est - target).abs() < 0.02, "target {target}: estimate {est}");
    }
}

/// With prefetching injected, the §4 estimator still recovers the
/// *counterfactual* ratio while the real hit ratio inflates.
#[test]
fn counterfactual_survives_prefetch_pollution() {
    let target = 0.4;
    let mut rng = Rng::new(11);
    let mut stream = LruStackStream::new(target, 48);
    let mut cache: TaggedCache<ItemId, LruCache<ItemId>> = TaggedCache::new(LruCache::new(256));
    // An adversarial prefetcher that prefetches the item the stream will
    // produce ~sometimes (we cheat by prefetching random *future-ish* ids:
    // fresh ids near the stream's id counter so some get referenced).
    let mut next_guess = 0u64;
    for i in 0..60_000 {
        let item = stream.next_item(&mut rng);
        next_guess = next_guess.max(item.0 + 1);
        cache.access(item);
        if i % 2 == 0 {
            // Prefetch a guess at the next fresh item: correct whenever the
            // stream next draws a brand-new id.
            cache.prefetch_insert(ItemId(next_guess));
        }
    }
    let est = cache.estimate_h_prime().unwrap();
    let real = cache.hit_ratio().unwrap();
    assert!(real > target + 0.1, "prefetching should inflate real hits: {real}");
    assert!((est - target).abs() < 0.03, "counterfactual estimate {est} vs target {target}");
}
